#!/usr/bin/env python3
"""The NOAA temperature-analysis use case (paper §2.1 and §6.3, Fig. 1).

Run with::

    python examples/weather_analysis.py

The network fetch of the original script is replaced by a synthetic dataset
and a ``fetch-station`` stand-in command (see DESIGN.md); the pipeline
structure is otherwise the same: list the yearly index, keep the compressed
archives, fetch and decompress each, slice out the temperature column, drop
the 999 sentinels, and take the maximum per year.
"""

from repro.api import Pash, PashConfig
from repro.evaluation.usecases import noaa_usecase
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import noaa

YEARS = [2015, 2016, 2017]
STATIONS = 8
WIDTH = 4


def main() -> None:
    dataset = noaa.yearly_dataset(YEARS, STATIONS)
    print(f"synthetic NOAA dataset: {len(dataset)} files, "
          f"{sum(len(v) for v in dataset.values())} lines")
    print()

    for year in YEARS:
        script = noaa.per_year_pipeline(year, STATIONS)

        # Sequential baseline.
        interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
        sequential = interpreter.run_script(script)

        # PaSh-parallelized execution through the library API.
        environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
        compiled = Pash.compile(script, PashConfig.paper_default(WIDTH))
        parallel = compiled.execute(backend="interpreter", environment=environment).stdout

        marker = "OK" if parallel == sequential else "MISMATCH"
        print(f"[{marker}] {sequential[0]}")

    print()
    print("Simulated end-to-end speedups on a paper-scale dataset (2000 stations/year):")
    results = noaa_usecase(widths=(2, 10))
    for width, data in results["widths"].items():
        print(
            f"  width {width:>2}: sequential {data['sequential_seconds']:8.1f}s  "
            f"PaSh {data['parallel_seconds']:8.1f}s  speedup {data['speedup']:.2f}x"
        )
    print("(paper reports 1.86x / 2.44x end-to-end, 2.30x / 10.79x for the compute phase)")


if __name__ == "__main__":
    main()
