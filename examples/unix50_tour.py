#!/usr/bin/env python3
"""Tour of the Unix50 corpus (paper §6.2, Fig. 8).

Run with::

    python examples/unix50_tour.py

For a handful of representative pipelines this example shows what PaSh does
(or refuses to do), checks output equivalence on a small corpus, and reports
the simulated speedup at 16x parallelism for the whole 34-pipeline corpus.
"""

from repro.api import Pash, PashConfig
from repro.evaluation.figures import figure8_series, figure8_summary
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads.unix50 import get_pipeline

SHOWCASE = [0, 11, 13, 2]  # word frequencies, numeric extremes, awk, tiny head
WIDTH = 4


def run_both(script, files):
    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(files)))
    sequential = interpreter.run_script(script)
    compiled = Pash.compile(script, PashConfig.paper_default(WIDTH))
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(files)))
    parallel = compiled.execute(backend="interpreter", environment=environment).stdout
    return sequential, parallel, compiled.translation


def main() -> None:
    for index in SHOWCASE:
        pipeline = get_pipeline(index)
        script = pipeline.script_for_width(WIDTH)
        print(f"--- pipeline {index}: {pipeline.description} [{pipeline.expected_group}]")
        print("    " + script.replace("\n", "\n    "))
        files = pipeline.correctness_dataset(WIDTH, lines=400)
        try:
            sequential, parallel, translation = run_both(script, files)
        except Exception as error:  # e.g. sed -n, outside the interpreter subset
            print(f"    (skipped execution: {error})")
            continue
        if translation.rejected:
            reason = translation.rejected[0][1]
            print(f"    PaSh left this pipeline sequential: {reason}")
        else:
            print(f"    parallelized; output identical: {parallel == sequential}")
        print()

    print("Simulated Fig. 8 summary at 16x over all 34 pipelines:")
    points = figure8_series(width=16)
    summary = figure8_summary(points)
    accelerated = sum(1 for point in points if point["speedup"] > 1.5)
    print(f"  accelerated pipelines : {accelerated}/34")
    print(f"  average speedup       : {summary['average']}x (paper: 5.49x)")
    print(f"  median speedup        : {summary['median']}x (paper: 6.07x)")
    print(f"  weighted average      : {summary['weighted_average']}x (paper: 5.75x)")


if __name__ == "__main__":
    main()
