#!/usr/bin/env python3
"""Quickstart: compile a classic one-liner and check it stays correct.

Run with::

    python examples/quickstart.py

The example follows PaSh's flow end to end:

1. take a sequential shell pipeline,
2. compile it into its data-parallel equivalent (the script you would hand
   to ``sh`` on a real machine),
3. execute both the sequential and the parallel dataflow graphs in-process
   over a synthetic corpus, and
4. verify the outputs are identical.
"""

from repro.api import Pash, PashConfig
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

SCRIPT = (
    "cat part0.txt part1.txt part2.txt part3.txt"
    " | tr A-Z a-z | grep light | sort | uniq -c | sort -rn | head -n 5"
)


def main() -> None:
    width = 4

    # 1+2. Compile the script and show the emitted parallel shell code.
    compiled = Pash.compile(SCRIPT, PashConfig.paper_default(width))
    print("=== input script ===")
    print(SCRIPT)
    print()
    print(f"=== parallel script (width {width}) ===")
    print(compiled.text)
    print()
    print(
        f"regions parallelized: {compiled.stats.regions_parallelized}, "
        f"runtime processes: {compiled.node_count}, "
        f"compile time: {compiled.stats.compile_time_seconds * 1000:.1f} ms"
    )

    # 3. Execute sequentially and in parallel over a synthetic corpus.
    corpus = {f"part{i}.txt": text.text_lines(500, seed=i) for i in range(width)}

    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(corpus)))
    sequential = interpreter.run_script(SCRIPT)

    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(corpus)))
    parallel = compiled.execute(backend="interpreter", environment=environment).stdout

    # 4. Compare.
    print()
    print("=== top-5 word counts (sequential) ===")
    print("\n".join(sequential))
    print()
    print("parallel output identical to sequential:", parallel == sequential)


if __name__ == "__main__":
    main()
