#!/usr/bin/env python3
"""The execution engine: one script, three backends, measured for real.

Run with::

    python examples/parallel_engine.py

Demonstrates the unified backend API of :mod:`repro.engine`:

1. translate and optimize a classic pipeline at width 4,
2. execute it on the in-process interpreter (the oracle), on the
   multiprocess parallel engine (real worker processes connected with OS
   pipes), and — where a POSIX shell is available — as the emitted shell
   script,
3. verify all backends produce identical output, and
4. print the engine's per-node metrics: which OS process ran each node,
   how long it ran, and how many bytes crossed its pipes.
"""

import shutil

from repro.api import Pash, PashConfig
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

SCRIPT = "cat part0.txt part1.txt part2.txt part3.txt | tr A-Z a-z | grep light | sort > out.txt"
WIDTH = 4


def fresh_environment() -> ExecutionEnvironment:
    files = {f"part{index}.txt": text.text_lines(400, seed=index) for index in range(WIDTH)}
    return ExecutionEnvironment(filesystem=VirtualFileSystem(files))


def main() -> None:
    compiled = Pash.compile(SCRIPT, PashConfig.paper_default(WIDTH))
    backends = ["interpreter", "parallel"]
    if shutil.which("sh"):
        backends.append("shell")

    print(f"=== script (width {WIDTH}) ===")
    print(SCRIPT)
    print()

    results = {}
    for backend in backends:
        results[backend] = compiled.execute(
            backend=backend, environment=fresh_environment()
        )

    print("=== backends ===")
    reference = results["interpreter"].output_of("out.txt")
    for backend in backends:
        result = results[backend]
        matches = "identical" if result.output_of("out.txt") == reference else "DIFFERENT!"
        print(
            f"{backend:<12} {result.elapsed_seconds * 1000:8.1f} ms   "
            f"{len(result.output_of('out.txt')):5d} output lines   {matches}"
        )
    print()

    metrics = results["parallel"].metrics
    print("=== parallel engine metrics ===")
    print(metrics.summary())
    print()
    print(f"{'node':<42}{'pid':<9}{'ms':<9}{'bytes in':<10}{'bytes out'}")
    for node in metrics.nodes:
        label = node.label if len(node.label) <= 40 else node.label[:37] + "..."
        print(
            f"{label:<42}{node.pid:<9}{node.wall_seconds * 1000:<9.2f}"
            f"{node.bytes_in:<10}{node.bytes_out}"
        )


if __name__ == "__main__":
    main()
