#!/usr/bin/env python3
"""JIT orchestration: a dynamic script the AOT compiler cannot touch.

Run with::

    python examples/jit_orchestration.py

The script below mixes a ``for`` loop over a glob, a runtime variable, a
command substitution, and a conditional — every one a reason the AOT path
leaves regions sequential.  The JIT driver executes the control flow
itself, compiles each region with the bindings in force when it is reached,
caches plans across loop iterations, and runs them on the parallel engine.
"""

from repro.api import PashConfig, run
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

WIDTH = 4

SCRIPT = """\
pat=light
for f in part*.txt; do
  grep $pat "$f" | sort | head -n 3
done
total=$(cat part0.txt part1.txt | grep -c $pat)
if test $total -gt 0; then
  grep $pat part0.txt | tail -n 2
fi
"""


def dataset():
    return {
        f"part{index}.txt": text.text_lines(400, seed=index) for index in range(4)
    }


def main() -> None:
    print("script:")
    for line in SCRIPT.splitlines():
        print(f"  {line}")

    # The sequential oracle.
    oracle = ShellInterpreter(filesystem=VirtualFileSystem(dataset()))
    expected = oracle.run_script(SCRIPT)

    # The JIT driver, compiled regions on the parallel engine.
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dataset()))
    result = run(
        SCRIPT,
        config=PashConfig.paper_default(WIDTH),
        backend="jit",
        environment=environment,
    )

    print(f"\nstdout ({len(result.stdout)} lines, first 6):")
    for line in result.stdout[:6]:
        print(f"  {line}")
    print(f"\nbyte-identical to the interpreter: {result.stdout == expected}")
    print(f"{result.jit.summary()}")
    print(f"engine: {result.metrics.summary()}")
    for outcome in result.jit.outcomes:
        marker = {"compiled": "C", "cached": "H", "fallback": "-"}[outcome.action]
        reason = f"  ({outcome.reason})" if outcome.reason else ""
        print(f"  [{marker}] {outcome.text}{reason}")


if __name__ == "__main__":
    main()
