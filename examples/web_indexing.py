#!/usr/bin/env python3
"""The Wikipedia web-indexing use case (paper §6.4).

Run with::

    python examples/web_indexing.py

The pipeline mixes POSIX utilities with custom commands written "in other
languages" (here: Python implementations registered under their own names:
``fetch-page``, ``html-to-text``, ``word-stem``).  Each custom command
carries a one-line parallelizability annotation, which is all PaSh needs to
data-parallelize the bulk of the work.
"""

from repro.annotations.library import standard_library
from repro.api import Pash, PashConfig
from repro.evaluation.usecases import wikipedia_usecase
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import wikipedia

PAGES = 16
WIDTH = 4


def main() -> None:
    script = wikipedia.indexing_script()
    print("=== indexing pipeline ===")
    print(script)
    print()

    library = standard_library()
    print("annotations of the non-POSIX stages:")
    for name in ("fetch-page", "html-to-text", "word-stem", "lowercase"):
        print(f"  {name:<14} -> {library.classify(name, []).value}")
    print()

    dataset = wikipedia.dataset(PAGES)

    # Sequential baseline.
    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    interpreter.run_script(script)
    sequential_index = interpreter.state.filesystem.read("index.txt")

    # PaSh-parallelized run through the library API.
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
    Pash.compile(script, PashConfig.paper_default(WIDTH)).execute(
        backend="interpreter", environment=environment
    )
    parallel_index = environment.filesystem.read("index.txt")

    print(f"indexed {PAGES} pages -> {len(sequential_index)} distinct stemmed terms")
    print("top terms:")
    for line in sequential_index[:8]:
        print("  " + line)
    print()
    print("parallel index identical to sequential:", parallel_index == sequential_index)

    print()
    print("Simulated speedups on the paper-scale corpus (1% of Wikipedia):")
    results = wikipedia_usecase(widths=(2, 16))
    for width, data in results["widths"].items():
        print(f"  width {width:>2}: speedup {data['speedup']:.2f}x")
    print("(paper reports 1.97x at width 2 and 12.7x at width 16)")


if __name__ == "__main__":
    main()
