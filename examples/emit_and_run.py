#!/usr/bin/env python3
"""Emit a parallel shell script and (if coreutils are available) run it.

Run with::

    python examples/emit_and_run.py

This example demonstrates the back-end in its intended habitat: the compiled
script uses named pipes, background jobs, ``sort -m`` aggregation, and the
runtime helpers (``python3 -m repro.runtime.cli``), and is executed by the
system's ``sh`` against real files in a temporary directory.  When no POSIX
shell or coreutils are present, it falls back to printing the script only.
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.api import Pash, PashConfig
from repro.workloads import text


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pash_example_"))
    chunks = []
    for index in range(4):
        path = workdir / f"chunk{index}.txt"
        path.write_text("\n".join(text.text_lines(400, seed=index)) + "\n")
        chunks.append(str(path))

    script = (
        "cat " + " ".join(chunks) + f" | tr A-Z a-z | grep light | sort | uniq -c"
        f" | sort -rn > {workdir}/out.txt"
    )
    compiled = Pash.compile(script, PashConfig.paper_default(4))

    print("=== sequential script ===")
    print(script)
    print()
    print("=== emitted parallel script ===")
    print(compiled.text)

    required = ("sh", "mkfifo", "cat", "grep", "sort", "tr")
    if not all(shutil.which(tool) for tool in required):
        print("(skipping execution: missing a POSIX shell or coreutils)")
        return

    sequential = subprocess.run(["sh", "-c", script], capture_output=True, text=True)
    sequential_output = (workdir / "out.txt").read_text()

    completed = subprocess.run(["sh", "-c", compiled.text], capture_output=True, text=True)
    parallel_output = (workdir / "out.txt").read_text()

    print("=== execution under the system shell ===")
    print("sequential exit:", sequential.returncode, " parallel exit:", completed.returncode)
    print("outputs identical:", sequential_output == parallel_output)
    print("first lines of the result:")
    for line in parallel_output.splitlines()[:5]:
        print("  " + line)


if __name__ == "__main__":
    main()
