"""The pass manager: stable ordering, name-based ablations, registration."""

import pytest

from repro.api import Pash, PashConfig
from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import AggregatorNode, CommandNode, RelayNode, SplitNode
from repro.transform.passes import (
    DEFAULT_PIPELINE,
    GraphPass,
    PassManager,
    available_passes,
    build_pipeline,
    register_pass,
    unregister_pass,
)
from repro.transform.pipeline import OptimizationReport, ParallelizationConfig

EXPECTED_ORDER = [
    "split-insertion",
    "parallelize",
    "aggregation-lowering",
    "eager-relays",
    "fuse-stages",
]


def build(script):
    return DFGBuilder().build_from_script(script)


def compile_text(script, config):
    """Emitted text with a pinned FIFO prefix, so outputs are comparable."""
    return Pash(config.replace(fifo_prefix="fifo")).compile(script).text


def graph_shape(graph):
    """A structural fingerprint: node kinds and names in topological order."""
    return [
        (type(node).__name__, getattr(node, "name", getattr(node, "aggregator", "")))
        for node in graph.topological_order()
    ]


def test_default_pipeline_order_is_stable():
    # The order is a property of the pipeline, not of any config: passes
    # self-gate on the config they receive at run time.
    assert build_pipeline().names() == EXPECTED_ORDER
    assert build_pipeline().names() == build_pipeline().names()
    assert [cls.name for cls in DEFAULT_PIPELINE] == EXPECTED_ORDER
    assert available_passes()[: len(EXPECTED_ORDER)] == EXPECTED_ORDER


def test_report_carries_per_pass_timings_in_pipeline_order():
    graph = build("cat a b | grep x | sort > out.txt")
    report = build_pipeline().run(graph, ParallelizationConfig.paper_default(2))
    assert list(report.pass_seconds) == EXPECTED_ORDER
    assert all(seconds >= 0.0 for seconds in report.pass_seconds.values())
    assert report.compile_time_seconds >= sum(report.pass_seconds.values()) * 0.5


SCRIPTS = [
    "cat a b c d | grep x | sort > out.txt",
    "cat big.txt | grep x | tr A-Z a-z | sort | uniq -c > out.txt",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_disabling_eager_relays_reproduces_no_eager_bit_for_bit(script):
    # no_eager also disables the split; disable both passes by name.
    by_name = PashConfig.paper_default(4, disabled_passes=("eager-relays", "split-insertion"))
    by_enum = PashConfig.no_eager(4)
    assert compile_text(script, by_name) == compile_text(script, by_enum)


@pytest.mark.parametrize("script", SCRIPTS)
def test_disabling_split_insertion_reproduces_parallel_only_bit_for_bit(script):
    by_name = PashConfig.paper_default(4, disabled_passes=("split-insertion",))
    by_enum = PashConfig.parallel_only(4)
    assert compile_text(script, by_name) == compile_text(script, by_enum)
    # ... and structurally: the optimized graphs match node for node.
    graphs_by_name = Pash(by_name).compile(script).optimized_graphs
    graphs_by_enum = Pash(by_enum).compile(script).optimized_graphs
    for left, right in zip(graphs_by_name, graphs_by_enum):
        assert graph_shape(left) == graph_shape(right)


def test_disabling_parallelize_leaves_the_graph_sequential():
    compiled = Pash(PashConfig.paper_default(4, disabled_passes=("parallelize",))).compile(
        "cat a b c d | grep x > out.txt"
    )
    assert compiled.stats.regions_parallelized == 0
    graph = compiled.optimized_graphs[0]
    names = [node.name for node in graph.nodes.values() if isinstance(node, CommandNode)]
    assert names.count("grep") == 1
    assert not any(isinstance(node, SplitNode) for node in graph.nodes.values())


def test_disabling_aggregation_lowering_keeps_flat_aggregators():
    script = "cat a b c d e f g h | sort > out.txt"
    flat = Pash(PashConfig.paper_default(8, disabled_passes=("aggregation-lowering",))).compile(
        script
    )
    tree = Pash(PashConfig.paper_default(8)).compile(script)
    flat_aggs = [
        node
        for node in flat.optimized_graphs[0].nodes.values()
        if isinstance(node, AggregatorNode)
    ]
    tree_aggs = [
        node
        for node in tree.optimized_graphs[0].nodes.values()
        if isinstance(node, AggregatorNode)
    ]
    assert len(flat_aggs) == 1 and len(flat_aggs[0].inputs) == 8
    assert len(tree_aggs) == 7  # a full binary merge tree over 8 streams
    assert all(len(node.inputs) <= 2 for node in tree_aggs)


def test_lowering_matches_inline_fan_in_shape():
    """The post-pass tree has the same shape the legacy inline lowering built."""
    for width, fan_in, expected_aggregators in ((8, 2, 7), (8, 4, 3), (5, 2, 4), (4, 3, 2)):
        chunks = " ".join(f"c{i}" for i in range(width))
        compiled = Pash(
            PashConfig.paper_default(width, aggregation_fan_in=fan_in)
        ).compile(f"cat {chunks} | sort > out.txt")
        aggregators = [
            node
            for node in compiled.optimized_graphs[0].nodes.values()
            if isinstance(node, AggregatorNode)
        ]
        assert len(aggregators) == expected_aggregators, (width, fan_in)
        assert all(len(node.inputs) <= fan_in for node in aggregators)


def test_unknown_pass_names_fail_loudly():
    with pytest.raises(ValueError, match="unknown pass 'typo'"):
        build_pipeline(disabled=("typo",))
    with pytest.raises(ValueError, match="unknown pass"):
        Pash(PashConfig(extra_passes=("nope",))).compile("cat a b | grep x")


def test_pass_manager_without_returns_a_filtered_copy():
    manager = build_pipeline()
    trimmed = manager.without("eager-relays")
    assert trimmed.names() == [name for name in EXPECTED_ORDER if name != "eager-relays"]
    assert manager.names() == EXPECTED_ORDER  # original untouched


class WidthHalvingPass(GraphPass):
    """A registered extra pass used by the tests below (runs first-come)."""

    name = "test-width-note"
    description = "records that it ran"

    def run(self, context):
        context.report.skipped_commands.append("width-note-ran")


def test_registered_extra_pass_runs_through_the_config():
    register_pass(WidthHalvingPass)
    try:
        assert "test-width-note" in available_passes()
        compiled = Pash(PashConfig.paper_default(2, extra_passes=("test-width-note",))).compile(
            "cat a b | grep x > out.txt"
        )
        assert "width-note-ran" in compiled.reports[0].skipped_commands
        assert "test-width-note" in compiled.reports[0].pass_seconds
    finally:
        unregister_pass("test-width-note")
    assert "test-width-note" not in available_passes()


def test_default_passes_cannot_be_unregistered():
    with pytest.raises(ValueError, match="cannot unregister default pass"):
        unregister_pass("parallelize")


def test_registering_a_default_pass_name_fails_instead_of_shadowing():
    class Impostor(GraphPass):
        name = "parallelize"

    with pytest.raises(ValueError, match="shadow a default"):
        register_pass(Impostor)


def test_minimum_copies_skips_low_benefit_parallelization():
    # Two streams at width 4: T would create only 2 copies — below minimum 3.
    few = Pash(PashConfig.paper_default(4, minimum_copies=3)).compile(
        "cat a b | grep x > out.txt"
    )
    assert few.stats.regions_parallelized == 0
    assert "grep x" in few.reports[0].skipped_commands
    # Three streams clear the bar.
    enough = Pash(PashConfig.paper_default(4, minimum_copies=3)).compile(
        "cat a b c | grep x > out.txt"
    )
    assert enough.stats.regions_parallelized == 1
    assert enough.text.count("grep x") == 3


def test_minimum_copies_leaves_multi_input_graphs_untouched():
    # Two data inputs at minimum 3: t1 must not insert (and then abandon) a
    # cat node — the skipped region's graph stays exactly as translated.
    compiled = Pash(PashConfig.paper_default(4, minimum_copies=3)).compile(
        "grep x a.txt b.txt > out.txt"
    )
    assert compiled.stats.regions_parallelized == 0
    kinds = {type(node).__name__ for node in compiled.optimized_graphs[0].nodes.values()}
    assert kinds == {"CommandNode"}


def test_minimum_copies_suppresses_pointless_splits():
    # width 2 < minimum 4: a split could never yield 4 copies, so none is
    # inserted and the graph stays sequential (no dangling identity split).
    compiled = Pash(PashConfig.paper_default(2, minimum_copies=4)).compile(
        "cat big.txt | grep x > out.txt"
    )
    assert compiled.reports[0].inserted_splits == 0
    assert not any(
        isinstance(node, SplitNode)
        for node in compiled.optimized_graphs[0].nodes.values()
    )


def test_custom_pipeline_runs_standalone():
    graph = build("cat a b | grep x > out.txt")
    report = PassManager([]).run(graph, ParallelizationConfig.paper_default(2))
    assert isinstance(report, OptimizationReport)
    assert report.parallelized_count == 0
    assert not any(isinstance(node, RelayNode) for node in graph.nodes.values())
