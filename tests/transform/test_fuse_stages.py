"""The fuse-stages pass: ablation identity, boundaries, config round-trip."""

import pytest

from repro import api
from repro.api import Pash, PashConfig
from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import (
    AggregatorNode,
    CatNode,
    CommandNode,
    FusedStage,
    RelayNode,
    SplitNode,
)
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import EagerMode, ParallelizationConfig, optimize_graph
from repro.workloads.oneliners import ONE_LINERS

WIDTH = 4

CHAIN_SCRIPT = "cat a.txt b.txt | grep foo | tr a-z A-Z | sed s/OO/0/ > out.txt"


def compiled(script, **overrides):
    return Pash(PashConfig.paper_default(WIDTH, **overrides)).compile(script)


def fused_nodes(graph):
    return [node for node in graph.nodes.values() if isinstance(node, FusedStage)]


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------


def test_linear_stateless_chains_fuse_into_single_nodes():
    graph = compiled(CHAIN_SCRIPT).optimized_graphs[0]
    stages = fused_nodes(graph)
    assert len(stages) == 2  # one grep|tr|sed chain per cat input
    for stage in stages:
        assert [member.name for member in stage.nodes] == ["grep", "tr", "sed"]
        assert len(stage.inputs) == 1 and len(stage.outputs) == 1
    graph.validate()


def test_fusion_reduces_node_count_and_reports():
    fused = compiled(CHAIN_SCRIPT)
    unfused = compiled(CHAIN_SCRIPT, fuse_stages=False)
    fused_graph, unfused_graph = fused.optimized_graphs[0], unfused.optimized_graphs[0]
    saved = sum(len(stage.nodes) - 1 for stage in fused_nodes(fused_graph))
    assert saved > 0
    assert len(fused_graph.nodes) == len(unfused_graph.nodes) - saved
    assert fused.reports[0].fused_stages == len(fused_nodes(fused_graph))
    assert unfused.reports[0].fused_stages == 0


def test_fusion_never_crosses_relays_splits_or_fan_in():
    """Relay/cat/split/aggregator populations are identical with and without
    fusion — only plain command nodes are ever absorbed into stages."""
    for eager in (EagerMode.EAGER, EagerMode.BLOCKING):
        fused = Pash(
            PashConfig(width=WIDTH, eager=eager)
        ).compile(CHAIN_SCRIPT).optimized_graphs[0]
        unfused = Pash(
            PashConfig(width=WIDTH, eager=eager, fuse_stages=False)
        ).compile(CHAIN_SCRIPT).optimized_graphs[0]

        def census(graph):
            return {
                kind: len([n for n in graph.nodes.values() if isinstance(n, kind)])
                for kind in (RelayNode, CatNode, SplitNode, AggregatorNode)
            }

        assert census(fused) == census(unfused)
        # Every fused member is a stateless command; boundary nodes never fuse.
        for stage in fused_nodes(fused):
            assert all(isinstance(member, CommandNode) for member in stage.nodes)


def test_blocking_relays_separate_chains():
    graph = Pash(
        PashConfig(width=WIDTH, eager=EagerMode.BLOCKING)
    ).compile(CHAIN_SCRIPT).optimized_graphs[0]
    blocking = [
        node
        for node in graph.nodes.values()
        if isinstance(node, RelayNode) and node.blocking
    ]
    assert blocking  # the configuration actually inserted blocking relays
    for relay in blocking:
        for edge_id in relay.inputs + relay.outputs:
            edge = graph.edge(edge_id)
            for endpoint in (edge.source, edge.target):
                if endpoint is not None and endpoint != relay.node_id:
                    # Neighbours may be fused stages, but the relay itself
                    # stayed a distinct node on a real edge.
                    assert endpoint in graph.nodes


def test_single_commands_are_not_wrapped():
    graph = compiled("cat a.txt b.txt | grep foo > out.txt").optimized_graphs[0]
    assert fused_nodes(graph) == []


def test_legacy_parallelization_config_defaults_to_unfused():
    graph = DFGBuilder().build_from_script(CHAIN_SCRIPT)
    optimize_graph(graph, ParallelizationConfig.paper_default(WIDTH))
    assert fused_nodes(graph) == []


# ---------------------------------------------------------------------------
# Ablation identity: bit-for-bit equal outputs on all Table-2 one-liners
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("one_liner", ONE_LINERS, ids=lambda b: b.name)
def test_ablation_is_bit_for_bit_identical_on_table2(one_liner):
    script = one_liner.script_for_width(WIDTH)
    dataset = one_liner.correctness_dataset(WIDTH, 240)

    def run(**overrides):
        environment = ExecutionEnvironment(
            filesystem=VirtualFileSystem({name: list(data) for name, data in dataset.items()})
        )
        result = api.run(
            script,
            config=PashConfig.paper_default(WIDTH, **overrides),
            backend="interpreter",
            environment=environment,
        )
        return result.stdout, dict(result.files)

    assert run() == run(fuse_stages=False)
    assert run() == run(disabled_passes=("fuse-stages",))


def test_disable_pass_matches_config_flag_structurally():
    by_flag = compiled(CHAIN_SCRIPT, fuse_stages=False)
    by_name = compiled(CHAIN_SCRIPT, disabled_passes=("fuse-stages",))
    shape = lambda g: [  # noqa: E731 - tiny local fingerprint
        (type(node).__name__, getattr(node, "name", "")) for node in g.topological_order()
    ]
    assert shape(by_flag.optimized_graphs[0]) == shape(by_name.optimized_graphs[0])


# ---------------------------------------------------------------------------
# Config round-trip and emission
# ---------------------------------------------------------------------------


def test_disable_pass_round_trips_through_config_dicts():
    config = PashConfig.paper_default(WIDTH, disabled_passes=("fuse-stages",))
    restored = PashConfig.from_dict(config.to_dict())
    assert restored == config
    assert restored.disabled_passes == ("fuse-stages",)
    assert "fuse-stages" not in restored.pipeline().names()

    flagged = PashConfig.paper_default(WIDTH, fuse_stages=False)
    assert PashConfig.from_dict(flagged.to_dict()) == flagged
    assert PashConfig.from_dict(flagged.to_dict()).fuse_stages is False


def test_emitted_script_renders_fused_stage_as_pipeline():
    text = Pash(
        PashConfig.paper_default(WIDTH, fifo_prefix="fifo")
    ).compile(CHAIN_SCRIPT).text
    assert "grep foo < a.txt | tr a-z A-Z | sed s/OO/0/" in text
