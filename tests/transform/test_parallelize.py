"""Tests for the node-parallelization transformation T (§4.2)."""

from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode
from repro.transform.parallelize import (
    is_parallelizable_node,
    parallelize_node,
    preceding_concatenation,
)


def build(script):
    return DFGBuilder().build_from_script(script)


def command_nodes(graph, name=None):
    nodes = [node for node in graph.nodes.values() if isinstance(node, CommandNode)]
    if name is not None:
        nodes = [node for node in nodes if node.name == name]
    return nodes


def test_is_parallelizable_node():
    graph = build("cat a.txt | grep x | sort | sha1sum")
    by_name = {node.name: node for node in command_nodes(graph)}
    assert is_parallelizable_node(by_name["grep"])
    assert is_parallelizable_node(by_name["sort"])
    assert not is_parallelizable_node(by_name["sha1sum"])


def test_preceding_concatenation_detects_cat_command():
    graph = build("cat a.txt b.txt c.txt | grep x")
    grep = command_nodes(graph, "grep")[0]
    concatenation = preceding_concatenation(graph, grep)
    assert concatenation is not None
    assert concatenation.name == "cat"


def test_preceding_concatenation_requires_two_streams():
    graph = build("cat a.txt | grep x")
    grep = command_nodes(graph, "grep")[0]
    assert preceding_concatenation(graph, grep) is None


def test_stateless_parallelization_creates_copies_and_cat():
    graph = build("cat a.txt b.txt c.txt | grep x > out.txt")
    grep = command_nodes(graph, "grep")[0]
    copies = parallelize_node(graph, grep)
    assert len(copies) == 3
    assert all(copy.parallelized_copy for copy in copies)
    # The original cat and grep are gone; a combining CatNode appears.
    assert not command_nodes(graph, "cat")
    assert len(graph.nodes_of_kind("cat")) == 1
    graph.validate()


def test_stateless_copies_preserve_arguments():
    graph = build("cat a.txt b.txt | grep -i foo > out.txt")
    grep = command_nodes(graph, "grep")[0]
    copies = parallelize_node(graph, grep)
    assert all(copy.arguments == ["-i", "foo"] for copy in copies)


def test_pure_parallelization_builds_aggregation_tree():
    graph = build("cat a.txt b.txt c.txt d.txt | sort -rn > out.txt")
    sort = command_nodes(graph, "sort")[0]
    copies = parallelize_node(graph, sort, fan_in=2)
    assert len(copies) == 4
    aggregators = [n for n in graph.nodes.values() if isinstance(n, AggregatorNode)]
    # 4 streams -> binary tree of 3 merge nodes.
    assert len(aggregators) == 3
    assert all(agg.aggregator == "merge_sort" for agg in aggregators)
    assert all(agg.command_arguments == ["-rn"] for agg in aggregators)
    graph.validate()


def test_pure_parallelization_flat_aggregator():
    graph = build("cat a.txt b.txt c.txt d.txt | wc -l > out.txt")
    wc = command_nodes(graph, "wc")[0]
    parallelize_node(graph, wc, fan_in=0)
    aggregators = [n for n in graph.nodes.values() if isinstance(n, AggregatorNode)]
    assert len(aggregators) == 1
    assert len(aggregators[0].inputs) == 4


def test_max_copies_groups_streams():
    graph = build("cat a b c d e f g h | grep x > out.txt")
    grep = command_nodes(graph, "grep")[0]
    copies = parallelize_node(graph, grep, max_copies=4)
    assert len(copies) == 4
    # Grouping inserts small cat nodes upstream of the copies.
    group_cats = [
        node
        for node in graph.nodes_of_kind("cat")
        if isinstance(node, CatNode) and node.outputs and len(node.inputs) == 2
    ]
    assert len(group_cats) >= 4 - 1
    graph.validate()


def test_output_edge_reconnected_to_combiner():
    graph = build("cat a.txt b.txt | grep x > out.txt")
    grep = command_nodes(graph, "grep")[0]
    parallelize_node(graph, grep)
    out_edge = graph.output_edges()[0]
    assert out_edge.name == "out.txt"
    producer = graph.node(out_edge.source)
    assert isinstance(producer, CatNode)


def test_non_parallelizable_node_returns_empty():
    graph = build("cat a.txt b.txt | sha1sum")
    sha = command_nodes(graph, "sha1sum")[0]
    assert parallelize_node(graph, sha) == []


def test_no_concatenation_returns_empty():
    graph = build("cat a.txt | grep x")
    grep = command_nodes(graph, "grep")[0]
    assert parallelize_node(graph, grep) == []
