"""Tests for the auxiliary transformations (cat/split/relay insertion)."""

from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, RelayNode, SplitNode
from repro.transform.auxiliary import (
    insert_cat_for_multi_input,
    insert_eager_relays,
    insert_relay,
    insert_split_before,
)
from repro.transform.parallelize import parallelize_node


def build(script):
    return DFGBuilder().build_from_script(script)


def node_by_name(graph, name):
    return next(n for n in graph.nodes.values() if isinstance(n, CommandNode) and n.name == name)


def test_insert_cat_for_multi_input_grep():
    graph = build("grep foo a.txt b.txt")
    grep = node_by_name(graph, "grep")
    cat_node = insert_cat_for_multi_input(graph, grep)
    assert isinstance(cat_node, CatNode)
    assert len(cat_node.inputs) == 2
    assert len(grep.data_inputs) == 1
    graph.validate()


def test_insert_cat_not_applicable_for_single_input():
    graph = build("grep foo a.txt")
    grep = node_by_name(graph, "grep")
    assert insert_cat_for_multi_input(graph, grep) is None


def test_insert_cat_not_applicable_for_order_sensitive_commands():
    graph = build("comm a.txt b.txt")
    comm = node_by_name(graph, "comm")
    assert insert_cat_for_multi_input(graph, comm) is None


def test_insert_split_before_creates_split_and_cat():
    graph = build("cat big.txt | grep x > out.txt")
    grep = node_by_name(graph, "grep")
    cat_node = insert_split_before(graph, grep, width=4)
    assert isinstance(cat_node, CatNode)
    splits = graph.nodes_of_kind("split")
    assert len(splits) == 1
    assert len(splits[0].outputs) == 4
    graph.validate()


def test_insert_split_width_one_is_noop():
    graph = build("cat big.txt | grep x")
    grep = node_by_name(graph, "grep")
    assert insert_split_before(graph, grep, width=1) is None


def test_insert_split_strategy_recorded():
    graph = build("cat big.txt | grep x")
    grep = node_by_name(graph, "grep")
    insert_split_before(graph, grep, width=2, strategy="input-aware")
    split = graph.nodes_of_kind("split")[0]
    assert split.strategy == "input-aware"


def test_split_then_parallelize_round_trips():
    graph = build("cat big.txt | grep x > out.txt")
    grep = node_by_name(graph, "grep")
    cat_node = insert_split_before(graph, grep, width=3)
    copies = parallelize_node(graph, grep, cat_node)
    assert len(copies) == 3
    graph.validate()


def test_insert_relay_splices_edge():
    graph = build("cat a.txt | sort")
    sort = node_by_name(graph, "sort")
    edge = graph.edge(sort.inputs[0])
    relay = insert_relay(graph, edge, eager=True)
    assert isinstance(relay, RelayNode)
    assert graph.predecessors(sort)[0] is relay
    graph.validate()


def test_insert_eager_relays_on_aggregator_inputs():
    graph = build("cat a.txt b.txt c.txt d.txt | sort > out.txt")
    sort = node_by_name(graph, "sort")
    parallelize_node(graph, sort)
    relays = insert_eager_relays(graph)
    aggregators = [n for n in graph.nodes.values() if isinstance(n, AggregatorNode)]
    # Two relays per binary aggregator (both inputs are buffered).
    assert len(relays) == 2 * len(aggregators)
    graph.validate()


def test_insert_eager_relays_blocking_mode():
    graph = build("cat a.txt b.txt | sort > out.txt")
    sort = node_by_name(graph, "sort")
    parallelize_node(graph, sort)
    relays = insert_eager_relays(graph, eager=False, blocking=True)
    assert relays and all(relay.blocking for relay in relays)


def test_insert_eager_relays_on_cat_combiner_all_but_last():
    graph = build("cat a.txt b.txt c.txt | grep x > out.txt")
    grep = node_by_name(graph, "grep")
    parallelize_node(graph, grep)
    relays = insert_eager_relays(graph)
    combiner = graph.nodes_of_kind("cat")[0]
    assert len(relays) == len(combiner.inputs) - 1


def test_insert_eager_relays_after_split_outputs():
    graph = build("cat big.txt | grep x > out.txt")
    grep = node_by_name(graph, "grep")
    cat_node = insert_split_before(graph, grep, width=4)
    parallelize_node(graph, grep, cat_node)
    relays = insert_eager_relays(graph)
    split = graph.nodes_of_kind("split")[0]
    # all but the last split output are buffered, plus the cat combiner inputs
    assert len(relays) >= len(split.outputs) - 1
    graph.validate()


def test_relays_are_not_double_inserted():
    graph = build("cat a.txt b.txt | grep x > out.txt")
    grep = node_by_name(graph, "grep")
    parallelize_node(graph, grep)
    first = insert_eager_relays(graph)
    second = insert_eager_relays(graph)
    assert len(second) == 0 or len(second) < len(first)
