"""Tests for the optimization pass driver and its configurations."""

from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import AggregatorNode, CommandNode, RelayNode, SplitNode
from repro.transform.pipeline import (
    EagerMode,
    ParallelizationConfig,
    SplitMode,
    optimize_graph,
    relevant_configurations,
)


def build(script):
    return DFGBuilder().build_from_script(script)


def names(graph):
    return [node.name for node in graph.nodes.values() if isinstance(node, CommandNode)]


def test_default_config_values():
    config = ParallelizationConfig()
    assert config.width == 2
    assert config.eager is EagerMode.EAGER
    assert config.split is SplitMode.GENERAL


def test_named_configurations():
    configs = relevant_configurations(8)
    assert set(configs) == {
        "Par + Split",
        "Par + B. Split",
        "Parallel",
        "Blocking Eager",
        "No Eager",
    }
    assert configs["No Eager"].eager is EagerMode.NONE
    assert configs["Parallel"].split is SplitMode.NONE
    assert configs["Par + B. Split"].split is SplitMode.INPUT_AWARE


def test_width_one_does_not_parallelize():
    graph = build("cat a.txt b.txt | grep x")
    report = optimize_graph(graph, ParallelizationConfig(width=1))
    assert report.parallelized_count == 0


def test_existing_concatenation_is_commuted():
    graph = build("cat a.txt b.txt c.txt d.txt | grep x > out.txt")
    report = optimize_graph(graph, ParallelizationConfig.parallel_only(4))
    assert report.parallelized_count == 1
    assert names(graph).count("grep") == 4
    assert names(graph).count("cat") == 0
    graph.validate()


def test_split_enables_single_input_parallelization():
    graph = build("cat big.txt | grep x > out.txt")
    report = optimize_graph(graph, ParallelizationConfig.paper_default(4))
    assert report.inserted_splits >= 1
    assert names(graph).count("grep") == 4
    assert len(graph.nodes_of_kind("split")) >= 1
    graph.validate()


def test_no_split_single_input_is_left_alone():
    graph = build("cat big.txt | grep x > out.txt")
    report = optimize_graph(graph, ParallelizationConfig.parallel_only(4))
    assert names(graph).count("grep") == 1
    assert report.parallelized_count == 0


def test_consecutive_stages_share_the_parallel_structure():
    graph = build("cat a b c d | grep x | tr A-Z a-z | sort > out.txt")
    optimize_graph(graph, ParallelizationConfig.parallel_only(4))
    node_names = names(graph)
    assert node_names.count("grep") == 4
    assert node_names.count("tr") == 4
    assert node_names.count("sort") == 4
    aggregators = [n for n in graph.nodes.values() if isinstance(n, AggregatorNode)]
    assert len(aggregators) == 3
    graph.validate()


def test_width_caps_copies_when_more_chunks_than_width():
    graph = build("cat a b c d e f g h | grep x > out.txt")
    optimize_graph(graph, ParallelizationConfig.parallel_only(2))
    assert names(graph).count("grep") == 2
    graph.validate()


def test_eager_modes_control_relays():
    for mode, expect_relays, expect_blocking in (
        (ParallelizationConfig.paper_default(4), True, False),
        (ParallelizationConfig.blocking_eager(4), True, True),
        (ParallelizationConfig.no_eager(4), False, False),
    ):
        graph = build("cat a b c d | sort > out.txt")
        optimize_graph(graph, mode)
        relays = [n for n in graph.nodes.values() if isinstance(n, RelayNode)]
        assert bool(relays) == expect_relays
        if relays:
            assert all(relay.blocking == expect_blocking for relay in relays)


def test_report_contents():
    graph = build("cat a b | grep x | sort > out.txt")
    report = optimize_graph(graph, ParallelizationConfig.paper_default(2))
    assert "grep x" in report.parallelized_commands
    assert report.inserted_relays > 0
    assert report.compile_time_seconds >= 0.0


def test_aggregation_fan_in_controls_tree_shape():
    flat = build("cat a b c d e f g h | sort > out.txt")
    optimize_graph(flat, ParallelizationConfig(width=8, aggregation_fan_in=0, split=SplitMode.NONE))
    flat_aggs = [n for n in flat.nodes.values() if isinstance(n, AggregatorNode)]
    assert len(flat_aggs) == 1

    tree = build("cat a b c d e f g h | sort > out.txt")
    optimize_graph(tree, ParallelizationConfig(width=8, aggregation_fan_in=2, split=SplitMode.NONE))
    tree_aggs = [n for n in tree.nodes.values() if isinstance(n, AggregatorNode)]
    assert len(tree_aggs) == 7


def test_positional_tail_is_not_parallelized():
    graph = build("tail -n+2 words.txt | sort > out.txt")
    optimize_graph(graph, ParallelizationConfig.paper_default(4))
    assert names(graph).count("tail") == 1


def test_non_parallelizable_commands_survive_untouched():
    graph = build("cat a b | sha1sum")
    report = optimize_graph(graph, ParallelizationConfig.paper_default(4))
    assert names(graph).count("sha1sum") == 1
    assert "sha1sum" not in " ".join(report.parallelized_commands)


def test_table2_sort_node_count_at_16():
    """The paper reports 77 processes for the Sort script at width 16."""
    chunks = " ".join(f"in{i}.txt" for i in range(16))
    graph = build(f"cat {chunks} | tr A-Z a-z | sort > out.txt")
    optimize_graph(graph, ParallelizationConfig.paper_default(16))
    assert len(graph.nodes) == 77


def test_split_strategy_propagated_to_split_nodes():
    graph = build("cat big.txt | grep x > out.txt")
    optimize_graph(graph, ParallelizationConfig.blocking_split(4))
    split = graph.nodes_of_kind("split")[0]
    assert isinstance(split, SplitNode)
    assert split.strategy == "input-aware"
