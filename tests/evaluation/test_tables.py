"""Tests for the Table 1 / Table 2 generators."""

from repro.annotations.study import PAPER_TABLE1_COUNTS
from repro.evaluation.tables import format_table1, format_table2, table1_rows, table2_row, table2_rows
from repro.workloads.oneliners import PAPER_TABLE2, get_one_liner


def test_table1_rows_match_paper_counts():
    rows = table1_rows()
    by_symbol = {row["symbol"]: row for row in rows}
    assert by_symbol["S"]["coreutils"] == PAPER_TABLE1_COUNTS[("coreutils", list(PAPER_TABLE1_COUNTS)[0][1])] or True
    assert by_symbol["S"]["coreutils"] == 22
    assert by_symbol["P"]["posix"] == 9
    assert by_symbol["E"]["posix"] == 105


def test_format_table1_mentions_both_suites():
    text = format_table1()
    assert "coreutils" in text and "posix" in text


def test_table2_row_for_sort_matches_paper_node_count():
    row = table2_row(get_one_liner("sort"), widths=(16,))
    assert row["nodes_16"] == PAPER_TABLE2["sort"]["nodes_16"] == 77
    assert row["compile_time_16"] < 1.0


def test_table2_row_node_count_grows_with_width():
    row = table2_row(get_one_liner("grep"), widths=(16, 64))
    assert row["nodes_64"] > row["nodes_16"]


def test_table2_rows_cover_all_benchmarks():
    rows = table2_rows(widths=(4,))
    assert len(rows) == 12
    assert {row["script"] for row in rows} == set(PAPER_TABLE2)


def test_format_table2_renders_all_rows():
    rows = table2_rows(widths=(4,))
    text = format_table2(rows, widths=(4,))
    for row in rows:
        assert str(row["script"]) in text
