"""Tests for the shared evaluation harness."""

import pytest

from repro.evaluation.harness import (
    check_benchmark_correctness,
    measure_benchmark,
    measured_speedup,
    script_graphs,
    simulate_benchmark,
    simulate_script,
    speedup_for_width,
    timing_library,
)
from repro.simulator.machine import MachineModel
from repro.transform.pipeline import ParallelizationConfig
from repro.workloads.oneliners import ONE_LINERS, get_one_liner


def test_timing_library_translates_awk():
    graphs = script_graphs(
        "cat a.txt | awk '{print $1}' | sort", ParallelizationConfig.paper_default(4)
    )
    assert len(graphs.sequential) == 1
    assert graphs.rejected_statements == 1
    # The rejected statement is carried over unoptimized.
    assert len(graphs.parallel) == 1
    assert len(graphs.parallel[0].nodes) == len(graphs.sequential[0].nodes)


def test_script_graphs_optimizes_accepted_statements():
    graphs = script_graphs(
        "cat a.txt b.txt | grep x > out.txt", ParallelizationConfig.paper_default(2)
    )
    assert graphs.rejected_statements == 0
    assert len(graphs.parallel[0].nodes) > len(graphs.sequential[0].nodes)
    assert graphs.node_count == len(graphs.parallel[0].nodes)


def test_simulate_script_returns_consistent_results():
    sequential, parallel, graphs = simulate_script(
        "cat in0.txt in1.txt | grep light | sort > out.txt",
        {"in0.txt": 2_000_000, "in1.txt": 2_000_000},
        ParallelizationConfig.paper_default(2),
        machine=MachineModel.paper_testbed(),
    )
    assert sequential.total_seconds > 0
    assert parallel.total_seconds > 0
    assert parallel.total_seconds < sequential.total_seconds
    assert graphs.node_count > 0


def test_simulate_benchmark_run_fields():
    run = simulate_benchmark(get_one_liner("sort"), width=4)
    assert run.name == "sort" and run.width == 4
    assert run.node_count > 0
    assert run.speedup > 1.0
    assert run.compile_time_seconds >= 0.0


def test_speedup_for_width_increases_with_width():
    benchmark = get_one_liner("grep")
    narrow = speedup_for_width(benchmark, 2)
    wide = speedup_for_width(benchmark, 16)
    assert wide > narrow > 1.0


@pytest.mark.parametrize("one_liner", ONE_LINERS, ids=lambda b: b.name)
def test_every_one_liner_is_output_identical_under_parallelization(one_liner):
    report = check_benchmark_correctness(one_liner, width=4, lines=400)
    assert report.identical, f"{one_liner.name}: {report.differing_lines} differing lines"


def test_correctness_report_flags_differences():
    report = check_benchmark_correctness(get_one_liner("wf"), width=3, lines=300)
    assert report.differing_lines == 0
    assert report.sequential_output == report.parallel_output


def test_correctness_check_on_parallel_engine_backend():
    report = check_benchmark_correctness(
        get_one_liner("grep"), width=2, lines=200, backend="parallel"
    )
    assert report.identical


def test_measure_benchmark_reports_wall_clock_and_metrics():
    run = measure_benchmark(
        get_one_liner("grep"),
        width=2,
        backend="parallel",
        lines=200,
        config=ParallelizationConfig.paper_default(2),
    )
    assert run.backend == "parallel"
    assert run.elapsed_seconds > 0
    assert run.metrics.worker_count >= 2
    assert run.metrics.total_bytes_moved > 0


def test_measured_speedup_compares_identical_workloads():
    baseline, parallel, speedup = measured_speedup(get_one_liner("grep"), width=2, lines=200)
    assert baseline.backend == "interpreter"
    assert parallel.backend == "parallel"
    assert baseline.output_lines == parallel.output_lines
    assert speedup > 0


def test_timing_library_is_a_copy():
    library = timing_library()
    from repro.annotations.library import standard_library

    assert standard_library().classify("awk", []) .value == "side-effectful"
    assert library.classify("awk", []).value == "non-parallelizable"
