"""Tests for the use-case and micro-benchmark harnesses."""

from repro.evaluation.microbench import (
    gnu_parallel_comparison,
    naive_parallel_incorrectness,
    parallel_sort_comparison,
    pash_bio_correctness,
)
from repro.evaluation.usecases import (
    noaa_correctness,
    noaa_usecase,
    wikipedia_correctness,
    wikipedia_usecase,
)


def test_noaa_usecase_speedups():
    results = noaa_usecase(widths=(2, 10), stations_per_year=500)
    two, ten = results["widths"][2], results["widths"][10]
    assert 1.5 <= two["speedup"] <= 2.5
    assert ten["speedup"] > two["speedup"]


def test_noaa_correctness_identical():
    outcome = noaa_correctness(years=[2015], stations=4)
    assert outcome["identical"]
    assert outcome["sequential"]
    assert outcome["sequential"][0].startswith("Maximum temperature for 2015")


def test_wikipedia_usecase_speedups():
    results = wikipedia_usecase(widths=(2, 16), url_count=2000)
    two, sixteen = results["widths"][2], results["widths"][16]
    assert 1.5 <= two["speedup"] <= 2.5
    assert sixteen["speedup"] > 8


def test_wikipedia_correctness_identical():
    outcome = wikipedia_correctness(pages=8, width=4)
    assert outcome["identical"]
    assert outcome["sequential"]


def test_parallel_sort_comparison_shape():
    rows = parallel_sort_comparison(widths=(4, 16), total_lines=20_000_000)
    assert [row["width"] for row in rows] == [4, 16]
    for row in rows:
        assert row["pash"] >= row["pash_no_eager"] * 0.95
    # At higher widths PaSh matches or beats the modelled sort --parallel.
    assert rows[-1]["pash"] >= rows[-1]["sort_parallel"] * 0.9


def test_naive_parallel_breaks_output():
    outcome = naive_parallel_incorrectness(lines=400, width=4)
    assert not outcome["identical"]
    assert outcome["differing_fraction"] > 0.5


def test_pash_transformation_is_correct_on_the_same_pipeline():
    assert pash_bio_correctness(lines=400, width=4)


def test_gnu_parallel_comparison_report():
    report = gnu_parallel_comparison(total_lines=2_000_000, width=8)
    assert report["pash_speedup"] > 1.0
    assert report["single_stage_speedup"] >= 1.0
    assert report["naive_differing_fraction"] > 0.5
    assert report["pash_output_identical"]
