"""Tests for the Fig. 7 / Fig. 8 generators (small widths to stay fast)."""

from repro.evaluation.figures import (
    best_configuration_speedups,
    figure7_series,
    figure8_point,
    figure8_series,
    figure8_summary,
)
from repro.workloads.oneliners import get_one_liner
from repro.workloads.unix50 import get_pipeline


def test_figure7_series_has_all_configurations():
    series = figure7_series(get_one_liner("sort"), widths=(2, 8))
    assert set(series) == {
        "Par + Split",
        "Par + B. Split",
        "Parallel",
        "Blocking Eager",
        "No Eager",
    }
    assert set(series["Par + Split"]) == {2, 8}


def test_figure7_sort_shape_matches_paper():
    series = figure7_series(get_one_liner("sort"), widths=(2, 8, 16))
    best = series["Par + Split"]
    assert 1.5 <= best[2] <= 2.5
    assert best[8] > best[2]
    assert best[16] < 12  # sort saturates well below linear scaling
    assert series["No Eager"][16] <= best[16]


def test_figure7_grep_scales_nearly_linearly():
    series = figure7_series(get_one_liner("grep"), widths=(2, 16))
    assert series["Par + Split"][16] > 10


def test_figure7_topn_split_beats_no_split():
    series = figure7_series(get_one_liner("top-n"), widths=(8,))
    assert series["Par + Split"][8] > series["Parallel"][8]


def test_best_configuration_speedups_monotone_in_width():
    averages = best_configuration_speedups(
        benchmarks=[get_one_liner("grep"), get_one_liner("sort")], widths=(2, 8)
    )
    assert averages[8] > averages[2] > 1.0


def test_figure8_point_groups():
    fast = figure8_point(get_pipeline(0), width=8)
    assert fast["speedup"] > 2.0
    blocked = figure8_point(get_pipeline(13), width=8)
    assert 0.8 <= blocked["speedup"] <= 1.1
    tiny = figure8_point(get_pipeline(2), width=8)
    assert tiny["speedup"] < 1.0


def test_figure8_series_and_summary():
    pipelines = [get_pipeline(i) for i in (0, 2, 4, 13)]
    points = figure8_series(width=8, pipelines=pipelines)
    assert len(points) == 4
    summary = figure8_summary(points)
    assert set(summary) == {"average", "median", "weighted_average"}
    assert summary["average"] > 0
