"""Tests for the end-to-end compiler."""

from repro.backend.compiler import compile_and_report, compile_script
from repro.transform.pipeline import ParallelizationConfig


def test_single_pipeline_is_replaced():
    compiled = compile_script(
        "cat a.txt b.txt | grep x > out.txt", ParallelizationConfig.paper_default(2)
    )
    assert "mkfifo" in compiled.text
    assert compiled.stats.regions_parallelized == 1
    assert compiled.stats.regions_rejected == 0
    assert compiled.node_count > 3


def test_untouched_fragments_are_preserved():
    source = "cat a.txt b.txt | grep x > f3 && sort f3"
    compiled = compile_script(source, ParallelizationConfig.paper_default(2))
    # The && structure survives; the right-hand side is also parallelized (via
    # split) or left as plain `sort f3`.
    assert "&&" in compiled.text


def test_rejected_statements_appear_verbatim():
    source = "cat a.txt | awk '{print $1}'\ncat b.txt c.txt | grep x > out.txt"
    compiled = compile_script(source, ParallelizationConfig.paper_default(2))
    assert "awk" in compiled.text
    assert compiled.stats.regions_rejected == 1
    assert compiled.stats.regions_parallelized == 1


def test_for_loop_with_dynamic_variable_is_preserved():
    source = "for y in 2015 2016; do\ncat $y.txt | grep x\ndone"
    compiled = compile_script(source, ParallelizationConfig.paper_default(2))
    assert compiled.text.startswith("for y in 2015 2016; do")
    assert "done" in compiled.text


def test_assignments_are_preserved_and_used():
    source = "IN=data_a.txt\ncat $IN | grep x > out.txt"
    compiled = compile_script(source, ParallelizationConfig.paper_default(2))
    assert compiled.text.splitlines()[0] == "IN=data_a.txt"
    assert "data_a.txt" in compiled.text


def test_width_increases_node_count():
    source = "cat " + " ".join(f"c{i}.txt" for i in range(8)) + " | grep x | sort > out.txt"
    narrow = compile_script(source, ParallelizationConfig.paper_default(2))
    wide = compile_script(source, ParallelizationConfig.paper_default(8))
    assert wide.node_count > narrow.node_count


def test_compile_time_recorded():
    compiled = compile_script("cat a.txt b.txt | sort > out.txt")
    assert compiled.stats.compile_time_seconds > 0.0


def test_compile_and_report_multiple_widths():
    source = "cat a.txt b.txt | grep x > out.txt"
    results = compile_and_report(source, widths=(2, 4))
    assert set(results) == {2, 4}
    assert results[4].node_count >= results[2].node_count


def test_no_parallelization_returns_original_script_text():
    source = "cat a.txt | awk '{print $1}'"
    compiled = compile_script(source, ParallelizationConfig.paper_default(4))
    assert "mkfifo" not in compiled.text
    assert compiled.stats.regions_parallelized == 0
