"""Tests for DFG → parallel shell script emission."""

import shutil
import subprocess

import pytest

from repro.backend.shell_emitter import EmitterOptions, emit_parallel_script
from repro.dfg.builder import DFGBuilder
from repro.transform.pipeline import ParallelizationConfig, optimize_graph


def emitted(script, width=2, config=None, options=None):
    graph = DFGBuilder().build_from_script(script)
    optimize_graph(graph, config or ParallelizationConfig.paper_default(width))
    return emit_parallel_script(graph, options or EmitterOptions())


def test_header_and_shebang():
    text = emitted("cat a.txt b.txt | grep x > out.txt")
    assert text.startswith("#!/bin/sh")


def test_mkfifo_created_for_pipe_edges():
    text = emitted("cat a.txt b.txt | grep x > out.txt")
    assert "mkfifo " in text
    assert "/tmp/pash_fifo_" in text


def test_background_jobs_and_wait():
    text = emitted("cat a.txt b.txt | grep x > out.txt")
    assert text.count(" &\n") >= 3
    assert "wait $pash_output_pids" in text


def test_cleanup_sends_pipe_signal_and_removes_fifos():
    text = emitted("cat a.txt b.txt | grep x > out.txt")
    assert "kill -PIPE" in text
    assert "rm -f /tmp/pash_fifo_" in text


def test_cleanup_can_be_disabled():
    text = emitted(
        "cat a.txt b.txt | grep x > out.txt",
        options=EmitterOptions(cleanup=False, header=False),
    )
    assert "wait" not in text and "rm -f" not in text


def test_parallel_copies_appear():
    text = emitted("cat a.txt b.txt | grep foo > out.txt")
    assert text.count("grep foo") == 2


def test_aggregator_uses_sort_m():
    text = emitted("cat a.txt b.txt | sort -rn > out.txt")
    assert "sort -m -rn" in text


def test_custom_aggregator_uses_runtime_cli():
    text = emitted("cat a.txt b.txt | wc -l > out.txt")
    assert "-m repro.runtime.cli agg merge_wc" in text


def test_eager_relays_emitted():
    text = emitted("cat a.txt b.txt | sort > out.txt")
    assert "repro.runtime.cli eager --mode eager" in text


def test_split_emitted_for_single_input():
    text = emitted("cat big.txt | grep x > out.txt", width=4)
    assert "repro.runtime.cli split --strategy general" in text


def test_output_redirection_preserved():
    text = emitted("cat a.txt b.txt | grep x > result.txt")
    assert "> result.txt" in text


def test_arguments_are_quoted():
    text = emitted("cat a.txt b.txt | grep 'a b' > out.txt")
    assert "'a b'" in text


def test_fifo_prefix_and_directory_options():
    text = emitted(
        "cat a.txt b.txt | grep x > out.txt",
        options=EmitterOptions(fifo_directory="/dev/shm", fifo_prefix="edge"),
    )
    assert "/dev/shm/edge_" in text


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_emitted_script_runs_under_real_shell(tmp_path):
    """End-to-end: the emitted script runs with real coreutils and matches."""
    for required in ("mkfifo", "grep", "sort", "cat"):
        if shutil.which(required) is None:
            pytest.skip(f"missing {required}")
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("banana\napple foo\n")
    b.write_text("cherry foo\ndate\n")
    script = f"cat {a} {b} | grep foo | sort > {tmp_path}/out.txt"

    graph = DFGBuilder().build_from_script(script)
    optimize_graph(graph, ParallelizationConfig.paper_default(2))
    options = EmitterOptions(fifo_directory=str(tmp_path))
    text = emit_parallel_script(graph, options)
    completed = subprocess.run(
        ["sh", "-c", text], capture_output=True, text=True, timeout=60, cwd=str(tmp_path)
    )
    assert completed.returncode == 0, completed.stderr
    assert (tmp_path / "out.txt").read_text().splitlines() == ["apple foo", "cherry foo"]
