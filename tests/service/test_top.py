"""``pash-top``: the pure frame renderer, the per-tenant rate math, and
the ``--once`` CLI mode against a live daemon."""

import pytest

from repro.service import top

SCRIPT = "cat data.txt | sort | uniq"
FILES = {"data.txt": ["b", "a", "b", "c"]}


def _stats(**overrides):
    stats = {
        "schema": 2,
        "endpoint": "127.0.0.1:7070",
        "uptime_seconds": 3723.0,  # 1:02:03
        "executors": 4,
        "queue_depth": 2,
        "jobs": {"completed": 10, "failed": 1, "cancelled": 0},
        "plan_cache": {
            "hits": 6,
            "misses": 2,
            "negative_hits": 0,
            "entries": 2,
            "disk_hits": 1,
        },
        "pool": {
            "workers": 8,
            "idle": 6,
            "busy": 2,
            "processes_spawned": 8,
            "tasks_reused": 40,
            "workers_replaced": 1,
        },
        "sampler": {"ratio": 0.5, "sampled": 5, "skipped": 5},
        "trace": {"enabled": True, "spans": 12, "dropped_spans": 0},
    }
    stats.update(overrides)
    return stats


def _snapshot(counts):
    return {
        "pash_job_seconds": {
            "kind": "histogram",
            "values": [
                {
                    "labels": {"tenant": tenant},
                    "count": count,
                    "sum": count * 0.05,
                    "p50": 0.04,
                    "p95": 0.09,
                    "p99": 1.5,
                }
                for tenant, count in counts.items()
            ],
        }
    }


class TestRenderFrame:
    def test_header_and_counters(self):
        frame = top.render_frame(_stats(), _snapshot({"t0": 7, "t1": 3}))
        assert "pash-top — 127.0.0.1:7070" in frame
        assert "up 1:02:03" in frame
        assert "queue depth 2   executors 4" in frame
        assert "jobs: 10 done / 1 failed / 0 cancelled" in frame
        assert "plan cache: 6 hits, 2 misses (75% hit rate" in frame
        assert "pool: 8 workers (6 idle / 2 busy), 8 spawned" in frame
        assert "tracing: ratio 0.5 (5 sampled / 5 skipped), 12 spans" in frame

    def test_tenant_table_sorted_by_jobs(self):
        frame = top.render_frame(_stats(), _snapshot({"small": 1, "big": 9}))
        assert frame.index("big") < frame.index("small")
        assert "40.0ms" in frame  # p50 formatted as milliseconds
        assert "1.50s" in frame  # p99 formatted as seconds

    def test_empty_snapshot_renders_placeholder(self):
        frame = top.render_frame(_stats(), {})
        assert "(no jobs observed yet)" in frame

    def test_poolless_stats_omit_pool_line(self):
        frame = top.render_frame(_stats(pool=None), _snapshot({"t0": 1}))
        assert "pool:" not in frame

    def test_no_ansi_in_the_pure_frame(self):
        frame = top.render_frame(_stats(), _snapshot({"t0": 1}))
        assert "\x1b" not in frame


class TestTenantRows:
    def test_rate_from_count_delta(self):
        previous = _snapshot({"t0": 10})
        current = _snapshot({"t0": 16})
        rows = top.tenant_rows(current, previous, interval=2.0)
        assert rows == [
            {"tenant": "t0", "jobs": 16, "rate": 3.0, "p50": 0.04, "p99": 1.5}
        ]

    def test_first_frame_rate_is_total_over_interval(self):
        rows = top.tenant_rows(_snapshot({"t0": 4}), None, interval=2.0)
        assert rows[0]["rate"] == pytest.approx(2.0)

    def test_new_tenant_between_frames(self):
        rows = top.tenant_rows(
            _snapshot({"t0": 4, "fresh": 2}), _snapshot({"t0": 4}), interval=1.0
        )
        by_tenant = {row["tenant"]: row for row in rows}
        assert by_tenant["t0"]["rate"] == 0.0
        assert by_tenant["fresh"]["rate"] == 2.0

    def test_counter_reset_clamps_to_zero(self):
        rows = top.tenant_rows(
            _snapshot({"t0": 1}), _snapshot({"t0": 5}), interval=1.0
        )
        assert rows[0]["rate"] == 0.0


class TestCli:
    def test_once_against_live_daemon(
        self, make_daemon, client_for, run_with_deadline, capsys
    ):
        daemon = make_daemon(executors=1)
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, tenant="ops", files=FILES))
        code = run_with_deadline(
            lambda: top.main(["--connect", daemon.endpoint, "--once"])
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"pash-top — {daemon.endpoint}" in out
        assert "jobs: 1 done" in out
        assert "ops" in out
        assert "\x1b" not in out  # --once never clears the screen

    def test_unreachable_daemon_exits_2(self, capsys):
        code = top.main(["--connect", "127.0.0.1:1", "--once"])
        assert code == 2
        assert "pash-top:" in capsys.readouterr().err
