"""Fault injection against the persistent :class:`DiskPlanCache`.

The disk tier's contract: a bad file — corrupted, truncated, written by a
different release, or hash-colliding — is **never fatal and never wrong**.
Every failure mode reads as a miss, the offender is removed (or poisoned in
memory when removal is impossible), and the next fresh compile re-persists
a good entry.  The end-to-end tests drive a real :class:`JitDriver` over a
sabotaged cache directory and assert byte-identical output either way.
"""

import glob
import os
import pickle
import threading

from repro.api import PashConfig
from repro.engine.api import ExecutionEnvironment
from repro.jit.cache import (
    PLAN_FORMAT_VERSION,
    CompiledPlan,
    DiskPlanCache,
    FailedPlan,
    PlanCache,
    cache_version,
)
from repro.jit.driver import JitDriver
from repro.runtime.streams import VirtualFileSystem

KEY = ("cat a.txt | sort", (("x", "1"),), "0123456789abcdef")
OTHER_KEY = ("cat b.txt | sort", (), "fedcba9876543210")


def make_plan(fingerprint="cat a.txt | sort"):
    # ``graph`` is untyped in CompiledPlan; a plain dict round-trips pickle.
    return CompiledPlan(graph={"nodes": 3}, report=None, fingerprint=fingerprint)


def plan_files(directory):
    return sorted(glob.glob(os.path.join(directory, "*.plan")))


# ---------------------------------------------------------------------------
# Unit level: one cache instance, files sabotaged directly on disk
# ---------------------------------------------------------------------------


def test_round_trip_across_instances(tmp_path):
    first = DiskPlanCache(str(tmp_path))
    first.put(KEY, make_plan())
    assert first.stats.disk_writes == 1
    assert len(plan_files(str(tmp_path))) == 1

    second = DiskPlanCache(str(tmp_path))
    entry = second.get(KEY)
    assert isinstance(entry, CompiledPlan)
    assert entry.fingerprint == "cat a.txt | sort"
    assert second.stats.disk_hits == 1
    # Promoted into memory: the next get is a pure memory hit.
    second.get(KEY)
    assert second.stats.hits == 1
    assert second.stats.disk_hits == 1


def test_corrupted_file_reads_as_miss_and_is_removed(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    cache.put(KEY, make_plan())
    path = plan_files(str(tmp_path))[0]
    with open(path, "wb") as handle:
        handle.write(b"\x00garbage that is not a pickle\xff")

    fresh = DiskPlanCache(str(tmp_path))
    assert fresh.get(KEY) is None
    assert fresh.stats.disk_errors == 1
    assert not os.path.exists(path), "corrupt file should be unlinked"
    # A fresh compile re-puts cleanly and future readers hit again.
    fresh.put(KEY, make_plan())
    assert isinstance(DiskPlanCache(str(tmp_path)).get(KEY), CompiledPlan)


def test_truncated_file_reads_as_miss_and_is_removed(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    cache.put(KEY, make_plan())
    path = plan_files(str(tmp_path))[0]
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(size // 2)  # a crashed non-atomic writer

    fresh = DiskPlanCache(str(tmp_path))
    assert fresh.get(KEY) is None
    assert fresh.stats.disk_errors == 1
    assert not os.path.exists(path)


def test_stale_cache_version_invalidates_on_first_touch(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    path = cache._path(KEY)
    payload = {"version": "0.0.1+plan0", "key": KEY, "entry": make_plan()}
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)

    assert cache.get(KEY) is None
    assert cache.stats.disk_stale == 1
    assert not os.path.exists(path), "stale file should be unlinked"
    # The real version string couples release and plan-format versions.
    assert cache_version().endswith(f"+plan{PLAN_FORMAT_VERSION}")


def test_hash_collision_reads_as_miss_without_deleting(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    path = cache._path(KEY)
    # Simulate a filename collision: the payload belongs to a different key.
    payload = {"version": cache.version, "key": OTHER_KEY, "entry": make_plan()}
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)

    assert cache.get(KEY) is None
    assert os.path.exists(path), "a collision file belongs to its real owner"
    assert cache.stats.disk_errors == 0


def test_foreign_payload_shape_is_discarded(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    path = cache._path(KEY)
    with open(path, "wb") as handle:
        pickle.dump({"version": cache.version, "key": KEY, "entry": "junk"}, handle)
    assert cache.get(KEY) is None
    assert cache.stats.disk_errors == 1
    assert not os.path.exists(path)


def test_negative_entries_stay_memory_only(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    cache.put(KEY, FailedPlan(reason="unsupported", fingerprint="cat a.txt | sort"))
    assert plan_files(str(tmp_path)) == []
    assert cache.stats.disk_writes == 0
    assert isinstance(cache.get(KEY), FailedPlan)  # served from memory
    assert DiskPlanCache(str(tmp_path)).get(KEY) is None  # but never persisted


def test_unpicklable_plan_degrades_to_memory_tier(tmp_path):
    cache = DiskPlanCache(str(tmp_path))
    poisoned = CompiledPlan(
        graph=lambda: None, report=None, fingerprint="f"  # lambdas don't pickle
    )
    cache.put(KEY, poisoned)
    assert cache.stats.disk_errors == 1
    assert plan_files(str(tmp_path)) == []
    assert cache.get(KEY) is poisoned  # memory tier still serves this process


def test_config_digest_ignores_runtime_only_knobs(tmp_path):
    from repro.api.config import StreamingConfig
    from repro.jit.cache import config_digest

    base = PashConfig.paper_default(2, backend="jit")
    # Observability and execution-time knobs must not fragment the cache:
    # a traced daemon and an untraced CLI compile identical graphs.
    variants = [
        base.replace(tracing=True),
        base.replace(report_timeout_seconds=5.0),
        base.replace(jobs=7),
        base.replace(
            streaming=StreamingConfig(spill_directory=str(tmp_path / "spill"))
        ),
    ]
    for variant in variants:
        assert config_digest(variant) == config_digest(base)
    # ... while anything the pass pipeline sees still changes the key.
    assert config_digest(base.replace(width=4)) != config_digest(base)
    assert config_digest(
        base.replace(streaming=StreamingConfig(spill_threshold=8))
    ) != config_digest(base)


def test_plan_cache_is_thread_safe_under_contention():
    cache = PlanCache(capacity=32)
    errors = []

    def worker(seed):
        try:
            for step in range(200):
                key = (f"fp-{(seed + step) % 48}", (), "digest")
                if cache.get(key) is None:
                    cache.put(key, make_plan(fingerprint=key[0]))
        except Exception as exc:  # noqa: BLE001 - collected for the assertion
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors, errors
    assert len(cache) <= 32
    total = cache.stats.hits + cache.stats.misses
    assert total == 8 * 200


# ---------------------------------------------------------------------------
# End to end: a JitDriver over a sabotaged cache directory
# ---------------------------------------------------------------------------

SCRIPT = "cat in.txt | tr a-z A-Z | sort | uniq"
FILES = {"in.txt": ["delta", "alpha", "beta", "alpha", "gamma"]}
EXPECTED = ["ALPHA", "BETA", "DELTA", "GAMMA"]


def run_once(cache_dir):
    driver = JitDriver(
        config=PashConfig.paper_default(2, backend="jit"),
        environment=ExecutionEnvironment(
            filesystem=VirtualFileSystem({k: list(v) for k, v in FILES.items()})
        ),
        cache=DiskPlanCache(cache_dir),
    )
    result = driver.run(SCRIPT)
    return result, driver.cache


def test_driver_recompiles_after_cache_directory_corruption(tmp_path):
    cache_dir = str(tmp_path / "plans")
    cold, cold_cache = run_once(cache_dir)
    assert cold.stdout == EXPECTED
    assert cold.jit.regions_compiled >= 1
    assert cold_cache.stats.disk_writes >= 1

    # A warm restart hits disk: zero fresh compiles.
    warm, warm_cache = run_once(cache_dir)
    assert warm.stdout == EXPECTED
    assert warm.jit.regions_compiled == 0
    assert warm_cache.stats.disk_hits >= 1

    # Sabotage every plan file; the next run compiles fresh — same bytes out.
    for path in plan_files(cache_dir):
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
    rebuilt, rebuilt_cache = run_once(cache_dir)
    assert rebuilt.stdout == EXPECTED
    assert rebuilt.jit.regions_compiled >= 1
    assert rebuilt_cache.stats.disk_errors >= 1

    # ... and the fresh compile healed the disk tier for the next process.
    healed, healed_cache = run_once(cache_dir)
    assert healed.stdout == EXPECTED
    assert healed.jit.regions_compiled == 0
    assert healed_cache.stats.disk_hits >= 1


def test_driver_survives_stale_version_fleet_upgrade(tmp_path):
    cache_dir = str(tmp_path / "plans")
    cold, _ = run_once(cache_dir)
    assert cold.stdout == EXPECTED

    # Rewrite every entry as if an older release had produced it.
    for path in plan_files(cache_dir):
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["version"] = "0.0.1+plan0"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    upgraded, upgraded_cache = run_once(cache_dir)
    assert upgraded.stdout == EXPECTED
    assert upgraded.jit.regions_compiled >= 1  # stale entries forced a compile
    assert upgraded_cache.stats.disk_stale >= 1
    assert plan_files(cache_dir), "the recompile re-persisted fresh entries"
