"""Spill-directory isolation under the shared service daemon.

Before this PR a daemon whose config named one ``spill_directory`` pointed
every concurrent job's eager buffers at the same path; the fix gives each
job a private ``pash-job-<id>-*`` subdirectory (removed after the run) and
hardens every spill-file creation site with ``os.makedirs(..., exist_ok=True)``
so a configured-but-missing directory is created rather than crashed on.
"""

import os
import threading

from repro.api import Pash, PashConfig
from repro.api.config import StreamingConfig
from repro.engine.api import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem

SCRIPT = "cat in.txt | tr a-z A-Z | sort"


def bulk_lines(tag, count=4000):
    return [f"{tag} payload line {index:06d}" for index in range(count)]


def spilling_config(spill_dir, width=2):
    # An 8-byte window forces every buffered edge to spill immediately.
    return PashConfig.paper_default(
        width,
        backend="jit",
        streaming=StreamingConfig(spill_threshold=8, spill_directory=spill_dir),
    )


def test_concurrent_jobs_sharing_spill_directory_do_not_collide(
    tmp_path, make_daemon, client_for, run_with_deadline
):
    shared = str(tmp_path / "shared-spill")
    daemon = make_daemon(
        executors=4,
        queue_limit=16,
        tenant_quota=16,
        config=spilling_config(shared),
    )
    results = [None] * 8
    errors = []

    def submit(slot):
        try:
            client = client_for(daemon)
            results[slot] = client.submit(
                SCRIPT,
                tenant=f"tenant-{slot}",
                files={"in.txt": bulk_lines(f"tenant{slot}")},
                timeout=25.0,
            )
        except Exception as exc:  # noqa: BLE001 - collected for the assertion
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()

    def join_all():
        for thread in threads:
            thread.join()

    run_with_deadline(join_all, name="8 spilling submissions")
    assert not errors, errors
    for slot, job in enumerate(results):
        assert job["state"] == "done", job.get("error")
        expected = sorted(line.upper() for line in bulk_lines(f"tenant{slot}"))
        # Byte-identical per job: no cross-job spill-file interleaving.
        assert job["stdout"] == expected
    # Per-job subdirectories were cleaned up after their runs.
    leftovers = [
        name for name in os.listdir(shared) if name.startswith("pash-job-")
    ] if os.path.isdir(shared) else []
    assert leftovers == []


def test_jobs_get_unique_spill_subdirectories(tmp_path, make_daemon):
    shared = str(tmp_path / "shared-spill")
    daemon = make_daemon(executors=1, config=spilling_config(shared))
    seen = []
    original = daemon._job_spill_directory

    def spy(job):
        job_config, spill_dir = original(job)
        seen.append(spill_dir)
        return job_config, spill_dir

    daemon._job_spill_directory = spy
    from repro.service import ServiceClient

    client = ServiceClient(daemon.endpoint, timeout=30.0)
    for slot in range(3):
        job = client.submit(SCRIPT, files={"in.txt": bulk_lines(f"job{slot}", 200)})
        assert job["state"] == "done"
    assert len(seen) == 3
    assert len(set(seen)) == 3, "each job must spill somewhere private"
    for path in seen:
        assert os.path.dirname(path) == shared
        assert not os.path.exists(path), "job spill dirs are removed after the run"


def test_missing_configured_spill_directory_is_created_not_fatal(tmp_path):
    # Point the engine at a directory that does not exist yet and force
    # spilling: every creation site must mkdir rather than crash.
    missing = str(tmp_path / "never" / "made")
    config = spilling_config(missing)
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({"in.txt": bulk_lines("solo", 500)})
    )
    compiled = Pash(config).compile(SCRIPT)
    result = compiled.execute(backend="parallel", environment=environment)
    assert result.stdout == sorted(line.upper() for line in bulk_lines("solo", 500))


def test_missing_spill_directory_interpreter_eager_path(tmp_path):
    # The eager-relay simulation path spills too; same guarantee there.
    from repro.runtime.eager import EagerBuffer

    missing = str(tmp_path / "also" / "missing")
    buffer = EagerBuffer(spill_threshold=4, spill_directory=missing)
    buffer.write_all(f"line {index}" for index in range(64))
    buffer.close()
    assert buffer.drain() == [f"line {index}" for index in range(64)]
