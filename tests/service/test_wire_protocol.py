"""Wire-protocol security and failure-semantics regression tests.

A review of the service tier established four contracts this file pins
down:

* the daemon must never unpickle client bytes — the frame body is JSON,
  and anything else is answered ``bad-request``, never evaluated;
* a non-loopback listen address is refused unless explicitly allowed
  (the protocol carries no authentication);
* only provably-pre-send failures (the TCP connect itself) are retryable
  — a connection lost after that may already have executed the request;
* client and server agree on wait bounds, so a slow job surfaces as the
  server's typed ``timeout`` error, never a bogus socket death; and
  terminal job states are terminal even when an executor outlives
  shutdown.
"""

import json
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.service import PashServiceDaemon, ServiceError, ServiceOptions
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobState

HEADER = struct.Struct(">I")


def raw_roundtrip(endpoint, payload):
    """Send one raw frame; return the raw bytes of the reply frame."""
    host, port = protocol.resolve_address(endpoint)
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.settimeout(10.0)
        sock.sendall(HEADER.pack(len(payload)) + payload)
        header = b""
        while len(header) < HEADER.size:
            header += sock.recv(HEADER.size - len(header))
        (length,) = HEADER.unpack(header)
        body = b""
        while len(body) < length:
            piece = sock.recv(length - len(body))
            assert piece, "daemon closed mid-frame"
            body += piece
    return body


# ---------------------------------------------------------------------------
# JSON body, not pickle
# ---------------------------------------------------------------------------


def test_wire_body_is_json(make_daemon):
    daemon = make_daemon(executors=0)
    body = raw_roundtrip(daemon.endpoint, json.dumps({"type": "ping"}).encode())
    reply = json.loads(body.decode("utf-8"))  # raises if the body were pickle
    assert reply["type"] == protocol.MSG_PONG
    assert reply["protocol"] == protocol.SERVICE_PROTOCOL_VERSION


def test_pickle_frame_is_rejected_not_executed(make_daemon):
    daemon = make_daemon(executors=0)
    # A benign pickle stands in for a malicious one: if the daemon parsed
    # it at all, this valid PING would be answered PONG.  It must instead
    # fail JSON parsing and come back as a clean bad-request.
    body = raw_roundtrip(daemon.endpoint, pickle.dumps({"type": "ping"}))
    reply = json.loads(body.decode("utf-8"))
    assert reply["type"] == protocol.MSG_ERROR
    assert reply["code"] == protocol.ERR_BAD_REQUEST


# ---------------------------------------------------------------------------
# Loopback by default
# ---------------------------------------------------------------------------


def test_non_loopback_listen_refused_by_default():
    daemon = PashServiceDaemon(ServiceOptions(listen="0.0.0.0:0", executors=0))
    with pytest.raises(ServiceError, match="non-loopback"):
        daemon.start()


def test_non_loopback_listen_with_allow_remote(run_with_deadline):
    daemon = PashServiceDaemon(
        ServiceOptions(listen="0.0.0.0:0", executors=0, allow_remote=True)
    )
    daemon.start()
    try:
        assert daemon.address is not None
    finally:
        run_with_deadline(daemon.shutdown, name="allow-remote shutdown")


def test_loopback_classification():
    assert protocol.is_loopback_host("127.0.0.1")
    assert protocol.is_loopback_host("localhost")
    assert protocol.is_loopback_host("::1")
    assert not protocol.is_loopback_host("0.0.0.0")
    assert not protocol.is_loopback_host("")  # binds every interface
    assert not protocol.is_loopback_host("192.168.1.5")
    assert not protocol.is_loopback_host("example.com")


# ---------------------------------------------------------------------------
# Retry safety: unreachable (pre-send) vs connection-lost (maybe executed)
# ---------------------------------------------------------------------------


def test_connect_refused_is_unreachable():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(ServiceError) as err:
        protocol.request(("127.0.0.1", port), {"type": "ping"}, timeout=2.0)
    assert err.value.code == protocol.ERR_UNREACHABLE


def test_drop_after_connect_is_connection_lost_and_not_retried():
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    accepted = []

    def accept_and_close():
        while True:
            try:
                connection, _ = listener.accept()
            except OSError:
                return
            accepted.append(1)
            connection.close()

    thread = threading.Thread(target=accept_and_close, daemon=True)
    thread.start()
    try:
        # A generous retry window that must NOT be used: the request's
        # bytes may have reached the server, so retrying could run a
        # submission twice.
        client = ServiceClient(("127.0.0.1", port), timeout=5.0, retry_seconds=5.0)
        started = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.ping()
        elapsed = time.monotonic() - started
        assert err.value.code == protocol.ERR_CONNECTION_LOST
        assert elapsed < 4.0, "connection-lost must fail fast, not retry"
        assert len(accepted) == 1, "the request must have been sent exactly once"
    finally:
        listener.close()


# ---------------------------------------------------------------------------
# Malformed fields are bad-request, not internal
# ---------------------------------------------------------------------------


def test_malformed_fields_are_bad_request_not_internal(make_daemon, client_for):
    daemon = make_daemon(executors=0)
    client = client_for(daemon)
    response = protocol.request(daemon.endpoint, {"type": "status", "job_id": "never"})
    assert response["type"] == protocol.MSG_ERROR
    assert response["code"] == protocol.ERR_BAD_REQUEST

    job = client.submit("grep x in.txt", wait=False)
    response = protocol.request(
        daemon.endpoint,
        {"type": "result", "job_id": job["job_id"], "timeout": "soon"},
    )
    assert response["code"] == protocol.ERR_BAD_REQUEST

    # A bogus submit timeout is rejected *before* admission: no quota slot
    # is claimed and no job is enqueued for a request answered bad-request.
    admitted_before = daemon.admission.stats.admitted
    response = protocol.request(
        daemon.endpoint,
        {"type": "submit", "script": "grep x in.txt", "timeout": [1]},
    )
    assert response["code"] == protocol.ERR_BAD_REQUEST
    assert daemon.admission.stats.admitted == admitted_before


# ---------------------------------------------------------------------------
# Client/server wait agreement and terminal-state discipline
# ---------------------------------------------------------------------------


def test_default_wait_is_bounded_by_the_client_timeout(make_daemon, run_with_deadline):
    # executors=0: the job never finishes.  submit(wait=True, timeout=None)
    # sends the client's own timeout to the server, so the slow job comes
    # back as the server's typed timeout error (with a job snapshot) —
    # never as a fake "unreachable" when the socket dies first.
    daemon = make_daemon(executors=0)
    client = ServiceClient(daemon.endpoint, timeout=1.0)
    with pytest.raises(ServiceError) as err:
        run_with_deadline(
            lambda: client.submit("grep x in.txt"), seconds=10.0, name="bounded submit"
        )
    assert err.value.code == protocol.ERR_TIMEOUT


def test_complete_cannot_resurrect_a_failed_job():
    job = Job(job_id=1, tenant="t", script="x", backend="jit", config=None)
    assert job.try_start()
    # The shutdown path fails a job whose executor is still running...
    assert job.fail("daemon shut down", code="shutting-down") is True
    # ...so the executor's late complete() must be a no-op, not a
    # failed -> done flip.
    assert (
        job.complete(stdout=["late"], out_files={}, report=None, elapsed_seconds=0.1)
        is False
    )
    assert job.state == JobState.FAILED
    assert job.error_code == "shutting-down"
    assert job.fail("again") is False  # fail() is equally idempotent
