"""The daemon's continuous-telemetry plane: atomic job counters, the
versioned stats schema, the metrics protocol message and HTTP endpoint,
the JSONL event log, trace sampling, and span retention."""

import importlib.util
import json
import os
import threading
import urllib.request

import pytest

from repro.api.config import ObsConfig, PashConfig
from repro.obs import metrics as obs_metrics
from repro.service import PashServiceDaemon, ServiceClient, ServiceOptions

_TOOL = os.path.join(
    os.path.dirname(__file__), "..", "..", "tools", "check_metrics.py"
)


@pytest.fixture(scope="module")
def check_metrics():
    spec = importlib.util.spec_from_file_location("check_metrics", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


SCRIPT = "cat data.txt | sort | uniq"
FILES = {"data.txt": ["b", "a", "b", "c"]}


class TestAtomicJobCounters:
    def test_counters_exact_when_hammered_from_n_threads(self, make_daemon):
        """The regression for the old racy ``jobs_completed += 1``: the
        counters now ride the lock-guarded CounterChild, so concurrent
        increments from every executor thread are exact."""
        daemon = make_daemon(executors=0)  # counters only; no execution
        threads_n, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                daemon._jobs_completed.inc()
                daemon._jobs_failed.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert daemon.jobs_completed == threads_n * per_thread
        assert daemon.jobs_failed == threads_n * per_thread

    def test_concurrent_jobs_count_exactly(
        self, make_daemon, client_for, run_with_deadline
    ):
        daemon = make_daemon(executors=4, queue_limit=64, tenant_quota=64)
        client = client_for(daemon)
        jobs_n = 16

        def submit(index):
            return client.submit(SCRIPT, tenant=f"t{index % 4}", files=FILES)

        results = [None] * jobs_n
        threads = [
            threading.Thread(
                target=lambda i=i: results.__setitem__(i, submit(i))
            )
            for i in range(jobs_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(job and job["state"] == "done" for job in results)
        assert daemon.jobs_completed == jobs_n
        assert daemon.jobs_failed == 0


class TestStatsSchema:
    def test_schema_2_shape(self, make_daemon, client_for, run_with_deadline):
        daemon = make_daemon(executors=1)
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, files=FILES))
        stats = run_with_deadline(client.stats)
        assert stats["schema"] == 2
        assert stats["uptime_seconds"] > 0
        assert stats["jobs"]["completed"] == 1
        assert "pool" in stats  # always present at schema 2
        assert stats["pool"] is None or "workers_replaced" in stats["pool"]
        assert set(stats["plan_cache"]) >= {"hits", "misses", "entries"}
        assert stats["sampler"]["ratio"] == 1.0
        assert set(stats["trace"]) == {"enabled", "spans", "dropped_spans"}

    def test_poolless_daemon_reports_pool_none(self, make_daemon, client_for):
        config = PashConfig.paper_default(2, backend="jit", jobs=0)
        daemon = make_daemon(executors=0, config=config)
        assert client_for(daemon).stats()["pool"] is None


class TestMetricsMessage:
    def test_exposition_agrees_with_client_observations(
        self, make_daemon, client_for, run_with_deadline, check_metrics
    ):
        daemon = make_daemon(executors=2, queue_limit=32, tenant_quota=32)
        client = client_for(daemon)
        completed = 0
        for index in range(6):
            job = client.submit(SCRIPT, tenant=f"t{index % 2}", files=FILES)
            if job["state"] == "done":
                completed += 1
        assert completed == 6
        payload = run_with_deadline(client.metrics)
        text = payload["exposition"]
        check_metrics.lint_text(text)
        assert "pash_jobs_completed_total 6" in text
        # Per-tenant histogram counts agree with submissions.
        snapshot = payload["snapshot"]
        entries = snapshot["pash_job_seconds"]["values"]
        by_tenant = {
            entry["labels"]["tenant"]: entry["count"] for entry in entries
        }
        assert by_tenant == {"t0": 3, "t1": 3}
        # The plan-cache counters flow through the hook plane too.
        cache = snapshot.get("pash_plan_cache_requests_total")
        assert cache is not None
        total = sum(entry["value"] for entry in cache["values"])
        stats = client.stats()["plan_cache"]
        assert total == stats["hits"] + stats["misses"] + stats["negative_hits"]

    def test_rejections_counted_by_reason(
        self, make_daemon, client_for, run_with_deadline
    ):
        from repro.service.admission import ServiceBusy

        daemon = make_daemon(executors=0, queue_limit=1, tenant_quota=1)
        client = client_for(daemon)
        client.submit(SCRIPT, files=FILES, wait=False)
        with pytest.raises(ServiceBusy):
            client.submit(SCRIPT, files=FILES, wait=False)
        snapshot = run_with_deadline(client.metrics)["snapshot"]
        rejections = snapshot["pash_rejections_total"]["values"]
        assert any(
            entry["labels"]["reason"] in ("busy", "quota") and entry["value"] >= 1
            for entry in rejections
        )
        assert snapshot["pash_admissions_total"]["values"][0]["value"] == 1


class TestHttpEndpoint:
    def test_scrape_and_queue_depth_gauge(
        self, make_daemon, client_for, run_with_deadline, check_metrics
    ):
        daemon = make_daemon(executors=1, metrics_port=0)
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, files=FILES))
        port = daemon.metrics_server.port
        body = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ).read().decode("utf-8")
        check_metrics.lint_text(body)
        assert "pash_jobs_completed_total 1" in body
        assert "pash_queue_depth 0" in body
        assert "pash_uptime_seconds" in body

    def test_endpoint_off_by_default(self, make_daemon):
        daemon = make_daemon(executors=0)
        assert daemon.metrics_server is None

    def test_server_stopped_at_shutdown(self, run_with_deadline):
        options = ServiceOptions(
            listen="127.0.0.1:0",
            executors=0,
            metrics_port=0,
            config=PashConfig.paper_default(2, backend="jit"),
        )
        daemon = PashServiceDaemon(options)
        daemon.start()
        port = daemon.metrics_server.port
        run_with_deadline(daemon.shutdown)
        assert daemon.metrics_server is None
        with pytest.raises(Exception):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=2)


class TestRegistryInstall:
    def test_daemon_installs_and_restores_process_registry(
        self, run_with_deadline
    ):
        before = obs_metrics.active()
        options = ServiceOptions(
            listen="127.0.0.1:0",
            executors=0,
            config=PashConfig.paper_default(2, backend="jit"),
        )
        daemon = PashServiceDaemon(options)
        daemon.start()
        assert obs_metrics.active() is daemon.metrics
        run_with_deadline(daemon.shutdown)
        assert obs_metrics.active() is before


class TestEventLog:
    def test_job_lifecycle_events(
        self, make_daemon, client_for, run_with_deadline, tmp_path
    ):
        path = str(tmp_path / "events.jsonl")
        daemon = make_daemon(executors=1, events_path=path)
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, tenant="ev", files=FILES))
        run_with_deadline(daemon.shutdown)
        with open(path, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        events = [record["event"] for record in records]
        assert events[0] == "daemon-started"
        assert "job-admitted" in events
        assert "job-finished" in events
        assert events[-1] == "daemon-stopped"
        finished = next(r for r in records if r["event"] == "job-finished")
        assert finished["tenant"] == "ev"
        assert finished["status"] == "completed"
        assert finished["elapsed_seconds"] > 0
        stopped = records[-1]
        assert stopped["jobs_completed"] == 1

    def test_rejection_event(
        self, make_daemon, client_for, run_with_deadline, tmp_path
    ):
        from repro.service.admission import ServiceBusy

        path = str(tmp_path / "rej.jsonl")
        daemon = make_daemon(
            executors=0, queue_limit=1, tenant_quota=1, events_path=path
        )
        client = client_for(daemon)
        client.submit(SCRIPT, files=FILES, wait=False)
        with pytest.raises(ServiceBusy):
            client.submit(SCRIPT, files=FILES, wait=False)
        with open(path, "r", encoding="utf-8") as handle:
            events = [json.loads(line)["event"] for line in handle]
        assert "job-rejected" in events


class TestSampling:
    def _traced_config(self, **obs):
        return PashConfig.paper_default(
            2, backend="jit", tracing=True, obs=ObsConfig(**obs)
        )

    def test_ratio_zero_records_no_job_spans(
        self, make_daemon, client_for, run_with_deadline
    ):
        daemon = make_daemon(
            executors=1, config=self._traced_config(trace_sample_ratio=0.0)
        )
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, files=FILES))
        assert not any(
            span.name == "service:job" for span in daemon.tracer.spans
        )
        assert daemon.sampler.skipped == 1
        assert client.stats()["sampler"]["skipped"] == 1

    def test_ratio_one_records_job_spans(
        self, make_daemon, client_for, run_with_deadline
    ):
        daemon = make_daemon(
            executors=1, config=self._traced_config(trace_sample_ratio=1.0)
        )
        client = client_for(daemon)
        run_with_deadline(lambda: client.submit(SCRIPT, files=FILES))
        assert any(span.name == "service:job" for span in daemon.tracer.spans)
        assert daemon.sampler.sampled == 1

    def test_tenant_override_traces_through_zero_ratio(
        self, make_daemon, client_for, run_with_deadline
    ):
        daemon = make_daemon(
            executors=1,
            config=self._traced_config(
                trace_sample_ratio=0.0, sample_tenants=("vip",)
            ),
        )
        client = client_for(daemon)
        run_with_deadline(
            lambda: client.submit(SCRIPT, tenant="vip", files=FILES)
        )
        vip_spans = [
            span
            for span in daemon.tracer.spans
            if span.name == "service:job"
        ]
        assert vip_spans and vip_spans[0].attributes["tenant"] == "vip"

    def test_span_retention_bounds_the_tracer(
        self, make_daemon, client_for, run_with_deadline
    ):
        daemon = make_daemon(
            executors=1, config=self._traced_config(span_retention=5)
        )
        client = client_for(daemon)
        for _ in range(3):
            run_with_deadline(lambda: client.submit(SCRIPT, files=FILES))
        assert daemon.tracer.max_spans == 5
        assert len(daemon.tracer.spans) <= 5
        assert daemon.tracer.dropped_spans > 0
        assert client.stats()["trace"]["dropped_spans"] > 0
