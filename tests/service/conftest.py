"""Shared fixtures for the service-tier suite.

Every daemon here binds an ephemeral port, and every blocking call is
wrapped in :func:`run_with_deadline` — the suite's contract is the service
contract: *clean errors, never hangs*, so a hang is itself a test failure
rather than a pytest timeout.
"""

import threading

import pytest

from repro.api import PashConfig
from repro.service import PashServiceDaemon, ServiceClient, ServiceOptions

#: Generous bound for any single service interaction in these tests.
DEADLINE_SECONDS = 30.0


class Hang(AssertionError):
    """A call that should have returned promptly did not."""


def _run_with_deadline(fn, seconds=DEADLINE_SECONDS, name="call"):
    """Run ``fn`` in a thread; fail the test if it outlives ``seconds``."""
    box = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in the test thread
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    thread.join(timeout=seconds)
    if thread.is_alive():
        raise Hang(f"{name} still running after {seconds}s (the service hung)")
    if "error" in box:
        raise box["error"]
    return box.get("result")


@pytest.fixture
def run_with_deadline():
    """The deadline helper as a fixture (the tests dir is not a package)."""
    return _run_with_deadline


@pytest.fixture
def make_daemon():
    """Factory for ephemeral daemons; everything started here is shut down."""
    daemons = []

    def factory(**kwargs):
        config = kwargs.pop(
            "config", PashConfig.paper_default(2, backend="jit")
        )
        options = ServiceOptions(listen="127.0.0.1:0", config=config, **kwargs)
        daemon = PashServiceDaemon(options)
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        _run_with_deadline(daemon.shutdown, name="daemon.shutdown")


@pytest.fixture
def client_for():
    def factory(daemon, **kwargs):
        kwargs.setdefault("timeout", DEADLINE_SECONDS)
        return ServiceClient(daemon.endpoint, **kwargs)

    return factory
