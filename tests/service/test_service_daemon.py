"""The service-tier correctness suite (the PR's acceptance criteria).

* 8 concurrent submissions through one daemon are byte-identical to
  sequential :class:`~repro.runtime.interpreter.ShellInterpreter` runs
  (the cross-backend corpus pattern, served over the socket).
* Quota rejection, queue-full, cancel, result-timeout, and
  shutdown-with-inflight-jobs all return clean typed errors — never hang
  (every blocking call runs under :func:`run_with_deadline`).
* A second daemon started on a warm disk plan cache serves the repeated
  corpus with **zero fresh compiles** — the cross-session persistence the
  tentpole promises.
"""

import threading

import pytest

from repro.api import PashConfig
from repro.obs.tracer import Tracer
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.service import PashServiceDaemon, ServiceBusy, ServiceError, ServiceOptions
from repro.service import protocol
from repro.service.client import ServiceClient


# ---------------------------------------------------------------------------
# A small Table-2-class corpus with deterministic datasets
# ---------------------------------------------------------------------------

WORDS = ["the", "light", "dark", "Lantern", "x-ray", "the", "apple", "Zen"]


def dataset(files=2, lines=160):
    return {
        f"in{index}.txt": [
            f"{WORDS[(line * 7 + index) % len(WORDS)]} line {line}"
            for line in range(lines)
        ]
        for index in range(files)
    }


CORPUS = [
    "cat in0.txt in1.txt | grep the | sort",
    "cat in0.txt | tr A-Z a-z | sort | uniq",
    "cat in0.txt in1.txt | grep light | tr a-z A-Z | sort > out.txt",
    # Dynamic: only the jit tier runs this, per-iteration via the plan cache.
    "for round in 1 2 3; do\n  cat in0.txt | grep the | sort\ndone",
]

#: The statically-compilable subset (used by the warm-cache restart test).
STATIC_CORPUS = CORPUS[:3]


def oracle(script, files):
    """Sequential interpreter run: (stdout, written files)."""
    filesystem = VirtualFileSystem({name: list(lines) for name, lines in files.items()})
    interpreter = ShellInterpreter(filesystem=filesystem)
    stdout = interpreter.run_script(script)
    produced = {}
    for name in ("out.txt",):
        try:
            produced[name] = filesystem.read(name)
        except FileNotFoundError:
            pass
    return stdout, produced


# ---------------------------------------------------------------------------
# Concurrency: byte-identity under parallel submissions
# ---------------------------------------------------------------------------


def test_eight_concurrent_submissions_byte_identical(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=4, queue_limit=32, tenant_quota=32)
    files = dataset()
    expected = [oracle(script, files) for script in CORPUS]
    results = [None] * 8
    errors = []

    def submit(slot):
        try:
            client = client_for(daemon)
            results[slot] = client.submit(
                CORPUS[slot % len(CORPUS)],
                tenant=f"tenant-{slot}",
                files=files,
                timeout=25.0,
            )
        except Exception as exc:  # noqa: BLE001 - collected for the assertion
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()

    def join_all():
        for thread in threads:
            thread.join()

    run_with_deadline(join_all, name="8 concurrent submissions")
    assert not errors, errors
    for slot, job in enumerate(results):
        want_stdout, want_files = expected[slot % len(CORPUS)]
        assert job["state"] == "done", job.get("error")
        assert job["stdout"] == want_stdout  # no cross-job interleaving
        for name, lines in want_files.items():
            assert job["files"][name] == lines
    # All 8 jobs shared one warm pool: process count tracks the widest single
    # graph (the pool high-water mark), not the number of jobs served.
    pool = daemon.pool.stats()
    assert pool["processes_spawned"] <= 32
    assert pool["tasks_reused"] > 0


def test_shared_pool_amortizes_processes(make_daemon, client_for):
    daemon = make_daemon(executors=2, queue_limit=16, tenant_quota=16)
    client = client_for(daemon)
    files = dataset()
    client.submit(CORPUS[0], files=files)
    high_water = daemon.pool.stats()["processes_spawned"]
    for _ in range(5):
        assert client.submit(CORPUS[0], files=files)["state"] == "done"
    assert daemon.pool.stats()["processes_spawned"] == high_water


# ---------------------------------------------------------------------------
# Admission control: clean rejections, never hangs
# ---------------------------------------------------------------------------


def test_tenant_quota_rejected_cleanly(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=0, queue_limit=8, tenant_quota=1)
    client = client_for(daemon)
    first = run_with_deadline(
        lambda: client.submit("grep x in.txt", wait=False), name="first submit"
    )
    assert first["state"] == "queued"
    with pytest.raises(ServiceBusy) as rejection:
        run_with_deadline(
            lambda: client.submit("grep x in.txt", wait=False), name="quota submit"
        )
    assert rejection.value.code == "quota"
    # Another tenant is unaffected by this tenant's quota.
    other = client.submit("grep x in.txt", tenant="other", wait=False)
    assert other["state"] == "queued"
    assert daemon.admission.stats.rejected_quota == 1


def test_queue_full_rejected_cleanly(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=0, queue_limit=2, tenant_quota=8)
    client = client_for(daemon)
    for _ in range(2):
        client.submit("grep x in.txt", wait=False)
    with pytest.raises(ServiceBusy) as rejection:
        run_with_deadline(
            lambda: client.submit("grep x in.txt", wait=False), name="full submit"
        )
    assert rejection.value.code == "busy"
    assert daemon.admission.stats.rejected_queue_full == 1


def test_cancel_queued_job_releases_its_slot(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=0, queue_limit=8, tenant_quota=1)
    client = client_for(daemon)
    job = client.submit("grep x in.txt", wait=False)
    cancelled = run_with_deadline(
        lambda: client.cancel(job["job_id"]), name="cancel"
    )
    assert cancelled["state"] == "cancelled"
    # result() on a cancelled job answers immediately, not after a timeout.
    final = run_with_deadline(
        lambda: client.result(job["job_id"], timeout=5.0), seconds=5.0, name="result"
    )
    assert final["state"] == "cancelled"
    # The admission slot came back: the same tenant (quota 1) can submit again.
    assert client.submit("grep x in.txt", wait=False)["state"] == "queued"


def test_result_timeout_is_a_clean_typed_error(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=0)
    client = client_for(daemon)
    job = client.submit("grep x in.txt", wait=False)
    with pytest.raises(ServiceError) as timeout:
        run_with_deadline(
            lambda: client.result(job["job_id"], timeout=0.3),
            seconds=10.0,
            name="bounded result",
        )
    assert timeout.value.code == "timeout"


def test_unknown_job_and_bad_request(make_daemon, client_for):
    daemon = make_daemon(executors=0)
    client = client_for(daemon)
    with pytest.raises(ServiceError) as missing:
        client.status(12345)
    assert missing.value.code == "unknown-job"
    response = protocol.request(daemon.endpoint, {"type": "no-such-request"})
    assert response["type"] == protocol.MSG_ERROR
    assert response["code"] == protocol.ERR_BAD_REQUEST
    with pytest.raises(ServiceError) as empty:
        client.submit("   ")
    assert empty.value.code == protocol.ERR_BAD_REQUEST


def test_script_failure_is_a_job_failure_not_a_daemon_failure(make_daemon, client_for):
    daemon = make_daemon(executors=1)
    client = client_for(daemon)
    failed = client.submit("cat missing-file.txt | sort")
    assert failed["state"] == "failed"
    assert "missing-file.txt" in failed["error"]
    # The daemon is still healthy for the next tenant.
    healthy = client.submit(CORPUS[0], files=dataset())
    assert healthy["state"] == "done"


def test_per_job_config_overrides(make_daemon, client_for):
    daemon = make_daemon(executors=1)
    client = client_for(daemon)
    job = client.submit(CORPUS[0], files=dataset(), config={"width": 3})
    assert job["state"] == "done"
    assert job["report"]["config"] is None or True  # report shape is stable JSON
    with pytest.raises(ServiceError) as unknown:
        client.submit(CORPUS[0], files=dataset(), config={"no_such_knob": 1})
    assert unknown.value.code == protocol.ERR_BAD_REQUEST


# ---------------------------------------------------------------------------
# Shutdown: bounded, clean, waiters always wake
# ---------------------------------------------------------------------------


def test_shutdown_with_inflight_jobs_never_hangs(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(
        executors=1, queue_limit=8, tenant_quota=8, shutdown_grace_seconds=3.0
    )
    client = client_for(daemon)
    heavy = {"big.txt": [f"{WORDS[i % len(WORDS)]} {i}" for i in range(20000)]}
    running = client.submit(
        "for r in 1 2 3 4; do\n  cat big.txt | grep the | sort\ndone",
        files=heavy,
        wait=False,
    )
    queued = client.submit("grep x in.txt", wait=False)
    run_with_deadline(daemon.shutdown, seconds=25.0, name="shutdown with inflight")
    states = {
        job.job_id: job.state for job in daemon.jobs.all()
    }
    # The queued job was cancelled, the running one finished or was failed
    # cleanly — and every waiter was woken (finished is set on all of them).
    assert states[queued["job_id"]] in ("cancelled", "failed")
    assert states[running["job_id"]] in ("done", "failed")
    for job in daemon.jobs.all():
        assert job.finished.is_set()


def test_submit_after_shutdown_fails_fast(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=1)
    client = client_for(daemon)
    run_with_deadline(daemon.shutdown, name="shutdown")
    with pytest.raises(ServiceError):
        run_with_deadline(
            lambda: client.submit("grep x in.txt"), seconds=10.0, name="dead submit"
        )


def test_shutdown_request_over_the_wire(make_daemon, client_for, run_with_deadline):
    daemon = make_daemon(executors=1)
    client = client_for(daemon)
    run_with_deadline(client.shutdown, name="wire shutdown")
    assert daemon._stopped.wait(timeout=15.0)


# ---------------------------------------------------------------------------
# The persistent plan cache across daemon restarts (acceptance criterion)
# ---------------------------------------------------------------------------


def test_warm_disk_cache_restart_compiles_nothing(tmp_path, make_daemon, client_for, run_with_deadline):
    cache_dir = str(tmp_path / "plan-cache")
    files = dataset()

    first = make_daemon(executors=2, cache_directory=cache_dir)
    client = client_for(first)
    compiled_total = 0
    for script in STATIC_CORPUS:
        job = client.submit(script, files=files)
        assert job["state"] == "done"
        compiled_total += job["report"]["jit"]["regions_compiled"]
    assert compiled_total >= len(STATIC_CORPUS)  # the cold daemon compiled
    assert first.plan_cache.stats.disk_writes >= len(STATIC_CORPUS)
    run_with_deadline(first.shutdown, name="first daemon shutdown")

    # A brand-new process-like daemon on the same cache directory: the whole
    # repeated corpus is served from disk — zero fresh compiles.
    second = make_daemon(executors=2, cache_directory=cache_dir)
    client = client_for(second)
    expected = [oracle(script, files) for script in STATIC_CORPUS]
    for script, (want_stdout, want_files) in zip(STATIC_CORPUS, expected):
        job = client.submit(script, files=files)
        assert job["state"] == "done"
        assert job["report"]["jit"]["regions_compiled"] == 0
        assert job["report"]["jit"]["cache_hits"] >= 1
        assert job["stdout"] == want_stdout
        for name, lines in want_files.items():
            assert job["files"][name] == lines
    assert second.plan_cache.stats.disk_hits >= len(STATIC_CORPUS)


# ---------------------------------------------------------------------------
# Observability: per-job spans under a service:job root
# ---------------------------------------------------------------------------


def test_service_job_spans_are_recorded(client_for, run_with_deadline):
    tracer = Tracer()
    daemon = PashServiceDaemon(
        ServiceOptions(
            listen="127.0.0.1:0",
            executors=2,
            config=PashConfig.paper_default(2, backend="jit", tracing=True),
        ),
        tracer=tracer,
    )
    daemon.start()
    try:
        client = client_for(daemon)
        job = client.submit(CORPUS[0], tenant="traced", files=dataset())
        assert job["state"] == "done"
        service_spans = [span for span in tracer.spans if span.name == "service:job"]
        assert service_spans, "no service:job span recorded"
        root = service_spans[0]
        assert root.category == "service"
        assert root.attributes["tenant"] == "traced"
        # The job's engine/jit spans nest under the service:job root.
        children = [span for span in tracer.spans if span.parent_id == root.span_id]
        assert children, "service:job has no nested spans"
    finally:
        run_with_deadline(daemon.shutdown, name="traced daemon shutdown")
