"""End-to-end integration tests across the whole compilation pipeline."""

import pytest

from repro import ParallelizationConfig, compile_script
from repro.dfg.builder import translate_script
from repro.evaluation.harness import check_benchmark_correctness
from repro.evaluation.usecases import noaa_correctness, wikipedia_correctness
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import optimize_graph
from repro.workloads import text
from repro.workloads.oneliners import ONE_LINERS
from repro.workloads.unix50 import UNIX50_PIPELINES


def run_both_ways(script, files, width=4, config=None):
    """Run sequentially (interpreter) and in parallel (optimized DFGs)."""
    config = config or ParallelizationConfig.paper_default(width)
    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(files)))
    sequential = interpreter.run_script(script)

    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(files)))
    parallel = []
    for region in translate_script(script).regions:
        optimize_graph(region.dfg, config)
        parallel.extend(DFGExecutor(environment).execute(region.dfg).stdout)
    return sequential, parallel


def test_weather_style_pipeline_matches_sequential():
    files = {
        "2015.txt": text.text_lines(300, seed=1),
        "2016.txt": text.text_lines(300, seed=2),
    }
    script = "cat 2015.txt 2016.txt | tr A-Z a-z | grep -v 999 | sort -rn | head -n1"
    sequential, parallel = run_both_ways(script, files)
    assert sequential == parallel


def test_word_frequency_pipeline_matches_sequential():
    files = {"c0.txt": text.text_lines(400, seed=3), "c1.txt": text.text_lines(400, seed=4)}
    script = (
        "cat c0.txt c1.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn"
        " | head -n 20"
    )
    sequential, parallel = run_both_ways(script, files, width=8)
    assert sequential == parallel


def test_multi_statement_script_with_intermediate_files():
    files = {"a.txt": text.text_lines(200, seed=5), "b.txt": text.text_lines(200, seed=6)}
    script = (
        "cat a.txt | tr A-Z a-z | sort > sa.txt\n"
        "cat b.txt | tr A-Z a-z | sort > sb.txt\n"
        "comm -12 sa.txt sb.txt | wc -l"
    )
    sequential, parallel = run_both_ways(script, files)
    assert sequential == parallel


def test_every_configuration_preserves_output():
    from repro.transform.pipeline import relevant_configurations

    files = {f"x{i}.txt": text.text_lines(150, seed=10 + i) for i in range(4)}
    script = "cat x0.txt x1.txt x2.txt x3.txt | grep the | sort | uniq -c | sort -rn | head -n 5"
    baseline = None
    for name, config in relevant_configurations(4).items():
        sequential, parallel = run_both_ways(script, files, config=config)
        baseline = baseline or sequential
        assert parallel == baseline, name


def test_compiled_script_text_is_reparseable():
    source = "cat a.txt b.txt | grep x | sort > out.txt"
    compiled = compile_script(source, ParallelizationConfig.paper_default(2))
    from repro.shell.parser import parse

    parse(compiled.text)  # the emitted script is itself valid input


@pytest.mark.parametrize(
    "pipeline",
    [p for p in UNIX50_PIPELINES if p.expected_group == "speedup"][:12],
    ids=lambda p: f"u{p.index}",
)
def test_unix50_speedup_pipelines_are_output_identical(pipeline):
    files = pipeline.correctness_dataset(4, lines=240)
    script = pipeline.script_for_width(4)
    sequential, parallel = run_both_ways(script, files)
    assert sequential == parallel


def test_all_one_liners_correct_at_width_8():
    for benchmark in ONE_LINERS:
        report = check_benchmark_correctness(benchmark, width=8, lines=320)
        assert report.identical, benchmark.name


def test_use_cases_end_to_end():
    assert noaa_correctness(years=[2015], stations=3)["identical"]
    assert wikipedia_correctness(pages=6, width=3)["identical"]
