"""Property-based correctness: random pipelines, random data, random widths.

The core claim of the paper is that PaSh's transformations preserve the
sequential output.  These tests generate random pipelines from the supported
command vocabulary, random input corpora, and random parallelization
configurations, and assert output equality between the unoptimized and the
optimized dataflow graphs.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dfg.builder import translate_script
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import EagerMode, ParallelizationConfig, SplitMode, optimize_graph

# Stages are chosen so any composition is a valid pipeline over text lines.
STATELESS_STAGES = [
    "grep a",
    "grep -v b",
    "tr a b",
    "tr A-Z a-z",
    "cut -c 1-5",
    "sed s/a/o/",
    "lowercase",
    "strip-punct",
]
PURE_STAGES = [
    "sort",
    "sort -r",
    "uniq",
    "uniq -c",
    "wc -l",
    "head -n 7",
    "sort -rn",
]

lines_strategy = st.lists(
    st.text(alphabet="abcd e", min_size=0, max_size=12), min_size=0, max_size=60
)


def execute(script, files, config=None):
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(files)))
    stdout = []
    for region in translate_script(script).regions:
        if config is not None:
            optimize_graph(region.dfg, config)
        stdout.extend(DFGExecutor(environment).execute(region.dfg).stdout)
    return stdout


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(lines_strategy, min_size=2, max_size=4),
    stages=st.lists(st.sampled_from(STATELESS_STAGES + PURE_STAGES), min_size=1, max_size=4),
    width=st.integers(min_value=2, max_value=6),
)
def test_random_pipelines_preserve_output(data, stages, width):
    files = {f"chunk{i}.txt": chunk for i, chunk in enumerate(data)}
    script = "cat " + " ".join(files) + " | " + " | ".join(stages)
    baseline = execute(script, files)
    parallel = execute(script, files, ParallelizationConfig.paper_default(width))
    assert parallel == baseline


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=lines_strategy,
    stateless=st.sampled_from(STATELESS_STAGES),
    pure=st.sampled_from(PURE_STAGES),
    eager=st.sampled_from(list(EagerMode)),
    split=st.sampled_from(list(SplitMode)),
)
def test_single_file_split_configurations_preserve_output(data, stateless, pure, eager, split):
    files = {"single.txt": data}
    script = f"cat single.txt | {stateless} | {pure}"
    baseline = execute(script, files)
    config = ParallelizationConfig(width=3, eager=eager, split=split)
    parallel = execute(script, files, config)
    assert parallel == baseline


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.lists(lines_strategy, min_size=2, max_size=3), width=st.integers(2, 8))
def test_stateless_only_pipelines_any_width(data, width):
    files = {f"f{i}.txt": chunk for i, chunk in enumerate(data)}
    script = "cat " + " ".join(files) + " | grep a | tr a b | cut -c 1-4"
    baseline = execute(script, files)
    parallel = execute(script, files, ParallelizationConfig.paper_default(width))
    assert parallel == baseline


# ---------------------------------------------------------------------------
# Service-tier concurrency: random pipelines through one shared daemon
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service_daemon():
    """One long-lived daemon shared by every hypothesis example below."""
    from repro.api import PashConfig
    from repro.service import PashServiceDaemon, ServiceOptions

    daemon = PashServiceDaemon(
        ServiceOptions(
            listen="127.0.0.1:0",
            executors=4,
            queue_limit=64,
            tenant_quota=64,
            config=PashConfig.paper_default(2, backend="jit"),
        )
    )
    daemon.start()
    yield daemon
    daemon.shutdown()


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(lines_strategy, min_size=1, max_size=2),
    pipelines=st.lists(
        st.lists(
            st.sampled_from(STATELESS_STAGES + PURE_STAGES), min_size=1, max_size=3
        ),
        min_size=4,
        max_size=4,
    ),
)
def test_concurrent_service_jobs_match_sequential_interpreter(
    service_daemon, data, pipelines
):
    """Four threads, one shared session pool: no cross-job interleaving.

    Each random pipeline's stdout over the socket must equal a sequential
    :class:`ShellInterpreter` run of the same script on the same corpus —
    under concurrent submission through the daemon's shared ``WorkerPool``.
    """
    from repro.service import ServiceClient

    files = {f"p{index}.txt": list(chunk) for index, chunk in enumerate(data)}
    scripts = [
        "cat " + " ".join(files) + " | " + " | ".join(stages)
        for stages in pipelines
    ]
    expected = []
    for script in scripts:
        oracle = ShellInterpreter(
            filesystem=VirtualFileSystem({k: list(v) for k, v in files.items()})
        )
        expected.append(oracle.run_script(script))

    results = [None] * len(scripts)
    errors = []

    def submit(slot):
        try:
            client = ServiceClient(service_daemon.endpoint, timeout=60.0)
            results[slot] = client.submit(
                scripts[slot], tenant=f"prop-{slot}", files=files, timeout=55.0
            )
        except Exception as exc:  # noqa: BLE001 - collected for the assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(slot,)) for slot in range(len(scripts))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
    assert not any(thread.is_alive() for thread in threads), "a submission hung"
    assert not errors, errors
    for slot, job in enumerate(results):
        assert job["state"] == "done", job.get("error")
        assert job["stdout"] == expected[slot]
    # The shared pool amortizes processes across every example this module
    # has run: lifetime spawn count is bounded by the widest single graph
    # (plus warm idle workers), not by the number of jobs served.
    assert service_daemon.pool.stats()["processes_spawned"] <= 48
