"""Prometheus exposition, the HTTP endpoint, and the JSONL event log —
all linted by the same ``tools/check_metrics.py`` CI uses."""

import importlib.util
import json
import os
import urllib.request

import pytest

from repro.obs.expose import (
    EVENT_SCHEMA,
    NULL_EVENTS,
    EventLog,
    MetricsServer,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry

_TOOL = os.path.join(os.path.dirname(__file__), "..", "..", "tools", "check_metrics.py")


@pytest.fixture(scope="module")
def check_metrics():
    spec = importlib.util.spec_from_file_location("check_metrics", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("pash_jobs_completed_total", "Jobs done.").inc(5)
    registry.gauge("pash_queue_depth", "Depth.").set(2)
    hist = registry.histogram(
        "pash_job_seconds", "Latency.", labels=("tenant",), buckets=(0.01, 0.1, 1.0)
    )
    hist.labels(tenant="t0").observe(0.05)
    hist.labels(tenant="t0").observe(0.5)
    hist.labels(tenant="t0").observe(5.0)  # overflow bucket
    return registry


class TestPrometheusText:
    def test_lints_clean(self, registry, check_metrics):
        text = prometheus_text(registry)
        types, samples = check_metrics.lint_text(text)
        assert types["pash_jobs_completed_total"] == "counter"
        assert types["pash_job_seconds"] == "histogram"

    def test_histogram_shape(self, registry):
        text = prometheus_text(registry)
        assert '# TYPE pash_job_seconds histogram' in text
        assert 'pash_job_seconds_bucket{tenant="t0",le="0.01"} 0' in text
        assert 'pash_job_seconds_bucket{tenant="t0",le="0.1"} 1' in text
        assert 'pash_job_seconds_bucket{tenant="t0",le="1"} 2' in text
        assert 'pash_job_seconds_bucket{tenant="t0",le="+Inf"} 3' in text
        assert 'pash_job_seconds_count{tenant="t0"} 3' in text

    def test_help_and_type_appear_once_per_family(self, registry):
        text = prometheus_text(registry)
        assert text.count("# TYPE pash_job_seconds histogram") == 1
        assert text.count("# HELP pash_job_seconds") == 1

    def test_label_escaping(self, check_metrics):
        registry = MetricsRegistry()
        registry.counter("pash_esc_total", "x", labels=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = prometheus_text(registry)
        assert r'path="a\"b\\c\nd"' in text
        check_metrics.lint_text(text)

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_linter_rejects_garbage(self, check_metrics):
        with pytest.raises(check_metrics.MetricsError):
            check_metrics.lint_text("pash_no_type_total 3\n")
        with pytest.raises(check_metrics.MetricsError):
            check_metrics.lint_text(
                "# TYPE pash_bad_total counter\npash_bad_total -1\n"
            )
        with pytest.raises(check_metrics.MetricsError):
            check_metrics.lint_text(
                "# TYPE pash_bad counter\npash_bad 1\n"  # no _total suffix
            )

    def test_linter_monotonic_comparison(self, registry, check_metrics):
        earlier = prometheus_text(registry)
        registry.counter("pash_jobs_completed_total", "Jobs done.").inc()
        later = prometheus_text(registry)
        assert check_metrics.check_monotonic(earlier, later) >= 1
        with pytest.raises(check_metrics.MetricsError):
            check_metrics.check_monotonic(later, earlier)


class TestMetricsServer:
    def test_serves_get_metrics(self, registry, check_metrics):
        server = MetricsServer(registry, port=0)
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            response = urllib.request.urlopen(url)
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
            check_metrics.lint_text(body)
            assert "pash_jobs_completed_total 5" in body
        finally:
            server.stop()

    def test_unknown_path_is_404(self, registry):
        server = MetricsServer(registry, port=0)
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
            assert info.value.code == 404
        finally:
            server.stop()

    def test_refuses_non_loopback_without_allow_remote(self, registry):
        server = MetricsServer(registry, host="0.0.0.0", port=0)
        with pytest.raises(ValueError, match="non-loopback"):
            server.start()

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry, port=0)
        server.start()
        server.stop()
        server.stop()


class TestEventLog:
    def test_round_trip_schema(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit("job-finished", job_id=1, tenant="t0", status="completed")
        log.emit("daemon-stopped")
        log.close()
        with open(path, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 2
        for record in records:
            assert record["schema"] == EVENT_SCHEMA
            assert isinstance(record["ts_us"], int)
        assert records[0]["event"] == "job-finished"
        assert records[0]["tenant"] == "t0"

    def test_emit_after_close_is_swallowed(self, tmp_path):
        log = EventLog(str(tmp_path / "e.jsonl"))
        log.close()
        log.emit("late")  # must not raise

    def test_null_log_is_inert(self):
        NULL_EVENTS.emit("anything", x=1)
        NULL_EVENTS.close()
        assert NULL_EVENTS.enabled is False
