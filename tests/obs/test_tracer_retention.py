"""The tracer's ring-buffer span retention (``max_spans``) and its
interaction with the ``mark``/``since`` per-run slicing the JIT driver and
service daemon rely on."""

import pytest

from repro.obs.tracer import SpanRecord, Tracer


def _span(name):
    return SpanRecord(name=name, category="test", span_id=name)


class TestRetention:
    def test_oldest_spans_evicted(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            tracer.record(_span(f"s{index}"))
        assert [span.name for span in tracer.spans] == ["s2", "s3", "s4"]
        assert tracer.dropped_spans == 2

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for index in range(100):
            tracer.record(_span(f"s{index}"))
        assert len(tracer.spans) == 100
        assert tracer.dropped_spans == 0

    def test_extend_trims_too(self):
        tracer = Tracer(max_spans=2)
        tracer.extend([_span("a"), _span("b"), _span("c")])
        assert [span.name for span in tracer.spans] == ["b", "c"]
        assert tracer.dropped_spans == 1

    def test_invalid_max_spans_raises(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_clear_resets_eviction_count(self):
        tracer = Tracer(max_spans=1)
        tracer.record(_span("a"))
        tracer.record(_span("b"))
        assert tracer.dropped_spans == 1
        tracer.clear()
        assert tracer.dropped_spans == 0
        assert tracer.spans == []


class TestMarksAcrossEviction:
    def test_marks_count_lifetime_recordings(self):
        tracer = Tracer(max_spans=3)
        tracer.record(_span("old"))
        mark = tracer.mark()
        for index in range(3):
            tracer.record(_span(f"new{index}"))
        # "old" was evicted, but the mark still slices exactly the spans
        # recorded after it was taken.
        assert [span.name for span in tracer.since(mark)] == [
            "new0",
            "new1",
            "new2",
        ]

    def test_since_returns_retained_window_when_mark_predates_eviction(self):
        tracer = Tracer(max_spans=2)
        mark = tracer.mark()
        for index in range(4):
            tracer.record(_span(f"s{index}"))
        # Two of the four post-mark spans were evicted; since() returns
        # what is still retained rather than raising or mis-slicing.
        assert [span.name for span in tracer.since(mark)] == ["s2", "s3"]

    def test_live_span_recording_respects_the_ring(self):
        tracer = Tracer(max_spans=2)
        for index in range(4):
            with tracer.span(f"live{index}", "test"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 2
        assert [span.name for span in tracer.spans] == ["live2", "live3"]
