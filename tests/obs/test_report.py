"""RunReport: the merged machine-readable document, and the end-to-end flow."""

import json

from repro.api import Pash, PashConfig
from repro.obs import RUN_REPORT_SCHEMA, RunReport
from repro.obs.tracer import SpanRecord
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem


def environment():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {
                "a.txt": ["alpha foo", "beta"],
                "b.txt": ["gamma foo", "delta foo"],
            }
        )
    )


def test_empty_report_has_stable_shape():
    document = RunReport().to_dict()
    assert document["schema"] == RUN_REPORT_SCHEMA
    assert sorted(document) == [
        "backend", "compilation", "config", "elapsed_seconds",
        "jit", "metrics", "schema", "span_records", "spans",
    ]
    json.dumps(document)


def test_from_run_merges_result_compiled_and_spans():
    config = PashConfig.paper_default(2, backend="parallel", tracing=True)
    with Pash(config) as pash:
        compiled = pash.compile("cat a.txt b.txt | grep foo | sort > out.txt")
        result = compiled.execute(environment=environment())
    report = RunReport.from_run(result, compiled=compiled)
    document = report.to_dict()
    json.dumps(document)  # fully JSON-able

    assert document["backend"] == "parallel"
    assert document["elapsed_seconds"] > 0
    assert document["metrics"]["backend"] == "parallel"
    assert document["metrics"]["nodes"], "per-node metrics present"
    assert document["jit"] is None
    assert document["compilation"]["stats"]["regions_found"] == 1
    assert len(document["compilation"]["regions"]) == 1
    assert "pass_seconds" in document["compilation"]["regions"][0]
    assert document["config"]["tracing"] is True
    assert document["spans"]["spans_total"] == len(result.spans) > 0
    assert document["span_records"][0]["span_id"]


def test_from_run_with_jit_result_includes_jit_section():
    config = PashConfig.paper_default(2, backend="jit", tracing=True)
    with Pash(config) as pash:
        compiled = pash.compile("cat a.txt b.txt | grep foo | sort > out.txt")
        result = compiled.execute(environment=environment())
    document = RunReport.from_run(result, compiled=compiled).to_dict()
    assert document["backend"] == "jit"
    assert document["jit"]["regions_seen"] == 1
    assert document["jit"]["outcomes"][0]["action"] in ("compiled", "cached")
    # Worker spans made it through the report queue into the run's span set.
    categories = {record["category"] for record in document["span_records"]}
    assert "worker" in categories and "scheduler" in categories and "jit" in categories


def test_explicit_spans_override_result_spans():
    spans = [SpanRecord(name="only", category="engine", span_id="x.1")]
    report = RunReport.from_run(result=None, spans=spans)
    assert report.spans["spans_total"] == 1
    assert report.span_records[0]["name"] == "only"
