"""The tracer core: span recording, nesting, handoff, and the disabled path."""

import os
import pickle

from repro.obs.tracer import (
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
    new_span_id,
    record_worker_span,
)


def test_span_records_timing_and_identity():
    tracer = Tracer()
    with tracer.span("work", "engine", answer=42) as span:
        pass
    assert len(tracer.spans) == 1
    record = tracer.spans[0]
    assert record is span
    assert record.name == "work"
    assert record.category == "engine"
    assert record.pid == os.getpid()
    assert record.tid > 0
    assert record.start_us > 0
    assert record.duration_us >= 0
    assert record.attributes == {"answer": 42}
    assert record.span_id and record.parent_id is None


def test_spans_nest_via_context_variable():
    tracer = Tracer()
    with tracer.span("outer", "engine") as outer:
        assert tracer.current_id() == outer.span_id
        with tracer.span("inner", "engine") as inner:
            assert inner.parent_id == outer.span_id
        assert tracer.current_id() == outer.span_id
    assert tracer.current_id() is None
    # Recording order is exit order: inner closes first.
    assert [record.name for record in tracer.spans] == ["inner", "outer"]


def test_nested_span_stays_inside_parent_window():
    tracer = Tracer()
    with tracer.span("outer", "engine"):
        with tracer.span("inner", "engine"):
            pass
    inner, outer = tracer.spans
    assert inner.start_us >= outer.start_us
    assert inner.end_us <= outer.end_us + 1  # integer-microsecond rounding


def test_explicit_parent_overrides_context():
    tracer = Tracer()
    with tracer.span("outer", "engine"):
        with tracer.span("adopted", "engine", parent_id="other.1") as span:
            assert span.parent_id == "other.1"


def test_span_set_attaches_attributes():
    tracer = Tracer()
    with tracer.span("work", "engine") as span:
        span.set(bytes_in=7, reused_worker=True)
    assert tracer.spans[0].attributes == {"bytes_in": 7, "reused_worker": True}


def test_disabled_tracer_is_inert_and_allocation_free():
    tracer = Tracer(enabled=False)
    first = tracer.span("a", "engine")
    second = tracer.span("b", "engine", anything=1)
    assert first is second  # the shared singleton: no per-call allocation
    with first as handle:
        handle.set(ignored=True)
    assert tracer.spans == []
    assert tracer.current_id() is None
    assert tracer.context() is None
    tracer.record(SpanRecord(name="x", category="engine"))
    tracer.extend([SpanRecord(name="y", category="engine")])
    assert tracer.spans == []
    assert NULL_TRACER.enabled is False


def test_span_ids_are_unique_and_pid_prefixed():
    ids = {new_span_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(identifier.startswith(f"{os.getpid():x}.") for identifier in ids)


def test_mark_and_since_slice_per_run_views():
    tracer = Tracer()
    with tracer.span("before", "engine"):
        pass
    mark = tracer.mark()
    with tracer.span("after", "engine"):
        pass
    assert [record.name for record in tracer.since(mark)] == ["after"]


def test_record_and_to_dict_round_trip():
    record = SpanRecord(
        name="node:grep",
        category="worker",
        span_id="ab.1",
        parent_id="cd.2",
        pid=7,
        tid=9,
        start_us=1000,
        duration_us=50,
        attributes={"bytes_in": 3},
    )
    assert SpanRecord.from_dict(record.to_dict()) == record


def test_trace_context_and_records_survive_pickle():
    context = TraceContext(parent_id="ab.1")
    restored = pickle.loads(pickle.dumps(context))
    assert restored.parent_id == "ab.1"
    span = record_worker_span(
        restored, "node:tr", "worker", start_us=10, duration_us=5,
        attributes={"bytes_out": 2},
    )
    assert pickle.loads(pickle.dumps(span)) == span
    assert span.parent_id == "ab.1"
    assert span.pid == os.getpid()


def test_record_worker_span_is_none_when_tracing_off():
    assert record_worker_span(None, "node:x", "worker", 0, 0) is None
