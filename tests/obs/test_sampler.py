"""Trace sampling: determinism, edge ratios, tenant overrides, and the
ObsConfig section's plan-cache invariance."""

import threading

import pytest

from repro.api.config import ObsConfig, PashConfig
from repro.jit.cache import config_digest
from repro.obs.sampler import TraceSampler


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        first = TraceSampler(ratio=0.5, seed=1234)
        second = TraceSampler(ratio=0.5, seed=1234)
        decisions = [first.should_sample() for _ in range(200)]
        assert decisions == [second.should_sample() for _ in range(200)]
        assert True in decisions and False in decisions

    def test_different_seed_different_sequence(self):
        first = [TraceSampler(0.5, seed=1).should_sample() for _ in range(0)]
        a = TraceSampler(0.5, seed=1)
        b = TraceSampler(0.5, seed=2)
        assert [a.should_sample() for _ in range(100)] != [
            b.should_sample() for _ in range(100)
        ]

    def test_ratio_roughly_respected(self):
        sampler = TraceSampler(ratio=0.25, seed=99)
        sampled = sum(sampler.should_sample() for _ in range(4000))
        assert 800 <= sampled <= 1200  # ~1000 expected


class TestEdges:
    def test_ratio_one_always_samples(self):
        sampler = TraceSampler(ratio=1.0)
        assert all(sampler.should_sample() for _ in range(50))
        assert sampler.sampled == 50 and sampler.skipped == 0

    def test_ratio_zero_never_samples(self):
        sampler = TraceSampler(ratio=0.0)
        assert not any(sampler.should_sample() for _ in range(50))
        assert sampler.skipped == 50

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            TraceSampler(ratio=1.5)
        with pytest.raises(ValueError):
            TraceSampler(ratio=-0.1)

    def test_tenant_override_beats_zero_ratio(self):
        sampler = TraceSampler(ratio=0.0, sample_tenants=("vip",))
        assert sampler.should_sample("vip") is True
        assert sampler.should_sample("other") is False

    def test_counters_exact_under_contention(self):
        sampler = TraceSampler(ratio=0.5, seed=3)
        threads_n, per_thread = 8, 500

        def hammer():
            for _ in range(per_thread):
                sampler.should_sample()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sampler.sampled + sampler.skipped == threads_n * per_thread


class TestObsConfig:
    def test_from_config(self):
        obs = ObsConfig(
            trace_sample_ratio=0.5, trace_sample_seed=7, sample_tenants=("a",)
        )
        sampler = TraceSampler.from_config(obs)
        assert sampler.ratio == 0.5
        assert sampler.seed == 7
        assert sampler.should_sample("a") is True

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample_ratio=2.0)
        with pytest.raises(ValueError):
            ObsConfig(span_retention=-1)

    def test_round_trip(self):
        config = PashConfig(
            width=4, obs=ObsConfig(trace_sample_ratio=0.25, span_retention=64)
        )
        restored = PashConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.obs.sample_tenants == ()

    def test_coerce_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ObsConfig"):
            ObsConfig.coerce({"nope": 1})

    def test_obs_never_fragments_the_plan_cache(self):
        """The section is runtime-only: any obs knob leaves the digest (and
        therefore every disk plan-cache key) untouched."""
        base = PashConfig(width=4)
        sampled = PashConfig(
            width=4,
            obs=ObsConfig(
                trace_sample_ratio=0.1,
                trace_sample_seed=9,
                sample_tenants=("t",),
                span_retention=10,
            ),
        )
        assert config_digest(base) == config_digest(sampled)
