"""Exporters: Chrome trace_event JSON, the JSONL span log, span summaries."""

import io
import json
import pathlib
import sys

import pytest

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    span_summary,
)
from repro.obs.tracer import SpanRecord

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "tools"))
from check_trace import TraceError, check_trace  # noqa: E402


def spans():
    return [
        SpanRecord(
            name="engine:run", category="scheduler", span_id="a.1",
            pid=100, tid=1, start_us=1_000, duration_us=900,
        ),
        SpanRecord(
            name="node:grep", category="worker", span_id="b.1", parent_id="a.1",
            pid=200, tid=2, start_us=1_100, duration_us=300,
            attributes={"bytes_in": 42},
        ),
    ]


def test_chrome_events_carry_spans_and_metadata_tracks():
    events = chrome_trace_events(spans())
    complete = [event for event in events if event["ph"] == "X"]
    metadata = [event for event in events if event["ph"] == "M"]
    assert len(complete) == 2
    assert complete[0] == {
        "name": "engine:run", "cat": "scheduler", "ph": "X",
        "ts": 1_000, "dur": 900, "pid": 100, "tid": 1,
        "args": {"span_id": "a.1", "parent_id": None},
    }
    assert complete[1]["args"]["bytes_in"] == 42
    assert complete[1]["args"]["parent_id"] == "a.1"
    # One process_name row per pid; driver vs worker labels by category.
    names = {event["pid"]: event["args"]["name"] for event in metadata}
    assert names == {100: "pash driver 100", 200: "pash worker 200"}


def test_chrome_document_is_perfetto_shaped_and_validates():
    document = chrome_trace_document(spans())
    assert document["displayTimeUnit"] == "ms"
    assert check_trace(document) == 2
    json.dumps(document)  # JSON-able end to end


def test_export_chrome_trace_writes_valid_file(tmp_path):
    path = tmp_path / "trace.json"
    export_chrome_trace(spans(), str(path))
    with open(path) as handle:
        assert check_trace(json.load(handle)) == 2


def test_check_trace_rejects_structural_violations():
    document = chrome_trace_document(spans())
    with pytest.raises(TraceError, match="no complete"):
        check_trace({"traceEvents": []})
    # A child escaping its parent's window by more than the epsilon.
    bad = json.loads(json.dumps(document))
    for event in bad["traceEvents"]:
        if event.get("args", {}).get("span_id") == "b.1":
            event["ts"] = 10_000_000
    with pytest.raises(TraceError, match="escapes its parent"):
        check_trace(bad)
    # Duplicate span ids.
    bad = json.loads(json.dumps(document))
    events = [event for event in bad["traceEvents"] if event["ph"] == "X"]
    events[1]["args"]["span_id"] = events[0]["args"]["span_id"]
    with pytest.raises(TraceError, match="duplicate span_id"):
        check_trace(bad)


def test_export_jsonl_one_row_per_span():
    buffer = io.StringIO()
    export_jsonl(spans(), buffer)
    rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert [row["name"] for row in rows] == ["engine:run", "node:grep"]
    assert rows[1]["attributes"] == {"bytes_in": 42}


def test_span_summary_is_flat_and_scalar():
    summary = span_summary(spans())
    assert summary == {
        "spans_total": 2,
        "span_count_scheduler": 1,
        "span_seconds_scheduler": 0.0009,
        "span_count_worker": 1,
        "span_seconds_worker": 0.0003,
    }
    assert all(isinstance(value, (int, float)) for value in summary.values())
