"""The metrics registry: exactness under contention, quantile accuracy,
registration discipline, and the zero-allocation disabled path."""

import json
import random
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    active,
    counter_inc,
    gauge_set,
    histogram_observe,
    install,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_exact_under_eight_thread_contention(self, registry):
        """The satellite regression: plain ``+=`` loses increments when the
        GIL switches between load and store; the CounterChild must not."""
        counter = registry.counter("pash_test_total", "contended")
        threads_n, per_thread = 8, 5_000
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_n * per_thread

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter("pash_lab_total", "labelled", labels=("tenant",))
        counter.labels(tenant="a").inc(2)
        counter.labels(tenant="b").inc(3)
        assert counter.labels(tenant="a").value == 2
        assert counter.labels(tenant="b").value == 3

    def test_counters_reject_negative_increments(self, registry):
        counter = registry.counter("pash_neg_total", "monotonic")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_mismatch_is_an_error(self, registry):
        counter = registry.counter("pash_mismatch_total", "", labels=("tenant",))
        with pytest.raises(MetricError):
            counter.labels(nope="x")
        with pytest.raises(MetricError):
            counter.inc()  # declared labels: must go through .labels()


class TestRegistration:
    def test_idempotent_registration_returns_same_family(self, registry):
        first = registry.counter("pash_same_total", "one")
        second = registry.counter("pash_same_total", "one")
        assert first is second

    def test_retyping_a_name_raises(self, registry):
        registry.counter("pash_retype_total", "")
        with pytest.raises(MetricError):
            registry.gauge("pash_retype_total", "")

    def test_relabelling_a_name_raises(self, registry):
        registry.counter("pash_relabel_total", "", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("pash_relabel_total", "", labels=("b",))

    def test_illegal_names_and_labels_raise(self, registry):
        with pytest.raises(MetricError):
            registry.counter("9starts_with_digit", "")
        with pytest.raises(MetricError):
            registry.counter("pash_ok_total", "", labels=("__reserved",))


class TestGauges:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("pash_g", "")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_set_function_polls_at_collect_time(self, registry):
        box = {"depth": 0}
        gauge = registry.gauge("pash_depth", "")
        gauge.set_function(lambda: box["depth"])
        box["depth"] = 7
        assert gauge.value == 7

    def test_set_function_exceptions_read_as_zero(self, registry):
        gauge = registry.gauge("pash_boom", "")
        gauge.set_function(lambda: 1 / 0)
        assert gauge.value == 0.0


class TestHistograms:
    def test_quantiles_against_sorted_oracle(self, registry):
        """Interpolated p50/p95/p99 within one bucket of the exact value:
        with ~25% geometric spacing the estimate must land within 30%."""
        histogram = registry.histogram("pash_h_seconds", "")
        rng = random.Random(7)
        values = [rng.uniform(0.002, 2.0) for _ in range(5_000)]
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        for q in (0.50, 0.95, 0.99):
            exact = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            estimate = histogram.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.30), q

    def test_count_sum_and_bounded_memory(self, registry):
        histogram = registry.histogram("pash_mem_seconds", "")
        for _ in range(1_000):
            histogram.observe(0.01)
        child = histogram._default_child()
        assert child.count == 1_000
        assert child.sum == pytest.approx(10.0)
        # Bounded memory: the counts list never grows with observations.
        assert len(child.bucket_counts()) == len(DEFAULT_BUCKETS) + 1

    def test_empty_histogram_quantile_is_zero(self, registry):
        histogram = registry.histogram("pash_empty_seconds", "")
        assert histogram.quantile(0.99) == 0.0

    def test_bad_buckets_raise(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("pash_bad_seconds", "", buckets=())
        with pytest.raises(MetricError):
            registry.histogram("pash_dup_seconds", "", buckets=(1.0, 1.0))

    def test_thread_safety_count_is_exact(self, registry):
        histogram = registry.histogram("pash_conc_seconds", "")
        threads_n, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                histogram.observe(0.05)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == threads_n * per_thread


class TestDisabledPath:
    def test_disabled_registry_hands_out_the_shared_null(self):
        disabled = MetricsRegistry(enabled=False)
        assert disabled.counter("pash_x_total") is NULL_INSTRUMENT
        assert disabled.gauge("pash_x") is NULL_INSTRUMENT
        assert disabled.histogram("pash_x_seconds") is NULL_INSTRUMENT
        # Null methods are inert and allocation-free (labels returns self).
        null = disabled.counter("pash_y_total")
        assert null.labels(tenant="t") is null
        null.inc()
        null.observe(1.0)
        assert null.value == 0.0

    def test_hooks_no_op_against_the_default_registry(self):
        assert active() is NULL_REGISTRY
        counter_inc("pash_hook_total", 1, "never registered")
        gauge_set("pash_hook", 1.0)
        histogram_observe("pash_hook_seconds", 0.1)
        assert NULL_REGISTRY.families() == []

    def test_install_routes_hooks_and_restores(self):
        registry = MetricsRegistry()
        previous = install(registry)
        try:
            counter_inc("pash_routed_total", 2, "via hook", backend="parallel")
            family = registry.counter(
                "pash_routed_total", "via hook", labels=("backend",)
            )
            assert family.labels(backend="parallel").value == 2
        finally:
            install(previous)
        assert active() is NULL_REGISTRY


def test_snapshot_is_json_able_and_complete(registry):
    registry.counter("pash_a_total", "a").inc(3)
    registry.gauge("pash_b", "b").set(1.5)
    histogram = registry.histogram("pash_c_seconds", "c", labels=("tenant",))
    histogram.labels(tenant="t0").observe(0.02)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must round-trip the wire protocol
    assert snapshot["pash_a_total"]["values"][0]["value"] == 3
    entry = snapshot["pash_c_seconds"]["values"][0]
    assert entry["labels"] == {"tenant": "t0"}
    assert entry["count"] == 1
    assert set(entry) >= {"p50", "p95", "p99", "sum"}
