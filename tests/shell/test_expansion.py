"""Tests for safe word expansion."""

import pytest

from repro.shell.expansion import (
    ExpansionContext,
    ExpansionError,
    expand_word,
    expand_words,
    try_expand_word,
)
from repro.shell.lexer import tokenize


def word(text):
    return tokenize(text)[0].word


def test_literal_word():
    assert expand_word(word("hello")) == ["hello"]


def test_parameter_expansion():
    context = ExpansionContext({"base": "/data"})
    assert expand_word(word("$base/file"), context) == ["/data/file"]


def test_braced_parameter_expansion():
    context = ExpansionContext({"y": "2020"})
    assert expand_word(word("${y}.txt"), context) == ["2020.txt"]


def test_unknown_variable_strict_raises():
    with pytest.raises(ExpansionError):
        expand_word(word("$missing"), ExpansionContext(strict=True))


def test_unknown_variable_lenient_is_empty():
    context = ExpansionContext(strict=False)
    assert expand_word(word("x$missing"), context) == ["x"]


def test_command_substitution_raises():
    with pytest.raises(ExpansionError):
        expand_word(word("$(date)"))


def test_try_expand_returns_none_on_failure():
    assert try_expand_word(word("$(date)")) is None
    assert try_expand_word(word("plain")) == ["plain"]


def test_brace_range_expansion():
    assert expand_word(word("{1..4}")) == ["1", "2", "3", "4"]


def test_brace_range_descending():
    assert expand_word(word("{3..1}")) == ["3", "2", "1"]


def test_brace_list_expansion():
    assert expand_word(word("file.{txt,csv}")) == ["file.txt", "file.csv"]


def test_brace_range_with_prefix_and_suffix():
    context = ExpansionContext({"base": "B"})
    assert expand_word(word("$base/{2019..2021}/x"), context) == [
        "B/2019/x",
        "B/2020/x",
        "B/2021/x",
    ]


def test_quoted_text_is_not_field_split():
    assert expand_word(word("'a b'")) == ["a b"]


def test_unquoted_variable_is_field_split():
    context = ExpansionContext({"files": "a.txt b.txt"})
    assert expand_word(word("$files"), context) == ["a.txt", "b.txt"]


def test_expand_words_flattens():
    context = ExpansionContext({"x": "1"})
    words = [word("grep"), word("$x"), word("{a,b}")]
    assert expand_words(words, context) == ["grep", "1", "a", "b"]


def test_context_copy_is_independent():
    context = ExpansionContext({"a": "1"})
    clone = context.copy()
    clone.bind("a", "2")
    assert context.lookup("a") == "1"
