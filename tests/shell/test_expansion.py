"""Tests for safe word expansion."""

import pytest

from repro.shell.expansion import (
    ExpansionContext,
    ExpansionError,
    expand_word,
    expand_words,
    try_expand_word,
)
from repro.shell.lexer import tokenize


def word(text):
    return tokenize(text)[0].word


def test_literal_word():
    assert expand_word(word("hello")) == ["hello"]


def test_parameter_expansion():
    context = ExpansionContext({"base": "/data"})
    assert expand_word(word("$base/file"), context) == ["/data/file"]


def test_braced_parameter_expansion():
    context = ExpansionContext({"y": "2020"})
    assert expand_word(word("${y}.txt"), context) == ["2020.txt"]


def test_unknown_variable_strict_raises():
    with pytest.raises(ExpansionError):
        expand_word(word("$missing"), ExpansionContext(strict=True))


def test_unknown_variable_lenient_is_empty():
    context = ExpansionContext(strict=False)
    assert expand_word(word("x$missing"), context) == ["x"]


def test_command_substitution_raises():
    with pytest.raises(ExpansionError):
        expand_word(word("$(date)"))


def test_try_expand_returns_none_on_failure():
    assert try_expand_word(word("$(date)")) is None
    assert try_expand_word(word("plain")) == ["plain"]


def test_brace_range_expansion():
    assert expand_word(word("{1..4}")) == ["1", "2", "3", "4"]


def test_brace_range_descending():
    assert expand_word(word("{3..1}")) == ["3", "2", "1"]


def test_brace_list_expansion():
    assert expand_word(word("file.{txt,csv}")) == ["file.txt", "file.csv"]


def test_brace_range_with_prefix_and_suffix():
    context = ExpansionContext({"base": "B"})
    assert expand_word(word("$base/{2019..2021}/x"), context) == [
        "B/2019/x",
        "B/2020/x",
        "B/2021/x",
    ]


def test_quoted_text_is_not_field_split():
    assert expand_word(word("'a b'")) == ["a b"]


def test_unquoted_variable_is_field_split():
    context = ExpansionContext({"files": "a.txt b.txt"})
    assert expand_word(word("$files"), context) == ["a.txt", "b.txt"]


def test_expand_words_flattens():
    context = ExpansionContext({"x": "1"})
    words = [word("grep"), word("$x"), word("{a,b}")]
    assert expand_words(words, context) == ["grep", "1", "a", "b"]


def test_context_copy_is_independent():
    context = ExpansionContext({"a": "1"})
    clone = context.copy()
    clone.bind("a", "2")
    assert context.lookup("a") == "1"


# ---------------------------------------------------------------------------
# Special parameters ($?, $#, $@, $*)
# ---------------------------------------------------------------------------


def test_last_status_expansion():
    context = ExpansionContext(last_status=3)
    assert expand_word(word("$?"), context) == ["3"]


def test_last_status_unknown_strict_raises():
    with pytest.raises(ExpansionError):
        expand_word(word("$?"), ExpansionContext(strict=True))


def test_last_status_unknown_lenient_is_empty():
    assert expand_word(word("x$?"), ExpansionContext(strict=False)) == ["x"]


def test_positional_count():
    context = ExpansionContext(positional=["a", "b", "c"])
    assert expand_word(word("$#"), context) == ["3"]


def test_positional_parameters_by_index():
    context = ExpansionContext(positional=["first", "second"])
    assert expand_word(word("$1"), context) == ["first"]
    assert expand_word(word("$2"), context) == ["second"]
    # Out of range expands empty (one empty field, matching `$emptyvar`).
    assert expand_word(word("$3"), context) == [""]


def test_unquoted_at_field_splits():
    context = ExpansionContext(positional=["a b", "c"])
    assert expand_word(word("$@"), context) == ["a", "b", "c"]
    assert expand_word(word("$*"), context) == ["a", "b", "c"]


def test_quoted_at_preserves_fields():
    context = ExpansionContext(positional=["a b", "c"])
    assert expand_word(word('"$@"'), context) == ["a b", "c"]


def test_quoted_at_empty_positional_disappears():
    context = ExpansionContext(positional=[])
    assert expand_word(word('"$@"'), context) == []


def test_quoted_star_joins_into_one_field():
    context = ExpansionContext(positional=["a b", "c"])
    assert expand_word(word('"$*"'), context) == ["a b c"]


def test_positional_unknown_strict_refuses():
    with pytest.raises(ExpansionError):
        expand_word(word("$#"), ExpansionContext(strict=True))
    with pytest.raises(ExpansionError):
        expand_word(word('"$@"'), ExpansionContext(strict=True))


# ---------------------------------------------------------------------------
# ${VAR:-default} and friends
# ---------------------------------------------------------------------------


def test_default_when_unset():
    # With complete runtime state, "absent" means "unset": use the default.
    context = ExpansionContext(strict=True, complete=True)
    assert expand_word(word("${missing:-fallback}"), context) == ["fallback"]
    # Lenient (interpreter) mode also uses the default.
    assert expand_word(word("${missing:-fallback}"), ExpansionContext(strict=False)) == [
        "fallback"
    ]


def test_default_refuses_in_strict_incomplete_mode():
    # Compile-time (AOT) contexts cannot tell "unset" from "assigned
    # dynamically earlier"; guessing the default would miscompile.
    with pytest.raises(ExpansionError):
        expand_word(word("${missing:-fallback}"), ExpansionContext(strict=True))


def test_default_when_empty():
    context = ExpansionContext({"v": ""})
    assert expand_word(word("${v:-fallback}"), context) == ["fallback"]
    # Without the colon, an empty-but-set variable keeps its value.
    assert expand_word(word("x${v-fallback}"), context) == ["x"]


def test_default_not_used_when_set():
    context = ExpansionContext({"v": "value"})
    assert expand_word(word("${v:-fallback}"), context) == ["value"]


def test_default_referencing_another_variable():
    context = ExpansionContext({"other": "seen"}, complete=True)
    assert expand_word(word("${missing:-$other}"), context) == ["seen"]


def test_assign_default_binds():
    context = ExpansionContext(strict=True, complete=True)
    assert expand_word(word("${v:=filled}"), context) == ["filled"]
    assert context.variables["v"] == "filled"


def test_assign_default_persists_into_adopted_dict():
    # A plain dict is adopted by reference, so := reaches the caller's state.
    state = {}
    context = ExpansionContext(state, strict=False)
    assert expand_word(word("${v:=5}"), context) == ["5"]
    assert state == {"v": "5"}


def test_alternative_form():
    context = ExpansionContext({"v": "x"}, complete=True)
    assert expand_word(word("${v:+alt}"), context) == ["alt"]
    assert expand_word(word("y${missing:+alt}"), context) == ["y"]


def test_error_form_raises_when_unset():
    with pytest.raises(ExpansionError):
        expand_word(word("${missing:?no value}"), ExpansionContext())


def test_default_form_for_special_parameter():
    context = ExpansionContext(last_status=0)
    assert expand_word(word("${?:-9}"), context) == ["0"]
    assert expand_word(word("${1:-none}"), ExpansionContext(positional=[])) == ["none"]


def test_command_substitution_with_runner():
    context = ExpansionContext(command_runner=lambda text: "ran:" + text + "\n")
    assert expand_word(word("$(seq 2)"), context) == ["ran:seq", "2"]
    assert expand_word(word('"$(seq 2)"'), context) == ["ran:seq 2"]


# ---------------------------------------------------------------------------
# Pathname expansion helpers
# ---------------------------------------------------------------------------


def test_word_may_glob():
    from repro.shell.expansion import word_may_glob

    assert word_may_glob(word("*.txt"))
    assert not word_may_glob(word("'*.txt'"))
    assert not word_may_glob(word("plain.txt"))
    assert word_may_glob(word("$pattern"))  # the value may introduce a glob


def test_glob_fields_matches_and_sorts():
    from repro.shell.expansion import glob_fields

    names = ["b.txt", "a.txt", "notes.md", ".hidden.txt"]
    assert glob_fields(["*.txt"], names) == ["a.txt", "b.txt"]
    assert glob_fields(["*.md", "keep"], names) == ["notes.md", "keep"]


def test_glob_fields_no_match_stays_literal():
    from repro.shell.expansion import glob_fields

    assert glob_fields(["*.zip"], ["a.txt"]) == ["*.zip"]


def test_glob_fields_hidden_files_need_explicit_dot():
    from repro.shell.expansion import glob_fields

    names = [".hidden.txt", "shown.txt"]
    assert glob_fields(["*.txt"], names) == ["shown.txt"]
    assert glob_fields([".*.txt"], names) == [".hidden.txt"]
