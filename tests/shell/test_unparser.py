"""Tests for AST -> shell text rendering, including parse/unparse round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.shell.parser import parse
from repro.shell.unparser import quote_argument, unparse


ROUND_TRIP_SOURCES = [
    "grep foo file.txt",
    "cat a b | grep x | sort -rn | head -n 1",
    "cat f1 f2 | grep foo > f3 && sort f3",
    "a; b; c",
    "sleep 10 &",
    "( cat f | sort )",
    "for y in 2015 2016; do cat $y.txt; done",
    "sort < in.txt > out.txt",
    "x=1",
    "! grep -q foo bar",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_unparse_then_parse_is_stable(source):
    """unparse(parse(s)) must itself re-parse to the same rendering."""
    first = unparse(parse(source))
    second = unparse(parse(first))
    assert first == second


def test_unparse_preserves_pipeline_order():
    text = unparse(parse("cat f | tr a b | wc -l"))
    assert text.index("cat") < text.index("tr") < text.index("wc")


def test_unparse_quotes_arguments_with_spaces():
    text = unparse(parse("grep 'a b' f"))
    assert "'a b'" in text


def test_unparse_preserves_redirections():
    text = unparse(parse("sort < in.txt > out.txt"))
    assert "< in.txt" in text and "> out.txt" in text


def test_unparse_parameters_are_braced():
    text = unparse(parse("cat $base/file"))
    assert "${base}" in text


def test_quote_argument_plain_text_unquoted():
    assert quote_argument("plain") == "plain"


def test_quote_argument_specials_quoted():
    assert quote_argument("a b") == "'a b'"
    assert quote_argument("x|y") == "'x|y'"


def test_quote_argument_embedded_single_quote():
    quoted = quote_argument("it's")
    assert quoted == "'it'\\''s'"


@given(
    st.lists(
        st.sampled_from(["cat", "grep foo", "sort -rn", "uniq -c", "wc -l", "tr a b"]),
        min_size=1,
        max_size=6,
    )
)
def test_random_pipelines_round_trip(stages):
    source = " | ".join(stages)
    first = unparse(parse(source))
    second = unparse(parse(first))
    assert first == second
