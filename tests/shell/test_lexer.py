"""Tests for the shell tokenizer."""

import pytest

from repro.shell.ast_nodes import CommandSubstitution, LiteralPart, ParameterPart
from repro.shell.lexer import LexError, TokenKind, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def test_simple_command_tokens():
    tokens = tokenize("grep foo file.txt")
    assert [t.kind for t in tokens] == [TokenKind.WORD] * 3 + [TokenKind.EOF]
    assert tokens[0].word.literal_text() == "grep"
    assert tokens[2].word.literal_text() == "file.txt"


def test_pipe_and_operators():
    assert kinds("a | b") == [TokenKind.WORD, TokenKind.PIPE, TokenKind.WORD, TokenKind.EOF]
    assert kinds("a && b") == [TokenKind.WORD, TokenKind.AND_IF, TokenKind.WORD, TokenKind.EOF]
    assert kinds("a || b") == [TokenKind.WORD, TokenKind.OR_IF, TokenKind.WORD, TokenKind.EOF]
    assert kinds("a ; b") == [TokenKind.WORD, TokenKind.SEMI, TokenKind.WORD, TokenKind.EOF]
    assert kinds("a & b") == [TokenKind.WORD, TokenKind.AMP, TokenKind.WORD, TokenKind.EOF]


def test_newline_token():
    assert TokenKind.NEWLINE in kinds("a\nb")


def test_comments_are_skipped():
    tokens = tokenize("grep foo # this is a comment\n")
    words = [t for t in tokens if t.kind is TokenKind.WORD]
    assert len(words) == 2


def test_redirection_tokens():
    tokens = tokenize("sort < in.txt > out.txt")
    redirects = [t.text for t in tokens if t.kind is TokenKind.REDIRECT]
    assert redirects == ["<", ">"]


def test_append_and_fd_redirects():
    tokens = tokenize("cmd >> log.txt 2> err.txt")
    redirects = [t.text for t in tokens if t.kind is TokenKind.REDIRECT]
    assert redirects == [">>", "2>"]


def test_stderr_dup_redirect():
    tokens = tokenize("cmd > out.txt 2>&1")
    redirects = [t.text for t in tokens if t.kind is TokenKind.REDIRECT]
    assert "2>&1" in redirects


def test_single_quotes_preserve_specials():
    tokens = tokenize("echo 'a | b'")
    word = tokens[1].word
    assert word.literal_text() == "a | b"
    assert all(isinstance(part, LiteralPart) and part.quoted for part in word.parts)


def test_double_quotes_with_parameter():
    tokens = tokenize('echo "value: $x"')
    parts = tokens[1].word.parts
    assert any(isinstance(part, ParameterPart) and part.name == "x" for part in parts)
    assert all(getattr(part, "quoted", False) for part in parts)


def test_unquoted_parameter_and_braced_parameter():
    tokens = tokenize("cat $base/${year}/file")
    parts = tokens[1].word.parts
    names = [part.name for part in parts if isinstance(part, ParameterPart)]
    assert names == ["base", "year"]


def test_command_substitution_is_opaque():
    tokens = tokenize("echo $(ls -l | wc -l)")
    substitutions = [
        part for part in tokens[1].word.parts if isinstance(part, CommandSubstitution)
    ]
    assert len(substitutions) == 1
    assert substitutions[0].text == "ls -l | wc -l"


def test_backquote_substitution():
    tokens = tokenize("echo `date`")
    substitutions = [
        part for part in tokens[1].word.parts if isinstance(part, CommandSubstitution)
    ]
    assert substitutions and substitutions[0].text == "date"


def test_escaped_space_stays_in_word():
    tokens = tokenize(r"echo a\ b")
    assert tokens[1].word.literal_text() == "a b"


def test_line_continuation():
    tokens = tokenize("grep foo \\\n file.txt")
    words = [t for t in tokens if t.kind is TokenKind.WORD]
    assert len(words) == 3


def test_unterminated_quote_raises():
    with pytest.raises(LexError):
        tokenize("echo 'oops")


def test_unterminated_substitution_raises():
    with pytest.raises(LexError):
        tokenize("echo $(ls")


def test_digits_inside_words_are_not_redirects():
    tokens = tokenize("cut -c 89-92")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.WORD] * 3
