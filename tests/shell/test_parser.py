"""Tests for the POSIX-subset parser."""

import pytest

from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    Command,
    ForLoop,
    IfClause,
    Pipeline,
    SequenceNode,
    Subshell,
    WhileLoop,
    iter_commands,
)
from repro.shell.parser import ParseError, parse


def test_single_command():
    ast = parse("grep foo file.txt")
    assert isinstance(ast, Command)
    assert ast.name == "grep"
    assert [w.literal_text() for w in ast.argument_words] == ["foo", "file.txt"]


def test_pipeline_structure():
    ast = parse("cat f | grep x | wc -l")
    assert isinstance(ast, Pipeline)
    assert [c.name for c in ast.commands] == ["cat", "grep", "wc"]


def test_andor_is_barrier_structure():
    ast = parse("cat f | grep x > out && sort out")
    assert isinstance(ast, AndOr)
    assert ast.operators == ["&&"]
    assert isinstance(ast.parts[0], Pipeline)
    assert isinstance(ast.parts[1], Command)


def test_sequence_of_statements():
    ast = parse("a1\nb1 ; c1")
    assert isinstance(ast, SequenceNode)
    assert len(ast.parts) == 3


def test_background_node():
    ast = parse("sleep 5 &")
    assert isinstance(ast, BackgroundNode)
    assert isinstance(ast.body, Command)


def test_redirections_attached_to_command():
    ast = parse("sort < in.txt > out.txt")
    assert isinstance(ast, Command)
    operators = [r.operator for r in ast.redirections]
    assert operators == ["<", ">"]


def test_assignment_prefix():
    ast = parse("IN=input.txt")
    assert isinstance(ast, Command)
    assert ast.assignments[0].name == "IN"
    assert ast.assignments[0].value.literal_text() == "input.txt"


def test_for_loop():
    ast = parse("for y in 2015 2016; do\n cat $y.txt | grep x\ndone")
    assert isinstance(ast, ForLoop)
    assert ast.variable == "y"
    assert [w.literal_text() for w in ast.items] == ["2015", "2016"]
    assert isinstance(ast.body, Pipeline)


def test_for_loop_with_brace_range():
    ast = parse("for y in {2015..2020}; do cat $y; done")
    assert isinstance(ast, ForLoop)
    assert len(ast.items) == 1


def test_while_loop():
    ast = parse("while read line; do echo $line; done")
    assert isinstance(ast, WhileLoop)
    assert not ast.until


def test_until_loop():
    ast = parse("until test -f done.txt; do sleep 1; done")
    assert isinstance(ast, WhileLoop)
    assert ast.until


def test_if_clause_with_else():
    ast = parse("if grep -q x f; then echo yes; else echo no; fi")
    assert isinstance(ast, IfClause)
    assert ast.else_body is not None


def test_if_clause_with_elif():
    ast = parse("if a; then b; elif c; then d; else e; fi")
    assert isinstance(ast, IfClause)
    assert isinstance(ast.else_body, IfClause)


def test_subshell():
    ast = parse("( cat f | sort )")
    assert isinstance(ast, Subshell)
    assert isinstance(ast.body, Pipeline)


def test_brace_group():
    ast = parse("{ cat f; sort g; }")
    commands = list(iter_commands(ast))
    assert [c.name for c in commands] == ["cat", "sort"]


def test_negated_pipeline():
    ast = parse("! grep -q x f")
    assert isinstance(ast, Pipeline)
    assert ast.negated


def test_multiline_pipeline_continuation():
    ast = parse("cat f |\n grep x |\n wc -l")
    assert isinstance(ast, Pipeline)
    assert len(ast.commands) == 3


def test_fig1_style_script_parses():
    source = """
base="ftp://example.com/data"
for y in {2015..2020}; do
 cat $base/$y | grep gz | tr -s " " | cut -d " " -f9 |
 sed "s;^;$base/$y/;" | xargs -n 1 curl -s | gunzip |
 cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 |
 sed "s/^/Maximum temperature for $y is: /"
done
"""
    ast = parse(source)
    assert isinstance(ast, SequenceNode)
    loop = ast.parts[1]
    assert isinstance(loop, ForLoop)
    assert isinstance(loop.body, Pipeline)
    assert len(loop.body.commands) == 12


def test_unexpected_token_raises():
    with pytest.raises(ParseError):
        parse("| grep x")


def test_unterminated_for_raises():
    with pytest.raises(ParseError):
        parse("for x in a b; do echo $x")


def test_reserved_word_in_wrong_place_raises():
    with pytest.raises(ParseError):
        parse("done")
