"""Tests for the pash-compile command line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def script_file(tmp_path):
    path = tmp_path / "script.sh"
    path.write_text("cat a.txt b.txt | grep foo | sort > out.txt\n")
    return path


def test_compiles_script_to_stdout(script_file, capsys):
    assert main([str(script_file), "--width", "2"]) == 0
    out = capsys.readouterr().out
    assert "mkfifo" in out
    assert out.count("grep foo") == 2


def test_report_goes_to_stderr(script_file, capsys):
    main([str(script_file), "--width", "2", "--report"])
    captured = capsys.readouterr()
    assert "# regions:" in captured.err
    assert "# runtime processes:" in captured.err


def test_output_file_option(script_file, tmp_path, capsys):
    target = tmp_path / "parallel.sh"
    main([str(script_file), "--width", "2", "-o", str(target)])
    assert "mkfifo" in target.read_text()
    assert capsys.readouterr().out == ""


def test_reads_from_stdin(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("cat a.txt b.txt | grep x > o.txt\n"))
    assert main(["-", "--width", "2"]) == 0
    assert "mkfifo" in capsys.readouterr().out


def test_no_eager_flag(script_file, capsys):
    main([str(script_file), "--width", "2", "--no-eager"])
    out = capsys.readouterr().out
    assert "eager" not in out


def test_blocking_eager_flag(script_file, capsys):
    main([str(script_file), "--width", "2", "--blocking-eager"])
    out = capsys.readouterr().out
    assert "--mode blocking" in out


def test_split_none_leaves_single_input_sequential(tmp_path, capsys):
    path = tmp_path / "single.sh"
    path.write_text("cat big.txt | grep foo > out.txt\n")
    main([str(path), "--width", "4", "--split", "none"])
    out = capsys.readouterr().out
    assert "mkfifo" not in out  # nothing parallelized, script unchanged
    assert "grep foo" in out


def test_parser_defaults():
    arguments = build_parser().parse_args(["x.sh"])
    assert arguments.width == 2
    assert arguments.split == "general"


def test_fan_in_flag(script_file, capsys):
    main([str(script_file), "--width", "4", "--fan-in", "4"])
    out = capsys.readouterr().out
    assert "sort -m" in out
