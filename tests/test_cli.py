"""Tests for the pash-compile command line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def script_file(tmp_path):
    path = tmp_path / "script.sh"
    path.write_text("cat a.txt b.txt | grep foo | sort > out.txt\n")
    return path


def test_compiles_script_to_stdout(script_file, capsys):
    assert main([str(script_file), "--width", "2"]) == 0
    out = capsys.readouterr().out
    assert "mkfifo" in out
    assert out.count("grep foo") == 2


def test_report_goes_to_stderr(script_file, capsys):
    main([str(script_file), "--width", "2", "--report"])
    captured = capsys.readouterr()
    assert "# regions:" in captured.err
    assert "# runtime processes:" in captured.err


def test_output_file_option(script_file, tmp_path, capsys):
    target = tmp_path / "parallel.sh"
    main([str(script_file), "--width", "2", "-o", str(target)])
    assert "mkfifo" in target.read_text()
    assert capsys.readouterr().out == ""


def test_reads_from_stdin(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("cat a.txt b.txt | grep x > o.txt\n"))
    assert main(["-", "--width", "2"]) == 0
    assert "mkfifo" in capsys.readouterr().out


def test_no_eager_flag(script_file, capsys):
    main([str(script_file), "--width", "2", "--no-eager"])
    out = capsys.readouterr().out
    assert "eager" not in out


def test_blocking_eager_flag(script_file, capsys):
    main([str(script_file), "--width", "2", "--blocking-eager"])
    out = capsys.readouterr().out
    assert "--mode blocking" in out


def test_split_none_leaves_single_input_sequential(tmp_path, capsys):
    path = tmp_path / "single.sh"
    path.write_text("cat big.txt | grep foo > out.txt\n")
    main([str(path), "--width", "4", "--split", "none"])
    out = capsys.readouterr().out
    assert "mkfifo" not in out  # nothing parallelized, script unchanged
    assert "grep foo" in out


def test_parser_defaults():
    arguments = build_parser().parse_args(["x.sh"])
    assert arguments.width == 2
    assert arguments.split == "general"


def test_fan_in_flag(script_file, capsys):
    main([str(script_file), "--width", "4", "--fan-in", "4"])
    out = capsys.readouterr().out
    assert "sort -m" in out


# ---------------------------------------------------------------------------
# --execute jit
# ---------------------------------------------------------------------------


@pytest.fixture()
def dynamic_workspace(tmp_path, monkeypatch):
    """A cwd with real input files and a dynamic (AOT-untranslatable) script."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "a.txt").write_text("light one\ndark two\nlight three\n")
    (tmp_path / "b.txt").write_text("light four\ndark five\n")
    script = tmp_path / "dyn.sh"
    script.write_text(
        'for f in *.txt; do\n  grep light "$f" | sort\ndone\n'
        "if test 2 -gt 1; then sort b.txt; fi\n"
    )
    return script


def test_execute_jit_runs_dynamic_script(dynamic_workspace, capsys):
    assert main([str(dynamic_workspace), "--width", "2", "--execute", "jit"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == [
        "light one",
        "light three",
        "light four",
        "dark five",
        "light four",
    ]


def test_execute_jit_report_includes_jit_summary(dynamic_workspace, capsys):
    assert (
        main([str(dynamic_workspace), "--width", "2", "--execute", "jit", "--report"])
        == 0
    )
    err = capsys.readouterr().err
    assert "# backend: jit" in err
    assert "jit:" in err and "compiled" in err


def test_execute_jit_with_inner_interpreter(dynamic_workspace, capsys):
    assert (
        main(
            [
                str(dynamic_workspace),
                "--width",
                "2",
                "--execute",
                "jit",
                "--jit-backend",
                "interpreter",
            ]
        )
        == 0
    )
    assert "light one" in capsys.readouterr().out


def test_execute_non_jit_cannot_run_dynamic_scripts(dynamic_workspace, capsys):
    # The AOT path either refuses the script or fails at runtime on the
    # unresolved glob; only the jit backend runs it correctly.
    assert main([str(dynamic_workspace), "--width", "2", "--execute", "parallel"]) == 1
    assert capsys.readouterr().err.startswith("pash-compile:")


def test_list_backends_includes_jit(capsys):
    assert main(["--list-backends"]) == 0
    assert "jit" in capsys.readouterr().out.split()


# ---------------------------------------------------------------------------
# --execute cluster
# ---------------------------------------------------------------------------


@pytest.fixture()
def static_workspace(tmp_path, monkeypatch):
    """A cwd with real input files and a fully-translatable pipeline."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "a.txt").write_text("banana\napple foo\n")
    (tmp_path / "b.txt").write_text("cherry foo\ndate\n")
    script = tmp_path / "static.sh"
    script.write_text("cat a.txt b.txt | grep foo | sort > out.txt\n")
    return script


def test_list_backends_includes_cluster(capsys):
    assert main(["--list-backends"]) == 0
    assert "cluster" in capsys.readouterr().out.split()


def test_cluster_flags_parse():
    arguments = build_parser().parse_args(
        ["x.sh", "--execute", "cluster", "--cluster-workers", "3",
         "--cluster-connect", "127.0.0.1:7077", "--adaptive-width"]
    )
    assert arguments.cluster_workers == 3
    assert arguments.cluster_connect == "127.0.0.1:7077"
    assert arguments.adaptive_width is True


def test_execute_cluster_runs_pipeline(static_workspace, tmp_path, capsys):
    assert main([str(static_workspace), "--width", "2", "--execute", "cluster"]) == 0
    assert (tmp_path / "out.txt").read_text() == "apple foo\ncherry foo\n"


def test_execute_cluster_report_mentions_workers(static_workspace, capsys):
    assert (
        main(
            [
                str(static_workspace),
                "--width",
                "2",
                "--execute",
                "cluster",
                "--cluster-workers",
                "2",
                "--report",
            ]
        )
        == 0
    )
    assert "cluster workers" in capsys.readouterr().err


def test_pash_worker_rejects_malformed_address(capsys):
    from repro.cluster.worker import main as worker_main

    assert worker_main(["--connect", "nonsense"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# --trace / --metrics-json
# ---------------------------------------------------------------------------


@pytest.fixture()
def loop_workspace(tmp_path, monkeypatch):
    """A loop whose body is iteration-invariant, so the JIT cache can hit."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "a.txt").write_text("light one\ndark two\nlight three\n")
    script = tmp_path / "loop.sh"
    script.write_text("for i in 1 2 3; do\n  grep light a.txt | sort\ndone\n")
    return script


def _load_trace(path):
    import json
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))
    from check_trace import check_trace

    with open(path) as handle:
        document = json.load(handle)
    return document, check_trace(document)


def test_trace_export_covers_every_layer(loop_workspace, tmp_path, capsys):
    trace = tmp_path / "out.json"
    assert (
        main(
            [str(loop_workspace), "--width", "2", "--execute", "jit",
             "--trace", str(trace)]
        )
        == 0
    )
    document, count = _load_trace(trace)
    assert count > 0
    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in events}
    categories = {e["cat"] for e in events}
    assert {"parse", "pass", "jit", "scheduler", "worker"} <= categories
    assert "jit:compile" in names
    assert "jit:cache-hit" in names  # iterations 2 and 3 reuse the region
    assert "engine:run" in names
    # Worker spans run in other processes but still nest under the driver.
    driver_pid = next(e["pid"] for e in events if e["cat"] == "scheduler")
    worker_events = [e for e in events if e["cat"] == "worker"]
    assert worker_events
    assert all(e["pid"] != driver_pid for e in worker_events)
    assert all(e["args"]["parent_id"] for e in worker_events)


def test_metrics_json_writes_run_report(loop_workspace, tmp_path, capsys):
    import json

    metrics = tmp_path / "metrics.json"
    assert (
        main(
            [str(loop_workspace), "--width", "2", "--execute", "jit",
             "--metrics-json", str(metrics)]
        )
        == 0
    )
    document = json.loads(metrics.read_text())
    assert document["schema"] == 1
    assert document["backend"] == "jit"
    assert document["jit"]["regions_seen"] >= 1
    assert document["jit"]["cache_hits"] >= 1
    assert document["spans"]["spans_total"] > 0
    assert document["config"]["tracing"] is True


def test_report_lines_are_not_duplicated(dynamic_workspace, capsys):
    assert (
        main([str(dynamic_workspace), "--width", "2", "--execute", "jit",
              "--report"])
        == 0
    )
    lines = [
        line for line in capsys.readouterr().err.splitlines() if line.strip()
    ]
    # Per-region detail lines may legitimately repeat ("parallelized: sort"
    # in two regions); the run-level summary lines must appear exactly once.
    for prefix in ("# backend:", "# jit:", "# regions:", "# compile time:"):
        assert sum(line.startswith(prefix) for line in lines) == 1, lines


def test_report_still_emitted_when_execution_fails(dynamic_workspace, capsys):
    # AOT parallel execution fails on the dynamic script, but --report must
    # still surface the compilation stats alongside the error.
    assert (
        main([str(dynamic_workspace), "--width", "2", "--execute", "parallel",
              "--report"])
        == 1
    )
    err = capsys.readouterr().err
    assert "pash-compile:" in err
    assert "# regions:" in err
