"""Tests for the Unix50 pipeline corpus."""

import pytest

from repro.dfg.builder import translate_script
from repro.workloads.unix50 import UNIX50_PIPELINES, average_stage_count, get_pipeline


def test_thirty_four_pipelines_with_stable_indices():
    assert len(UNIX50_PIPELINES) == 34
    assert [p.index for p in UNIX50_PIPELINES] == list(range(34))


def test_average_depth_close_to_paper():
    # Paper: 2-12 stages, average 5.58.
    assert 4.0 <= average_stage_count() <= 7.0
    assert all(2 <= p.stage_count() <= 12 for p in UNIX50_PIPELINES)


def test_expected_groups_present():
    groups = {p.expected_group for p in UNIX50_PIPELINES}
    assert groups == {"speedup", "nospeedup", "slowdown"}
    nospeedup = [p.index for p in UNIX50_PIPELINES if p.expected_group == "nospeedup"]
    slowdown = [p.index for p in UNIX50_PIPELINES if p.expected_group == "slowdown"]
    assert 13 in nospeedup
    assert len(slowdown) == 3


def test_get_pipeline_lookup():
    assert get_pipeline(13).expected_group == "nospeedup"
    with pytest.raises(KeyError):
        get_pipeline(99)


@pytest.mark.parametrize("pipeline", UNIX50_PIPELINES, ids=lambda p: f"u{p.index}")
def test_scripts_parse(pipeline):
    from repro.shell.parser import parse

    parse(pipeline.script_for_width(4))


@pytest.mark.parametrize(
    "pipeline",
    [p for p in UNIX50_PIPELINES if p.expected_group == "speedup"],
    ids=lambda p: f"u{p.index}",
)
def test_speedup_group_pipelines_translate(pipeline):
    result = translate_script(pipeline.script_for_width(4))
    assert result.regions


@pytest.mark.parametrize(
    "pipeline",
    [p for p in UNIX50_PIPELINES if p.expected_group == "nospeedup"],
    ids=lambda p: f"u{p.index}",
)
def test_nospeedup_group_is_rejected_by_the_conservative_front_end(pipeline):
    result = translate_script(pipeline.script_for_width(4))
    assert result.rejected


def test_correctness_dataset_shapes():
    dataset = get_pipeline(0).correctness_dataset(4, lines=40)
    assert len(dataset) == 4
    assert sum(len(v) for v in dataset.values()) == 40


def test_input_line_counts_scale_with_group():
    big = get_pipeline(0).input_line_counts(4)
    tiny = get_pipeline(2).input_line_counts(4)
    assert sum(big.values()) > sum(tiny.values())
