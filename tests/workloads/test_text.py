"""Tests for the synthetic corpus generators."""

from repro.workloads import text


def test_text_lines_count_and_determinism():
    first = text.text_lines(100, seed=3)
    second = text.text_lines(100, seed=3)
    other = text.text_lines(100, seed=4)
    assert len(first) == 100
    assert first == second
    assert first != other


def test_text_lines_marker_rate():
    lines = text.text_lines(2000, seed=1, marker="lights", marker_rate=0.25)
    hits = sum(1 for line in lines if "lights" in line)
    assert 300 < hits < 700


def test_numeric_lines_are_integers():
    lines = text.numeric_lines(50, seed=2)
    assert all(line.lstrip("-").isdigit() for line in lines)


def test_csv_lines_have_columns():
    lines = text.csv_lines(10, columns=4)
    assert all(len(line.split()) == 4 for line in lines)


def test_dictionary_words_sorted_unique():
    words = text.dictionary_words(200)
    assert words == sorted(words)
    assert len(words) == len(set(words))
    assert len(words) == 200


def test_chunked_corpus_sizes():
    files = text.chunked_corpus(103, 4)
    assert len(files) == 4
    assert sum(len(lines) for lines in files.values()) == 103


def test_script_paths_format():
    lines = text.script_paths(20)
    assert all(line.split()[0].startswith("/") for line in lines)
