"""Tests for the §6.1 one-liner benchmark definitions."""

import pytest

from repro.dfg.builder import translate_script
from repro.workloads.base import chunk_names, chunked_line_counts
from repro.workloads.oneliners import ONE_LINERS, PAPER_TABLE2, get_one_liner


def test_twelve_benchmarks_matching_table2():
    assert len(ONE_LINERS) == 12
    assert {b.name for b in ONE_LINERS} == set(PAPER_TABLE2)


def test_get_one_liner_lookup():
    assert get_one_liner("sort").name == "sort"
    with pytest.raises(KeyError):
        get_one_liner("nope")


@pytest.mark.parametrize("one_liner", ONE_LINERS, ids=lambda b: b.name)
def test_scripts_parse_and_translate(one_liner):
    script = one_liner.script_for_width(4)
    result = translate_script(script)
    assert result.regions, f"{one_liner.name} produced no parallelizable regions"


@pytest.mark.parametrize("one_liner", ONE_LINERS, ids=lambda b: b.name)
def test_correctness_datasets_cover_script_inputs(one_liner):
    dataset = one_liner.correctness_dataset(width=3, lines=90)
    for name in chunk_names(3):
        assert name in dataset
    assert all(isinstance(lines, list) for lines in dataset.values())


def test_input_line_counts_sum_to_total():
    benchmark = get_one_liner("sort")
    counts = benchmark.input_line_counts(8)
    chunk_total = sum(v for k, v in counts.items() if k.startswith("in"))
    assert chunk_total == benchmark.simulated_total_lines


def test_spell_includes_dictionary():
    spell = get_one_liner("spell")
    assert "dict.txt" in spell.correctness_dataset(2, 50)
    assert "dict.txt" in spell.input_line_counts(2)
    assert "comm" in spell.script_for_width(2)


def test_grep_cost_override_is_expensive():
    grep = get_one_liner("grep")
    model = grep.cost_model()
    assert model.command_costs["grep"].seconds_per_line > 1e-5


def test_chunk_helpers():
    assert chunk_names(3) == ["in0.txt", "in1.txt", "in2.txt"]
    counts = chunked_line_counts(10, 3)
    assert sum(counts.values()) == 10
    assert max(counts.values()) - min(counts.values()) <= 1


def test_multi_statement_benchmarks_have_multiple_regions():
    for name in ("diff", "set-diff", "bi-grams"):
        script = get_one_liner(name).script_for_width(4)
        result = translate_script(script)
        assert len(result.regions) >= 2, name


def test_structures_mention_both_classes():
    for benchmark in ONE_LINERS:
        assert "S" in benchmark.structure or "P" in benchmark.structure
