"""Tests for the NOAA and Wikipedia use-case workloads."""

from repro.dfg.builder import translate_script
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import noaa, wikipedia


# ---------------------------------------------------------------------------
# NOAA
# ---------------------------------------------------------------------------


def test_index_lines_reference_gz_archives():
    lines = noaa.index_lines(2015, stations=10)
    assert any(line.endswith(".gz") for line in lines)
    assert any(not line.endswith(".gz") for line in lines)
    # ls-style listing: the archive name is the 9th whitespace field.
    assert all(len(line.split()) == 9 for line in lines)


def test_station_records_fixed_width_temperature_field():
    records = noaa.station_records("2015/station", records=10)
    assert len(records) == 10
    for record in records:
        field = record[87:92]
        assert field[:4].isdigit()


def test_station_records_deterministic():
    assert noaa.station_records("x") == noaa.station_records("x")
    assert noaa.station_records("x") != noaa.station_records("y")


def test_yearly_dataset_contains_index_and_archives():
    dataset = noaa.yearly_dataset(years=[2015], stations=5)
    assert "noaa/2015.index" in dataset
    archives = [name for name in dataset if name.startswith("noaa/2015/")]
    assert len(archives) == 5


def test_per_year_pipeline_translates_to_a_single_region():
    result = translate_script(noaa.per_year_pipeline(2015, 5))
    assert len(result.regions) == 1
    assert not result.rejected


def test_full_script_covers_all_years():
    script = noaa.full_script([2015, 2016])
    assert script.count("Maximum temperature") == 2


def test_pipeline_produces_plausible_maximum():
    dataset = noaa.yearly_dataset(years=[2016], stations=3)
    shell = ShellInterpreter(filesystem=VirtualFileSystem(dataset))
    out = shell.run_script(noaa.per_year_pipeline(2016, 3))
    assert len(out) == 1
    value = out[0].rsplit(" ", 1)[-1]
    assert value.isdigit()
    assert "999" not in value


# ---------------------------------------------------------------------------
# Wikipedia
# ---------------------------------------------------------------------------


def test_url_list_shape():
    urls = wikipedia.url_list(5)
    assert len(urls) == 5
    assert all(url.startswith("https://") for url in urls)


def test_page_html_is_deterministic_html():
    page = wikipedia.page_html("https://example.org/wiki/page-3")
    assert page[0].startswith("<html>")
    assert page == wikipedia.page_html("https://example.org/wiki/page-3")


def test_indexing_script_translates():
    result = translate_script(wikipedia.indexing_script())
    assert len(result.regions) == 1
    assert not result.rejected


def test_indexing_script_runs_sequentially():
    dataset = wikipedia.dataset(pages=4)
    shell = ShellInterpreter(filesystem=VirtualFileSystem(dataset))
    shell.run_script(wikipedia.indexing_script())
    index = shell.state.filesystem.read("index.txt")
    assert index
    counts = [int(line.split()[0]) for line in index]
    assert counts == sorted(counts, reverse=True)
