"""Unit tests for the plan cache, region fingerprints, and cache keys."""

import pytest

from repro.api import PashConfig
from repro.dfg.regions import (
    iter_region_words,
    referenced_parameters,
    region_fingerprint,
)
from repro.jit.cache import CompiledPlan, FailedPlan, PlanCache, config_digest
from repro.shell.parser import parse


def region(text):
    """Parse a one-statement script and return its region node."""
    return parse(text)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable_for_identical_text():
    assert region_fingerprint(region("grep x f | sort")) == region_fingerprint(
        region("grep x f | sort")
    )


def test_fingerprint_distinguishes_different_regions():
    assert region_fingerprint(region("grep x f")) != region_fingerprint(
        region("grep y f")
    )


def test_fingerprint_ignores_insignificant_whitespace():
    # The fingerprint hashes the unparsed AST, not the raw source.
    assert region_fingerprint(region("grep  x   f")) == region_fingerprint(
        region("grep x f")
    )


# ---------------------------------------------------------------------------
# Referenced parameters
# ---------------------------------------------------------------------------


def test_referenced_parameters_collects_variables():
    names, has_substitution = referenced_parameters(region('grep "$pat" $f | head -n $N'))
    assert names == frozenset({"pat", "f", "N"})
    assert not has_substitution


def test_referenced_parameters_sees_redirection_targets():
    names, _ = referenced_parameters(region("sort in.txt > $out"))
    assert "out" in names


def test_referenced_parameters_sees_default_forms():
    names, _ = referenced_parameters(region("head -n ${N:-$M} f"))
    assert names == frozenset({"N", "M"})


def test_referenced_parameters_flags_substitution():
    _, has_substitution = referenced_parameters(region("grep $(cat pat.txt) f"))
    assert has_substitution


def test_iter_region_words_covers_all_word_positions():
    node = region("X=$v grep $p < $i > $o")
    texts = [str(word) for word in iter_region_words(node)]
    assert "${v}" in texts and "${p}" in texts and "${i}" in texts and "${o}" in texts


# ---------------------------------------------------------------------------
# PlanCache
# ---------------------------------------------------------------------------


def key(fingerprint="fp", bindings=(), digest="cfg"):
    return (fingerprint, tuple(bindings), digest)


def test_cache_miss_then_hit():
    cache = PlanCache()
    assert cache.get(key()) is None
    cache.put(key(), CompiledPlan(graph=object(), report=None, fingerprint="fp"))
    entry = cache.get(key())
    assert isinstance(entry, CompiledPlan)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1


def test_cache_distinguishes_binding_values():
    cache = PlanCache()
    cache.put(
        key(bindings=(("f", "a.txt"),)),
        CompiledPlan(graph="A", report=None, fingerprint="fp"),
    )
    assert cache.get(key(bindings=(("f", "b.txt"),))) is None
    assert cache.get(key(bindings=(("f", "a.txt"),))).graph == "A"


def test_cache_negative_entries_count_separately():
    cache = PlanCache()
    cache.put(key(), FailedPlan(reason="nope", fingerprint="fp"))
    entry = cache.get(key())
    assert isinstance(entry, FailedPlan)
    assert entry.reason == "nope"
    assert cache.stats.negative_hits == 1
    assert cache.stats.hits == 0


def test_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    for name in ("a", "b", "c"):
        cache.put(key(fingerprint=name), CompiledPlan(graph=name, report=None, fingerprint=name))
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.get(key(fingerprint="a")) is None  # oldest evicted
    assert cache.get(key(fingerprint="c")).graph == "c"


def test_cache_get_refreshes_lru_order():
    cache = PlanCache(capacity=2)
    cache.put(key(fingerprint="a"), CompiledPlan(graph="a", report=None, fingerprint="a"))
    cache.put(key(fingerprint="b"), CompiledPlan(graph="b", report=None, fingerprint="b"))
    cache.get(key(fingerprint="a"))  # refresh a; b becomes the LRU entry
    cache.put(key(fingerprint="c"), CompiledPlan(graph="c", report=None, fingerprint="c"))
    assert cache.get(key(fingerprint="a")) is not None
    assert cache.get(key(fingerprint="b")) is None


def test_cache_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# ---------------------------------------------------------------------------
# Config digest
# ---------------------------------------------------------------------------


def test_config_digest_stable_and_sensitive():
    assert config_digest(PashConfig(width=4)) == config_digest(PashConfig(width=4))
    assert config_digest(PashConfig(width=4)) != config_digest(PashConfig(width=8))
    assert config_digest(PashConfig()) != config_digest(
        PashConfig(disabled_passes=("eager-relays",))
    )
