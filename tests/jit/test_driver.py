"""Behavioural tests for the JIT driver: compilation, caching, fallback."""

import pytest

from repro.api import Pash, PashConfig
from repro.jit import JitDriver, PlanCache
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem


def dataset():
    return {
        "in.txt": [
            ("light line %d" % i) if i % 3 else ("dark line %d" % i)
            for i in range(120)
        ],
        "other.txt": ["light a", "dark b", "light c"],
    }


def driver(config=None, files=None, **options):
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({k: list(v) for k, v in (files or dataset()).items()})
    )
    config = config or PashConfig.paper_default(2, jit_inner_backend="interpreter")
    return JitDriver(config=config, environment=environment, **options)


def baseline(script, files=None):
    shell = ShellInterpreter(
        filesystem=VirtualFileSystem({k: list(v) for k, v in (files or dataset()).items()})
    )
    return shell.run_script(script)


# ---------------------------------------------------------------------------
# Compilation and caching
# ---------------------------------------------------------------------------


def test_static_pipeline_compiles_and_matches_interpreter():
    script = "grep light in.txt | sort | head -n 5"
    result = driver().run(script)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 1
    assert result.jit.fallbacks == 0


def test_loop_body_with_stable_bindings_hits_cache():
    script = "for round in 1 2 3 4; do grep light in.txt | sort | head -n 3; done"
    result = driver().run(script)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 1
    assert result.jit.cache_hits == 3
    # Cache hits must be in iteration order after the first compile.
    assert [outcome.action for outcome in result.jit.outcomes] == [
        "compiled",
        "cached",
        "cached",
        "cached",
    ]


def test_loop_variable_in_body_recompiles_per_value():
    script = 'for f in in.txt other.txt; do grep light "$f" | sort; done'
    result = driver().run(script)
    assert result.stdout == baseline(script)
    # Two distinct binding values -> two compilations, no stale reuse.
    assert result.jit.regions_compiled == 2
    assert result.jit.cache_hits == 0


def test_repeated_loop_values_reuse_cached_plans():
    script = 'for f in in.txt other.txt in.txt other.txt; do grep light "$f"; done'
    result = driver().run(script)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 2
    assert result.jit.cache_hits == 2


def test_runtime_binding_unlocks_region_the_aot_path_rejects():
    # AOT: $pat is unknown -> the region is rejected.  JIT: by the time the
    # region runs, the assignment has executed, so it compiles.
    script = "pat=light\ngrep $pat in.txt | sort | head -n 4"
    result = driver().run(script)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 1
    assert result.jit.fallbacks == 0


def test_reassignment_between_regions_is_visible():
    script = "pat=light\ngrep $pat other.txt\npat=dark\ngrep $pat other.txt"
    result = driver().run(script)
    assert result.stdout == baseline(script) == ["light a", "light c", "dark b"]
    assert result.jit.regions_compiled == 2  # different binding values


def test_command_substitution_region_compiles_but_never_caches():
    files = {"pat.txt": ["light"], "in.txt": ["light x", "dark y", "light z"]}
    script = "for i in 1 2; do grep $(cat pat.txt) in.txt; done"
    d = driver(files=files)
    result = d.run(script)
    assert result.stdout == baseline(script, files=files)
    assert result.jit.regions_compiled == 2  # fresh compile per occurrence
    assert result.jit.cache_hits == 0
    assert len(d.cache) == 0


def test_glob_region_compiles_fresh_each_time():
    script = "for i in 1 2; do cat *.txt | wc -l; done"
    d = driver()
    result = d.run(script)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 2
    assert len(d.cache) == 0  # glob-dependent plans are not cached


def test_glob_region_tracks_filesystem_changes():
    files = {"a.txt": ["one"]}
    script = "cat *.txt | wc -l\nsort a.txt > b.txt\ncat *.txt | wc -l"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["1", "2"]


# ---------------------------------------------------------------------------
# Fallback
# ---------------------------------------------------------------------------


def test_unknown_command_falls_back_with_reason():
    files = {"in.txt": ["b", "a"]}
    script = "sort in.txt\necho done"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files)
    assert result.jit.regions_compiled == 1
    assert result.jit.fallbacks == 1
    reasons = result.jit.fallback_reasons()
    assert any("echo" in reason for reason in reasons)


def test_fallback_failure_is_negative_cached_across_iterations():
    files = {"in.txt": ["x"]}
    script = "for i in 1 2 3; do echo fixed; done"
    d = driver(files=files)
    result = d.run(script)
    assert result.stdout == ["fixed"] * 3
    assert result.jit.fallbacks == 3
    # Iterations 2+ must come from the negative cache, not fresh compiles.
    assert [outcome.cached_failure for outcome in result.jit.outcomes] == [
        False,
        True,
        True,
    ]


def test_builtins_and_assignments_are_not_regions():
    result = driver(files={"f.txt": ["x"]}).run("v=1\ntest $v -eq 1\ntrue")
    assert result.jit.regions_seen == 0


def test_fallback_preserves_exit_status_for_control_flow():
    files = {"in.txt": ["hello"]}
    script = "if test 2 -gt 3; then cat in.txt; else sort in.txt; fi"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["hello"]


# ---------------------------------------------------------------------------
# State, files, metrics, sessions
# ---------------------------------------------------------------------------


def test_files_written_by_compiled_regions_are_reported():
    files = {"in.txt": ["b", "c", "a"]}
    result = driver(files=files).run("sort in.txt > out.txt")
    assert result.files == {"out.txt": ["a", "b", "c"]}


def test_regions_communicate_through_files():
    files = {"in.txt": ["b", "light a", "light c"]}
    script = "grep light in.txt > mid.txt\nsort mid.txt | head -n 1"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["light a"]


def test_metrics_aggregate_across_regions():
    config = PashConfig.paper_default(2, jit_inner_backend="parallel")
    script = "grep light in.txt | sort\ngrep dark in.txt | sort"
    result = driver(config=config).run(script)
    assert result.metrics.backend == "jit"
    assert len(result.metrics.nodes) > 0
    assert result.metrics.worker_count >= 2


def test_driver_state_persists_across_runs_and_cache_stays_warm():
    d = driver()
    d.run("pat=light")
    second = d.run("grep $pat in.txt | head -n 2")
    assert second.stdout == baseline("grep light in.txt | head -n 2")
    third = d.run("grep $pat in.txt | head -n 2")
    assert third.jit.cache_hits == 1
    assert third.jit.regions_compiled == 0


def test_shared_cache_across_drivers():
    cache = PlanCache()
    first = driver(cache=cache).run("grep light in.txt | sort")
    second = driver(cache=cache).run("grep light in.txt | sort")
    assert first.jit.regions_compiled == 1
    assert second.jit.cache_hits == 1


def test_pash_session_routes_jit_with_pool():
    files = dataset()
    script = "for r in 1 2 3; do grep light in.txt | sort | head -n 3; done"
    with Pash(PashConfig.paper_default(2, backend="jit")) as pash:
        environment = ExecutionEnvironment(
            filesystem=VirtualFileSystem({k: list(v) for k, v in files.items()})
        )
        result = pash.run_script(script, environment=environment)
    assert result.stdout == baseline(script)
    assert result.jit.regions_compiled == 1
    assert result.jit.cache_hits == 2
    # The session pool persisted workers across regions.
    assert result.metrics.processes_reused > 0


def test_compiled_script_execute_jit_bypasses_rejection():
    files = {"in.txt": ["light a", "dark b"]}
    source = "x=dynamic\ngrep light in.txt\necho $x"
    compiled = Pash.compile(source, PashConfig.paper_default(2))
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({k: list(v) for k, v in files.items()})
    )
    result = compiled.execute(backend="jit", environment=environment)
    assert result.stdout == baseline(source, files=files) == ["light a", "dynamic"]


def test_engine_level_jit_backend_delegates():
    from repro import engine
    from repro.dfg.builder import DFGBuilder

    graph = DFGBuilder().build_from_script("grep light in.txt | sort")
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({k: list(v) for k, v in dataset().items()})
    )
    result = engine.run(graph, backend="jit", environment=environment)
    assert result.backend == "jit"
    assert result.stdout == baseline("grep light in.txt | sort")


def test_inner_backend_interpreter_and_parallel_agree():
    script = 'for f in in.txt other.txt; do grep light "$f" | sort | head -n 4; done'
    by_interpreter = driver(
        config=PashConfig.paper_default(2, jit_inner_backend="interpreter")
    ).run(script)
    by_parallel = driver(
        config=PashConfig.paper_default(2, jit_inner_backend="parallel")
    ).run(script)
    assert by_interpreter.stdout == by_parallel.stdout == baseline(script)


def test_config_change_misses_cache():
    cache = PlanCache()
    script = "grep light in.txt | sort"
    driver(config=PashConfig.paper_default(2, jit_inner_backend="interpreter"), cache=cache).run(script)
    second = driver(
        config=PashConfig.paper_default(4, jit_inner_backend="interpreter"), cache=cache
    ).run(script)
    assert second.jit.regions_compiled == 1  # width change -> new digest -> miss


def test_report_summary_mentions_counts():
    result = driver().run("for r in 1 2; do grep light in.txt; done")
    summary = result.jit.summary()
    assert "2 regions seen" in summary
    assert "1 compiled" in summary
    assert "1 cache hits" in summary


# ---------------------------------------------------------------------------
# Review regressions: default-value forms, :=, loop-binding order, per-run files
# ---------------------------------------------------------------------------


def test_default_form_with_dynamic_assignment_uses_runtime_value():
    # AOT cannot know X (dynamic assignment); the JIT must resolve the
    # ${X:-fallback} form with the *runtime* value, never the default.
    files = {"real.txt": ["REAL"], "fallback.txt": ["FALLBACK"]}
    script = "X=$(echo real.txt | head -n 1)\nsort ${X:-fallback.txt}"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["REAL"]


def test_aot_refuses_default_form_with_unknown_state():
    # The engine paths must refuse (conservative), not compile the default in.
    from repro.api import run as api_run
    from repro.runtime.executor import ExecutionError

    files = {"real.txt": ["REAL"], "fallback.txt": ["FALLBACK"]}
    script = "X=$(echo real.txt | head -n 1)\nsort ${X:-fallback.txt}"
    with pytest.raises(ExecutionError):
        api_run(
            script,
            backend="interpreter",
            environment=ExecutionEnvironment(
                filesystem=VirtualFileSystem({k: list(v) for k, v in files.items()})
            ),
        )


def test_assign_default_form_persists_across_regions():
    files = {"in.txt": ["5 match", "6 other"]}
    script = "grep ${N:=5} in.txt\necho $N"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["5 match", "5"]


def test_single_item_loop_variable_not_visible_before_loop():
    # `$i` before the loop must stay unknown at compile time: the region is
    # reached before the loop binds i, and the JIT must match the oracle.
    files = {"x.txt": ["X"], ".txt": ["EMPTYNAME"]}
    script = "cat $i.txt\nfor i in x; do cat x.txt; done"
    result = driver(files=files).run(script)
    assert result.stdout == baseline(script, files=files) == ["EMPTYNAME", "X"]


def test_translate_script_rejects_preloop_use_of_loop_variable():
    from repro.dfg.builder import translate_script

    translation = translate_script("cat $i.txt\nfor i in x; do cat x.txt; done")
    assert len(translation.rejected) == 1
    assert "unknown variable $i" in translation.rejected[0][1]
    # The body region still compiles with the single-item binding.
    assert len(translation.regions) == 1


def test_result_files_are_per_run():
    d = driver(files={"a.txt": ["1"], "b.txt": ["2"]})
    first = d.run("sort a.txt > f1.txt")
    second = d.run("sort b.txt > f2.txt")
    assert sorted(first.files) == ["f1.txt"]
    assert sorted(second.files) == ["f2.txt"]
