"""Dynamic-script corpus: byte-identical across execution modes.

Each corpus script exercises shell dynamism the AOT path cannot compile —
loops with reassignment, conditionals guarding pipelines, command
substitutions feeding loop lists — and must produce byte-identical stdout
and files on:

* the sequential :class:`~repro.runtime.interpreter.ShellInterpreter`
  (the oracle),
* the JIT driver executing compiled regions on the ``interpreter`` engine,
* the JIT driver executing compiled regions on the ``parallel`` engine
  (real processes and OS pipes).
"""

import pytest

from repro.api import PashConfig
from repro.jit import JitDriver
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem

WIDTH = 2


def corpus_dataset():
    lines = []
    for i in range(300):
        kind = "light" if i % 3 else "dark"
        lines.append(f"{kind} entry {i:03d} alpha" if i % 2 else f"{kind} entry {i:03d} beta")
    return {
        "logs.txt": lines,
        "extra.txt": ["light tail x", "dark tail y", "light tail z"],
        "patterns.txt": ["light"],
        "files.txt": ["logs.txt", "extra.txt"],
    }


CORPUS = {
    "loop-with-reassignment": (
        "pat=light\n"
        'for f in logs.txt extra.txt; do grep $pat "$f" | sort | head -n 4; done\n'
        "pat=dark\n"
        "grep $pat extra.txt\n"
    ),
    "loop-carried-counter": (
        "seen=none\n"
        "for f in logs.txt extra.txt; do\n"
        '  test $seen = none && grep light "$f" | head -n 2\n'
        "  seen=$f\n"
        "done\n"
        "echo last:$seen\n"
    ),
    "if-guarding-pipeline": (
        "mode=full\n"
        "if test $mode = full; then\n"
        "  grep light logs.txt | sort | head -n 5\n"
        "else\n"
        "  grep dark logs.txt | head -n 1\n"
        "fi\n"
    ),
    "if-else-branch-not-taken": (
        "if test 1 -gt 2; then\n"
        "  grep light logs.txt\n"
        "else\n"
        "  grep dark logs.txt | sort | head -n 3\n"
        "fi\n"
    ),
    "substitution-feeding-loop-list": (
        'for f in $(cat files.txt); do grep light "$f" | wc -l; done\n'
    ),
    "substitution-as-pattern": (
        "grep $(cat patterns.txt) extra.txt | sort\n"
    ),
    "while-countdown": (
        "n=3\n"
        "while test $n != 0; do\n"
        "  grep light extra.txt | head -n $n\n"
        '  n=$(seq $n | head -n 1 | grep -c . | sed "s/1/x/" | sed "s/x//")\n'
        "  test $n = '' && n=0\n"
        "done\n"
    ),
    "glob-over-files": (
        'for f in *.txt; do grep -c light "$f"; done\n'
    ),
    "redirect-then-reread": (
        "grep light logs.txt | sort > staged.txt\n"
        "head -n 3 staged.txt\n"
        "grep alpha staged.txt | wc -l\n"
    ),
    "status-chain": (
        "grep light extra.txt | head -n 1\n"
        "test -e logs.txt && grep dark extra.txt\n"
        "test -e missing.txt || grep light extra.txt | tail -n 1\n"
        "echo status:$?\n"
    ),
    "default-values": (
        "head -n ${N:-2} extra.txt\n"
        "N=1\n"
        "head -n ${N:-2} extra.txt\n"
    ),
}


def fresh_environment():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {name: list(lines) for name, lines in corpus_dataset().items()}
        )
    )


def run_baseline(script):
    environment = fresh_environment()
    shell = ShellInterpreter(filesystem=environment.filesystem)
    stdout = shell.run_script(script)
    return stdout, environment.filesystem


def run_jit(script, inner_backend):
    environment = fresh_environment()
    config = PashConfig.paper_default(WIDTH, jit_inner_backend=inner_backend)
    driver = JitDriver(config=config, environment=environment)
    result = driver.run(script)
    return result, environment.filesystem


def files_snapshot(filesystem):
    return {name: filesystem.read(name) for name in filesystem.names()}


@pytest.mark.parametrize("name", sorted(CORPUS))
@pytest.mark.parametrize("inner_backend", ["interpreter", "parallel"])
def test_corpus_is_byte_identical(name, inner_backend):
    script = CORPUS[name]
    expected_stdout, expected_fs = run_baseline(script)
    result, jit_fs = run_jit(script, inner_backend)
    assert result.stdout == expected_stdout
    assert files_snapshot(jit_fs) == files_snapshot(expected_fs)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_parallelizes_at_least_one_region(name):
    """Every corpus script must exercise the JIT hot path, not just fall back."""
    result, _ = run_jit(CORPUS[name], "interpreter")
    assert result.jit.regions_compiled + result.jit.cache_hits >= 1, (
        result.jit.summary()
    )
