"""Tests for split, eager buffers, and the virtual filesystem."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.eager import EagerBuffer, relay
from repro.runtime.split import round_robin_split, split_stream
from repro.runtime.streams import VirtualFileSystem

lines_strategy = st.lists(st.text(alphabet="xyz", max_size=5), max_size=50)


# ---------------------------------------------------------------------------
# split
# ---------------------------------------------------------------------------


def test_split_contiguous_and_balanced():
    chunks = split_stream([str(i) for i in range(10)], 3)
    assert [len(c) for c in chunks] == [4, 3, 3]
    assert sum(chunks, []) == [str(i) for i in range(10)]


def test_split_more_parts_than_lines():
    chunks = split_stream(["a"], 4)
    assert len(chunks) == 4
    assert sum(chunks, []) == ["a"]


def test_split_input_aware_with_known_size():
    chunks = split_stream(["a", "b", "c", "d"], 2, strategy="input-aware", known_size=4)
    assert chunks == [["a", "b"], ["c", "d"]]


def test_split_input_aware_stale_size_loses_nothing():
    chunks = split_stream(["a", "b", "c", "d", "e"], 2, strategy="input-aware", known_size=2)
    assert sum(chunks, []) == ["a", "b", "c", "d", "e"]


def test_split_invalid_arguments():
    with pytest.raises(ValueError):
        split_stream(["a"], 0)
    with pytest.raises(ValueError):
        split_stream(["a"], 2, strategy="zigzag")


def test_round_robin_split_preserves_multiset():
    chunks = round_robin_split(["a", "b", "c", "d", "e"], 2)
    assert sorted(sum(chunks, [])) == ["a", "b", "c", "d", "e"]


@given(lines_strategy, st.integers(min_value=1, max_value=6))
def test_split_concatenation_is_identity(lines, parts):
    assert sum(split_stream(lines, parts), []) == lines


@given(lines_strategy, st.integers(min_value=1, max_value=6))
def test_split_chunk_sizes_differ_by_at_most_one(lines, parts):
    sizes = [len(chunk) for chunk in split_stream(lines, parts)]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# eager buffers
# ---------------------------------------------------------------------------


def test_eager_buffer_reads_before_close():
    buffer = EagerBuffer(mode="eager")
    buffer.write("a")
    assert buffer.readable()
    assert buffer.read() == "a"


def test_blocking_buffer_reads_only_after_close():
    buffer = EagerBuffer(mode="blocking")
    buffer.write("a")
    assert not buffer.readable()
    buffer.close()
    assert buffer.drain() == ["a"]


def test_fifo_buffer_reports_blocked_writes():
    buffer = EagerBuffer(mode="fifo", capacity=2)
    blocked = buffer.write_all(["1", "2", "3", "4"])
    assert blocked == 2
    assert buffer.blocked_writes == 2
    buffer.close()
    assert buffer.drain() == ["1", "2", "3", "4"]


def test_write_after_close_raises():
    buffer = EagerBuffer()
    buffer.close()
    with pytest.raises(ValueError):
        buffer.write("x")


def test_invalid_mode_raises():
    with pytest.raises(ValueError):
        EagerBuffer(mode="warp")


def test_buffer_tracks_high_watermark():
    buffer = EagerBuffer()
    buffer.write_all(["a", "b", "c"])
    buffer.read()
    assert buffer.total_buffered == 3


@given(lines_strategy, st.sampled_from(["eager", "blocking", "fifo"]))
def test_relay_is_identity(lines, mode):
    assert relay(lines, mode=mode) == lines


# ---------------------------------------------------------------------------
# virtual filesystem
# ---------------------------------------------------------------------------


def test_vfs_write_read_append():
    vfs = VirtualFileSystem({"a.txt": ["1"]})
    vfs.append("a.txt", ["2"])
    vfs.write("b.txt", ["x"])
    assert vfs.read("a.txt") == ["1", "2"]
    assert vfs.read("b.txt") == ["x"]
    assert vfs.names() == ["a.txt", "b.txt"]
    assert vfs.total_lines() == 3


def test_vfs_missing_file_raises():
    with pytest.raises(FileNotFoundError):
        VirtualFileSystem().read("nope.txt")


def test_vfs_copy_is_independent():
    vfs = VirtualFileSystem({"a.txt": ["1"]})
    clone = vfs.copy()
    clone.append("a.txt", ["2"])
    assert vfs.read("a.txt") == ["1"]


def test_vfs_real_file_fallback(tmp_path):
    target = tmp_path / "real.txt"
    target.write_text("hello\nworld\n")
    vfs = VirtualFileSystem(allow_real_files=True)
    assert vfs.read(str(target)) == ["hello", "world"]
    assert str(target) in vfs


def test_vfs_delete():
    vfs = VirtualFileSystem({"a.txt": ["1"]})
    vfs.delete("a.txt")
    assert "a.txt" not in vfs
