"""Tests for the aggregator library: every aggregator must reproduce the
result of running the original command over the whole input."""

import pytest
from hypothesis import given, strategies as st

from repro.commands import misc, sorting
from repro.runtime.aggregators import AGGREGATORS, AggregatorError, apply_aggregator
from repro.runtime.split import split_stream

lines_strategy = st.lists(st.text(alphabet="abcd ", min_size=0, max_size=6), max_size=40)


def chunked(lines, parts=3):
    return split_stream(lines, parts)


def test_concat():
    assert apply_aggregator("concat", [["a"], ["b", "c"]], []) == ["a", "b", "c"]


def test_merge_sort_equals_global_sort():
    data = ["banana", "apple", "cherry", "apple", "date"]
    chunks = chunked(data)
    partial = [sorting.sort_command([], [chunk]) for chunk in chunks]
    merged = apply_aggregator("merge_sort", partial, [])
    assert merged == sorting.sort_command([], [data])


def test_merge_sort_respects_flags():
    data = ["10", "2", "33", "4", "25", "7"]
    chunks = chunked(data)
    partial = [sorting.sort_command(["-rn"], [chunk]) for chunk in chunks]
    merged = apply_aggregator("merge_sort", partial, ["-rn"])
    assert merged == sorting.sort_command(["-rn"], [data])


def test_merge_uniq_boundary():
    data = ["a", "a", "b", "b", "b", "c"]
    chunks = [["a", "a"], ["a", "b"], ["b", "c"]]  # duplicate across boundary
    whole = sorting.uniq([], [sum(chunks, [])])
    partial = [sorting.uniq([], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_uniq", partial, []) == whole
    assert data  # silence unused warning


def test_merge_uniq_count_boundary_sums():
    chunks = [["x", "x"], ["x", "y"]]
    whole = sorting.uniq(["-c"], [sum(chunks, [])])
    partial = [sorting.uniq(["-c"], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_uniq", partial, ["-c"]) == whole


def test_merge_wc_sums_columns():
    chunks = [["a b", "c"], ["d e f"]]
    whole = misc.wc(["-lw"], [sum(chunks, [])])
    partial = [misc.wc(["-lw"], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_wc", partial, ["-lw"]) == whole


def test_merge_wc_mismatched_columns_raises():
    with pytest.raises(AggregatorError):
        apply_aggregator("merge_wc", [["1 2"], ["3"]], [])


def test_merge_tac_reverses_stream_order():
    chunks = [["a", "b"], ["c", "d"]]
    whole = misc.tac([], [sum(chunks, [])])
    partial = [misc.tac([], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_tac", partial, []) == whole


def test_merge_head():
    chunks = [["1", "2", "3"], ["4", "5"]]
    whole = misc.head(["-n", "4"], [sum(chunks, [])])
    partial = [misc.head(["-n", "4"], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_head", partial, ["-n", "4"]) == whole


def test_merge_tail():
    chunks = [["1", "2", "3"], ["4", "5"]]
    whole = misc.tail(["-n", "2"], [sum(chunks, [])])
    partial = [misc.tail(["-n", "2"], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_tail", partial, ["-n", "2"]) == whole


def test_sum_aggregator():
    assert apply_aggregator("sum", [["3"], ["4"], [""]], []) == ["7"]


def test_unknown_aggregator_raises():
    with pytest.raises(AggregatorError):
        apply_aggregator("merge_magic", [["a"]], [])


def test_all_registered_aggregators_handle_empty_input():
    for name in AGGREGATORS:
        result = apply_aggregator(name, [[], []], [])
        assert isinstance(result, list)


# ---------------------------------------------------------------------------
# Property-based map/aggregate laws (§4.2)
# ---------------------------------------------------------------------------


@given(lines_strategy, st.integers(min_value=2, max_value=5))
def test_sort_map_aggregate_law(lines, parts):
    chunks = split_stream(lines, parts)
    partial = [sorting.sort_command([], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_sort", partial, []) == sorting.sort_command([], [lines])


@given(lines_strategy, st.integers(min_value=2, max_value=5))
def test_uniq_map_aggregate_law(lines, parts):
    chunks = split_stream(sorted(lines), parts)
    partial = [sorting.uniq([], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_uniq", partial, []) == sorting.uniq([], [sorted(lines)])


@given(lines_strategy, st.integers(min_value=2, max_value=5))
def test_wc_map_aggregate_law(lines, parts):
    chunks = split_stream(lines, parts)
    partial = [misc.wc(["-lw"], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_wc", partial, ["-lw"]) == misc.wc(["-lw"], [lines])


@given(lines_strategy, st.integers(min_value=2, max_value=5))
def test_tac_map_aggregate_law(lines, parts):
    chunks = split_stream(lines, parts)
    partial = [misc.tac([], [chunk]) for chunk in chunks]
    assert apply_aggregator("merge_tac", partial, []) == misc.tac([], [lines])
