"""Tests for the sequential shell interpreter."""

import pytest

from repro.runtime.interpreter import InterpreterError, ShellInterpreter
from repro.runtime.streams import VirtualFileSystem


def interpreter(files=None, variables=None):
    return ShellInterpreter(filesystem=VirtualFileSystem(files or {}), variables=variables)


def test_simple_pipeline():
    shell = interpreter({"a.txt": ["xb", "xa", "c"]})
    assert shell.run_script("cat a.txt | grep x | sort") == ["xa", "xb"]


def test_redirection_writes_file_and_suppresses_stdout():
    shell = interpreter({"a.txt": ["b", "a"]})
    out = shell.run_script("cat a.txt | sort > out.txt")
    assert out == []
    assert shell.state.filesystem.read("out.txt") == ["a", "b"]


def test_append_redirection():
    shell = interpreter({"a.txt": ["x"]})
    shell.run_script("cat a.txt > log.txt\ncat a.txt >> log.txt")
    assert shell.state.filesystem.read("log.txt") == ["x", "x"]


def test_sequence_concatenates_outputs():
    shell = interpreter({"a.txt": ["1"], "b.txt": ["2"]})
    assert shell.run_script("cat a.txt; cat b.txt") == ["1", "2"]


def test_variable_assignment_and_expansion():
    shell = interpreter({"data.txt": ["v"]})
    assert shell.run_script("IN=data.txt\ncat $IN") == ["v"]


def test_for_loop_iterates_in_order():
    shell = interpreter({"1.txt": ["one"], "2.txt": ["two"]})
    assert shell.run_script("for i in 1 2; do cat $i.txt; done") == ["one", "two"]


def test_for_loop_with_brace_range():
    shell = interpreter({f"{year}.txt": [str(year)] for year in (2015, 2016, 2017)})
    out = shell.run_script("for y in {2015..2017}; do cat $y.txt; done")
    assert out == ["2015", "2016", "2017"]


def test_andor_runs_left_to_right():
    shell = interpreter({"a.txt": ["1"]})
    assert shell.run_script("cat a.txt && echo done") == ["1", "done"]


def test_or_skips_right_side():
    shell = interpreter({"a.txt": ["1"]})
    assert shell.run_script("cat a.txt || echo fallback") == ["1"]


def test_input_redirection():
    shell = interpreter({"in.txt": ["b", "a"]})
    assert shell.run_script("sort < in.txt") == ["a", "b"]


def test_dash_operand_reads_pipe():
    shell = interpreter({"dict.txt": ["apple", "zebra"], "w.txt": ["apple", "banana"]})
    out = shell.run_script("cat w.txt | sort | comm -13 dict.txt -")
    assert out == ["banana"]


def test_subshell_and_background():
    shell = interpreter({"a.txt": ["x"]})
    assert shell.run_script("( cat a.txt | wc -l ) &") == ["1"]


def test_command_operating_on_missing_file_raises():
    with pytest.raises(InterpreterError):
        interpreter().run_script("cat missing.txt")


def test_while_loop_runs_until_condition_fails():
    shell = interpreter()
    out = shell.run_script(
        "flag=go\nwhile test $flag = go; do echo once; flag=stop; done"
    )
    assert out == ["once"]


def test_until_loop_inverts_condition():
    shell = interpreter()
    out = shell.run_script(
        "flag=wait\nuntil test $flag = done; do echo step; flag=done; done"
    )
    assert out == ["step"]


def test_while_loop_with_test_counter():
    shell = interpreter({"seq.txt": ["1", "2", "3"]})
    out = shell.run_script(
        "n=$(cat seq.txt | wc -l)\nwhile test $n -gt 0; do echo tick; n=$(echo $n | head -n 1 | sed s/3/0/ | sed s/2/0/ | sed s/1/0/); done"
    )
    assert out == ["tick"]


def test_runaway_while_loop_hits_iteration_cap():
    shell = ShellInterpreter(max_loop_iterations=10)
    with pytest.raises(InterpreterError):
        shell.run_script("while true; do echo x; done")


def test_if_clause_branches_on_test():
    shell = interpreter()
    assert shell.run_script("if test a = a; then echo yes; else echo no; fi") == ["yes"]
    assert shell.run_script("if test a = b; then echo yes; else echo no; fi") == ["no"]


def test_if_without_else_when_false_is_empty():
    assert interpreter().run_script("if false; then echo yes; fi") == []


def test_if_condition_output_is_script_output():
    shell = interpreter({"in.txt": ["hay", "needle"]})
    out = shell.run_script("if grep needle in.txt; then echo found; fi")
    assert out == ["needle", "found"]


def test_last_status_special_parameter():
    shell = interpreter()
    assert shell.run_script("false; echo $?") == ["1"]
    assert shell.run_script("true; echo $?") == ["0"]


def test_andor_branches_on_builtin_status():
    shell = interpreter()
    assert shell.run_script("false && echo a") == []
    assert shell.run_script("false || echo b") == ["b"]
    assert shell.run_script("true && echo c") == ["c"]


def test_command_substitution_expands():
    shell = interpreter({"names.txt": ["alpha", "beta"]})
    assert shell.run_script("echo got $(cat names.txt | wc -l)") == ["got 2"]


def test_command_substitution_feeds_for_loop():
    shell = interpreter()
    out = shell.run_script("for i in $(seq 3); do echo item$i; done")
    assert out == ["item1", "item2", "item3"]


def test_command_substitution_is_a_subshell_for_variables():
    shell = interpreter({"x.txt": ["1"]})
    out = shell.run_script("v=outer\nignored=$(cat x.txt)\necho $v")
    assert out == ["outer"]


def test_glob_expansion_over_virtual_files():
    shell = interpreter({"b.txt": ["B"], "a.txt": ["A"], "c.md": ["C"]})
    assert shell.run_script("cat *.txt") == ["A", "B"]


def test_glob_in_for_loop_items():
    shell = interpreter({"b.txt": ["B"], "a.txt": ["A"]})
    out = shell.run_script('for f in *.txt; do cat "$f"; done')
    assert out == ["A", "B"]


def test_unmatched_glob_stays_literal():
    shell = interpreter({"a.txt": ["A"]})
    with pytest.raises(InterpreterError):
        # *.zip matches nothing -> literal filename that does not exist.
        shell.run_script("cat *.zip")


def test_positional_parameters():
    shell = ShellInterpreter(positional=["one", "two"])
    assert shell.run_script("echo $# $1 $2") == ["2 one two"]
    assert shell.run_script('for a in "$@"; do echo arg:$a; done') == [
        "arg:one",
        "arg:two",
    ]


def test_default_value_expansion_in_script():
    shell = interpreter()
    assert shell.run_script("echo ${WIDTH:-4}") == ["4"]
    assert shell.run_script("WIDTH=8\necho ${WIDTH:-4}") == ["8"]


def test_subshell_isolates_variables():
    shell = interpreter()
    assert shell.run_script("v=outer\n( v=inner; echo $v )\necho $v") == [
        "inner",
        "outer",
    ]


def test_unknown_variable_expands_empty():
    shell = interpreter({"x.txt": ["ok"]})
    assert shell.run_script("cat x.txt$SUFFIX") == ["ok"]


def test_xargs_with_custom_command():
    shell = interpreter({"ids.txt": ["2015/a"]})
    out = shell.run_script("cat ids.txt | xargs -n 1 fetch-station | wc -l")
    assert int(out[0]) > 0


def test_fig1_style_noaa_loop_runs():
    from repro.workloads import noaa

    dataset = noaa.yearly_dataset(years=[2015], stations=4)
    shell = ShellInterpreter(filesystem=VirtualFileSystem(dataset))
    out = shell.run_script(noaa.per_year_pipeline(2015, 4))
    assert len(out) == 1
    assert out[0].startswith("Maximum temperature for 2015 is: ")
