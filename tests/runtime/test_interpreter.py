"""Tests for the sequential shell interpreter."""

import pytest

from repro.runtime.interpreter import InterpreterError, ShellInterpreter
from repro.runtime.streams import VirtualFileSystem


def interpreter(files=None, variables=None):
    return ShellInterpreter(filesystem=VirtualFileSystem(files or {}), variables=variables)


def test_simple_pipeline():
    shell = interpreter({"a.txt": ["xb", "xa", "c"]})
    assert shell.run_script("cat a.txt | grep x | sort") == ["xa", "xb"]


def test_redirection_writes_file_and_suppresses_stdout():
    shell = interpreter({"a.txt": ["b", "a"]})
    out = shell.run_script("cat a.txt | sort > out.txt")
    assert out == []
    assert shell.state.filesystem.read("out.txt") == ["a", "b"]


def test_append_redirection():
    shell = interpreter({"a.txt": ["x"]})
    shell.run_script("cat a.txt > log.txt\ncat a.txt >> log.txt")
    assert shell.state.filesystem.read("log.txt") == ["x", "x"]


def test_sequence_concatenates_outputs():
    shell = interpreter({"a.txt": ["1"], "b.txt": ["2"]})
    assert shell.run_script("cat a.txt; cat b.txt") == ["1", "2"]


def test_variable_assignment_and_expansion():
    shell = interpreter({"data.txt": ["v"]})
    assert shell.run_script("IN=data.txt\ncat $IN") == ["v"]


def test_for_loop_iterates_in_order():
    shell = interpreter({"1.txt": ["one"], "2.txt": ["two"]})
    assert shell.run_script("for i in 1 2; do cat $i.txt; done") == ["one", "two"]


def test_for_loop_with_brace_range():
    shell = interpreter({f"{year}.txt": [str(year)] for year in (2015, 2016, 2017)})
    out = shell.run_script("for y in {2015..2017}; do cat $y.txt; done")
    assert out == ["2015", "2016", "2017"]


def test_andor_runs_left_to_right():
    shell = interpreter({"a.txt": ["1"]})
    assert shell.run_script("cat a.txt && echo done") == ["1", "done"]


def test_or_skips_right_side():
    shell = interpreter({"a.txt": ["1"]})
    assert shell.run_script("cat a.txt || echo fallback") == ["1"]


def test_input_redirection():
    shell = interpreter({"in.txt": ["b", "a"]})
    assert shell.run_script("sort < in.txt") == ["a", "b"]


def test_dash_operand_reads_pipe():
    shell = interpreter({"dict.txt": ["apple", "zebra"], "w.txt": ["apple", "banana"]})
    out = shell.run_script("cat w.txt | sort | comm -13 dict.txt -")
    assert out == ["banana"]


def test_subshell_and_background():
    shell = interpreter({"a.txt": ["x"]})
    assert shell.run_script("( cat a.txt | wc -l ) &") == ["1"]


def test_command_operating_on_missing_file_raises():
    with pytest.raises(InterpreterError):
        interpreter().run_script("cat missing.txt")


def test_while_loop_unsupported():
    with pytest.raises(InterpreterError):
        interpreter().run_script("while true; do echo x; done")


def test_unknown_variable_expands_empty():
    shell = interpreter({"x.txt": ["ok"]})
    assert shell.run_script("cat x.txt$SUFFIX") == ["ok"]


def test_xargs_with_custom_command():
    shell = interpreter({"ids.txt": ["2015/a"]})
    out = shell.run_script("cat ids.txt | xargs -n 1 fetch-station | wc -l")
    assert int(out[0]) > 0


def test_fig1_style_noaa_loop_runs():
    from repro.workloads import noaa

    dataset = noaa.yearly_dataset(years=[2015], stations=4)
    shell = ShellInterpreter(filesystem=VirtualFileSystem(dataset))
    out = shell.run_script(noaa.per_year_pipeline(2015, 4))
    assert len(out) == 1
    assert out[0].startswith("Maximum temperature for 2015 is: ")
