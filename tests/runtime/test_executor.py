"""Tests for the in-process DFG executor."""

import pytest

from repro.dfg.builder import DFGBuilder
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import ParallelizationConfig, optimize_graph


def run(script, files, stdin=None, config=None):
    graph = DFGBuilder().build_from_script(script)
    if config is not None:
        optimize_graph(graph, config)
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem(files), stdin=list(stdin or [])
    )
    return DFGExecutor(environment).execute(graph), environment


def test_simple_pipeline_stdout():
    result, _ = run("cat a.txt | grep x | sort", {"a.txt": ["xb", "xa", "c"]})
    assert result.stdout == ["xa", "xb"]


def test_pipeline_writing_a_file():
    result, environment = run("cat a.txt | sort > out.txt", {"a.txt": ["b", "a"]})
    assert result.stdout == []
    assert environment.filesystem.read("out.txt") == ["a", "b"]
    assert result.output_of("out.txt") == ["a", "b"]


def test_append_redirection():
    files = {"a.txt": ["x"], "out.txt": ["existing"]}
    _, environment = run("cat a.txt | sort >> out.txt", files)
    assert environment.filesystem.read("out.txt") == ["existing", "x"]


def test_stdin_edge_reads_environment_stdin():
    result, _ = run("grep foo | wc -l", {}, stdin=["foo", "bar", "food"])
    assert result.stdout == ["2"]


def test_multiple_file_inputs_in_order():
    result, _ = run("cat a.txt b.txt | head -n3", {"a.txt": ["1", "2"], "b.txt": ["3", "4"]})
    assert result.stdout == ["1", "2", "3"]


def test_comm_with_two_file_inputs():
    files = {"a.txt": ["a", "b", "c"], "b.txt": ["b", "d"]}
    result, _ = run("comm -12 a.txt b.txt", files)
    assert result.stdout == ["b"]


def test_missing_input_file_raises():
    with pytest.raises(ExecutionError):
        run("cat missing.txt | sort", {})


def test_optimized_graph_produces_identical_output():
    files = {f"in{i}.txt": [f"line{j}-{i}" for j in range(50)] for i in range(4)}
    script = "cat in0.txt in1.txt in2.txt in3.txt | grep line | sort | uniq -c | head -n 7"
    baseline, _ = run(script, files)
    parallel, _ = run(script, files, config=ParallelizationConfig.paper_default(4))
    assert baseline.stdout == parallel.stdout


def test_optimized_graph_with_split_produces_identical_output():
    files = {"big.txt": [f"{i % 7} payload" for i in range(200)]}
    script = "cat big.txt | grep payload | sort | uniq -c | sort -rn"
    baseline, _ = run(script, files)
    parallel, _ = run(script, files, config=ParallelizationConfig.paper_default(8))
    assert baseline.stdout == parallel.stdout


def test_edge_values_are_recorded():
    result, _ = run("cat a.txt | wc -l", {"a.txt": ["1", "2", "3"]})
    assert any(value == ["3"] for value in result.edge_values.values())


def test_environment_is_reusable_across_graphs():
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem({"a.txt": ["b", "a"]}))
    first = DFGBuilder().build_from_script("cat a.txt | sort > sorted.txt")
    DFGExecutor(environment).execute(first)
    second = DFGBuilder().build_from_script("cat sorted.txt | head -n1")
    result = DFGExecutor(environment).execute(second)
    assert result.stdout == ["a"]
