"""Tests for the runtime helper CLI used by emitted scripts."""

import subprocess
import sys

import pytest

from repro.runtime import cli


def run_cli(arguments, stdin_text=""):
    return subprocess.run(
        [sys.executable, "-m", "repro.runtime.cli", *arguments],
        input=stdin_text,
        capture_output=True,
        text=True,
        check=True,
    )


def test_eager_passes_data_through():
    result = run_cli(["eager"], "b\na\n")
    assert result.stdout == "b\na\n"


def test_eager_blocking_mode_same_output():
    result = run_cli(["eager", "--mode", "blocking"], "1\n2\n")
    assert result.stdout == "1\n2\n"


def test_split_distributes_lines(tmp_path):
    outputs = [str(tmp_path / f"part{i}") for i in range(3)]
    run_cli(["split", *outputs], "1\n2\n3\n4\n5\n")
    parts = [open(path).read().splitlines() for path in outputs]
    assert sum(parts, []) == ["1", "2", "3", "4", "5"]
    assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1


def test_split_input_aware_strategy(tmp_path):
    outputs = [str(tmp_path / f"p{i}") for i in range(2)]
    run_cli(["split", "--strategy", "input-aware", *outputs], "a\nb\nc\nd\n")
    assert open(outputs[0]).read().splitlines() == ["a", "b"]


def test_agg_merge_sort(tmp_path):
    first = tmp_path / "a"
    second = tmp_path / "b"
    first.write_text("1\n3\n")
    second.write_text("2\n4\n")
    result = run_cli(["agg", "merge_sort", str(first), str(second)])
    assert result.stdout.splitlines() == ["1", "2", "3", "4"]


def test_agg_merge_wc(tmp_path):
    first = tmp_path / "a"
    second = tmp_path / "b"
    first.write_text("3 10\n")
    second.write_text("4 11\n")
    result = run_cli(["agg", "merge_wc", str(first), str(second)])
    assert result.stdout.strip() == "7 21"


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args([])


def test_main_entry_point_in_process(capsys, monkeypatch, tmp_path):
    source = tmp_path / "x"
    source.write_text("5\n1\n")
    monkeypatch.setattr("sys.stdin", open(source))
    assert cli.main(["eager"]) == 0
    captured = capsys.readouterr()
    assert captured.out.splitlines() == ["5", "1"]
