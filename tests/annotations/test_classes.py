"""Tests for the parallelizability class hierarchy."""

import pytest

from repro.annotations.classes import ParallelizabilityClass

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
N = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


def test_hierarchy_order():
    assert S < P < N < E


def test_rank_values_are_distinct():
    ranks = {cls.rank for cls in ParallelizabilityClass}
    assert len(ranks) == 4


def test_symbols_match_paper():
    assert [cls.symbol for cls in (S, P, N, E)] == ["S", "P", "N", "E"]


def test_data_parallelizable_flag():
    assert S.is_data_parallelizable
    assert P.is_data_parallelizable
    assert not N.is_data_parallelizable
    assert not E.is_data_parallelizable


def test_least_parallelizable_picks_hardest():
    assert ParallelizabilityClass.least_parallelizable(S, P, E) is E
    assert ParallelizabilityClass.least_parallelizable(S, S) is S
    assert ParallelizabilityClass.least_parallelizable(P, N) is N


def test_least_parallelizable_requires_argument():
    with pytest.raises(ValueError):
        ParallelizabilityClass.least_parallelizable()


@pytest.mark.parametrize(
    "keyword,expected",
    [
        ("stateless", S),
        ("S", S),
        ("pure", P),
        ("p", P),
        ("non-parallelizable", N),
        ("n", N),
        ("side-effectful", E),
        ("e", E),
    ],
)
def test_from_keyword(keyword, expected):
    assert ParallelizabilityClass.from_keyword(keyword) is expected


def test_from_keyword_unknown_raises():
    with pytest.raises(ValueError):
        ParallelizabilityClass.from_keyword("mystery")


def test_comparison_with_other_types_not_supported():
    with pytest.raises(TypeError):
        _ = S < "pure"
