"""Tests for the Appendix-A annotation language parser."""

import pytest

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.dsl import (
    AnnotationParseError,
    load_annotation_map,
    parse_annotation,
    parse_annotations,
    parse_io_spec,
    render_annotation,
)
from repro.annotations.model import CommandInvocation

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE

COMM_RECORD = r"""
comm {
| -1 /\ -3 => (S, [args[1]], [stdout])
| -2 /\ -3 => (S, [args[0]], [stdout])
| otherwise => (P, [args[0], args[1]], [stdout])
}
"""


def test_paper_comm_example():
    record = parse_annotation(COMM_RECORD)
    assert record.command == "comm"
    assert len(record.clauses) == 3
    assert record.parallelizability(CommandInvocation("comm", ["-1", "-3", "a", "b"])) is S
    assert record.parallelizability(CommandInvocation("comm", ["-2", "-3", "a", "b"])) is S
    assert record.parallelizability(CommandInvocation("comm", ["a", "b"])) is P


def test_comm_clause_inputs_are_ordered():
    record = parse_annotation(COMM_RECORD)
    general = record.clauses[-1].assignment
    assert [str(spec) for spec in general.inputs] == ["args[0]", "args[1]"]
    assert [str(spec) for spec in general.outputs] == ["stdout"]


def test_underscore_is_otherwise():
    record = parse_annotation("x {\n| _ => (S, [stdin], [stdout])\n}")
    assert record.parallelizability(CommandInvocation("x", ["-q"])) is S


def test_keyword_connectives():
    record = parse_annotation(
        "x {\n| -a and not -b => (P, [stdin], [stdout])\n| otherwise => (S, [stdin], [stdout])\n}"
    )
    assert record.parallelizability(CommandInvocation("x", ["-a"])) is P
    assert record.parallelizability(CommandInvocation("x", ["-a", "-b"])) is S


def test_or_connective():
    record = parse_annotation(
        "x {\n| -a \\/ -b => (P, [stdin], [stdout])\n| otherwise => (S, [stdin], [stdout])\n}"
    )
    assert record.parallelizability(CommandInvocation("x", ["-b"])) is P


def test_value_predicate():
    record = parse_annotation(
        'x {\n| value -d = "," => (P, [stdin], [stdout])\n| otherwise => (S, [stdin], [stdout])\n}'
    )
    assert record.parallelizability(CommandInvocation("x", ["-d", ","])) is P
    assert record.parallelizability(CommandInvocation("x", ["-d", ";"])) is S


def test_multiple_records():
    records = parse_annotations(COMM_RECORD + "\ncat {\n| otherwise => (S, [args[0:]], [stdout])\n}")
    assert [record.command for record in records] == ["comm", "cat"]


def test_load_annotation_map():
    mapping = load_annotation_map(COMM_RECORD)
    assert "comm" in mapping


def test_parse_io_spec_variants():
    assert parse_io_spec("stdin").kind == "stdin"
    assert parse_io_spec("args[2]").index == 2
    spec = parse_io_spec("args[1:3]")
    assert (spec.start, spec.end) == (1, 3)
    assert parse_io_spec("args[:]").start is None


def test_parse_io_spec_invalid_raises():
    with pytest.raises(AnnotationParseError):
        parse_io_spec("files[0]")


def test_missing_clause_raises():
    with pytest.raises(AnnotationParseError):
        parse_annotation("cmd { }")


def test_malformed_assignment_raises():
    with pytest.raises(AnnotationParseError):
        parse_annotation("cmd {\n| otherwise => (S, stdin, stdout)\n}")


def test_render_round_trip():
    record = parse_annotation(COMM_RECORD)
    rendered = render_annotation(record)
    reparsed = parse_annotation(rendered)
    assert len(reparsed.clauses) == len(record.clauses)
    assert reparsed.parallelizability(CommandInvocation("comm", ["a", "b"])) is P
