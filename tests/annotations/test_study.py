"""Tests for the Table 1 parallelizability study."""

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.study import (
    PAPER_TABLE1_COUNTS,
    ParallelizabilityStudy,
    standard_study,
)

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
N = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


def test_counts_match_paper_table1():
    study = standard_study()
    for (suite, parallelizability), expected in PAPER_TABLE1_COUNTS.items():
        assert study.count(suite, parallelizability) == expected


def test_suite_sizes():
    study = standard_study()
    assert study.suite_size("coreutils") == 100
    assert study.suite_size("posix") == 155


def test_side_effectful_is_largest_class():
    study = standard_study()
    for suite in study.suites():
        counts = study.counts(suite)
        assert counts[E] == max(counts.values())


def test_percentages_sum_to_hundred():
    study = standard_study()
    for suite in study.suites():
        total = sum(study.percentage(suite, cls) for cls in ParallelizabilityClass)
        assert abs(total - 100.0) < 1e-6


def test_classify_individual_commands():
    study = standard_study()
    assert study.classify("cat", "coreutils") is S
    assert study.classify("sort", "coreutils") is P
    assert study.classify("sha1sum", "coreutils") is N
    assert study.classify("whoami", "coreutils") is E
    assert study.classify("grep", "posix") is S


def test_classify_unknown_raises():
    study = standard_study()
    try:
        study.classify("not-a-command", "coreutils")
    except KeyError:
        pass
    else:
        raise AssertionError("expected KeyError")


def test_commands_in_class_sorted_and_disjoint():
    study = standard_study()
    stateless = study.commands_in_class("coreutils", S)
    pure = study.commands_in_class("coreutils", P)
    assert stateless == sorted(stateless)
    assert not set(stateless) & set(pure)


def test_no_duplicate_commands_within_a_suite():
    study = standard_study()
    for suite in study.suites():
        names = [c.command for c in study.classifications if c.suite == suite]
        assert len(names) == len(set(names))


def test_table_rows_structure():
    rows = standard_study().table_rows()
    assert len(rows) == 4
    assert rows[0]["class"] == "Stateless"
    assert rows[0]["coreutils"] == 22
    assert rows[3]["posix"] == 105


def test_format_table_contains_all_classes():
    text = standard_study().format_table()
    for label in ("Stateless", "Parallelizable Pure", "Non-parallelizable", "Side-effectful"):
        assert label in text


def test_from_suites_builder():
    study = ParallelizabilityStudy.from_suites({"mini": {S: ["a"], E: ["b", "c"]}})
    assert study.suite_size("mini") == 3
    assert study.count("mini", S) == 1
    assert study.count("mini", E) == 2
