"""Tests for the standard annotation library."""

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.library import KNOWN_AGGREGATORS, AnnotationLibrary, standard_library
from repro.annotations.model import simple_record
from repro.runtime.aggregators import AGGREGATORS

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
N = ParallelizabilityClass.NON_PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


def test_core_stateless_commands():
    library = standard_library()
    assert library.classify("grep", ["foo"]) is S
    assert library.classify("tr", ["a", "b"]) is S
    assert library.classify("cut", ["-d", " ", "-f", "1"]) is S
    assert library.classify("cat", []) is S
    assert library.classify("sed", ["s/a/b/"]) is S


def test_core_pure_commands():
    library = standard_library()
    assert library.classify("sort", ["-rn"]) is P
    assert library.classify("uniq", ["-c"]) is P
    assert library.classify("wc", ["-l"]) is P
    assert library.classify("head", ["-n", "5"]) is P
    assert library.classify("comm", ["a", "b"]) is P


def test_flags_change_class():
    library = standard_library()
    assert library.classify("cat", []) is S
    assert library.classify("cat", ["-n"]) is P
    assert library.classify("grep", ["foo"]) is S
    assert library.classify("grep", ["-c", "foo"]) is P
    assert library.classify("grep", ["-n", "foo"]) is N
    assert library.classify("sed", ["s/a/b/"]) is S
    assert library.classify("sed", ["-n", "1p"]) is E


def test_non_parallelizable_and_side_effectful():
    library = standard_library()
    assert library.classify("sha1sum", []) is N
    assert library.classify("diff", ["a", "b"]) is N
    assert library.classify("curl", ["http://x"]) is E
    assert library.classify("rm", ["-rf", "x"]) is E
    assert library.classify("awk", ["{print $1}"]) is E


def test_unknown_command_defaults_to_side_effectful():
    library = standard_library()
    assert library.classify("totally-unknown-tool", []) is E


def test_custom_usecase_commands_are_annotated():
    library = standard_library()
    for name in ("url-extract", "word-stem", "html-to-text", "lowercase", "strip-punct", "bigrams"):
        assert library.classify(name, []) is S


def test_aggregators_exist_for_pure_commands():
    library = standard_library()
    for command in ("sort", "uniq", "wc", "tac", "head", "tail"):
        aggregator = library.aggregator_for(command)
        assert aggregator is not None
        assert aggregator in AGGREGATORS


def test_known_aggregator_names_are_implemented():
    for name in KNOWN_AGGREGATORS:
        assert name in AGGREGATORS


def test_lookup_by_path_basename():
    library = standard_library()
    assert library.lookup("/usr/bin/grep") is library.lookup("grep")


def test_io_spec_for_grep():
    library = standard_library()
    inputs, outputs = library.io_spec("grep", ["foo", "f1", "f2"])
    assert [str(spec) for spec in inputs] == ["args[1:]"]
    assert [str(spec) for spec in outputs] == ["stdout"]


def test_register_and_copy_are_independent():
    library = AnnotationLibrary()
    library.register(simple_record("mytool", S))
    clone = library.copy()
    clone.register(simple_record("other", P))
    assert "mytool" in library and "mytool" in clone
    assert "other" not in library


def test_register_dsl():
    library = AnnotationLibrary()
    library.register_dsl("mytool {\n| otherwise => (P, [stdin], [stdout])\n}")
    assert library.classify("mytool", []) is P


def test_value_flags_present_for_head_and_cut():
    library = standard_library()
    assert "-n" in library.lookup("head").value_flags
    assert "-f" in library.lookup("cut").value_flags
