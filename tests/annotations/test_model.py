"""Tests for annotation records, clauses, predicates, and IO specs."""

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.model import (
    And,
    AnnotationRecord,
    Assignment,
    Clause,
    CommandInvocation,
    IOSpec,
    NoOptions,
    Not,
    OptionPresent,
    OptionValueEquals,
    Or,
    Otherwise,
    classify_invocation,
    simple_record,
)

S = ParallelizabilityClass.STATELESS
P = ParallelizabilityClass.PARALLELIZABLE_PURE
E = ParallelizabilityClass.SIDE_EFFECTFUL


def test_invocation_splits_options_and_operands():
    invocation = CommandInvocation("grep", ["-i", "-v", "pattern", "file.txt"])
    assert invocation.options == ["-i", "-v"]
    assert invocation.operands == ["pattern", "file.txt"]


def test_invocation_combined_short_flags():
    invocation = CommandInvocation("grep", ["-iv", "pattern"])
    assert invocation.has_option("-i")
    assert invocation.has_option("-v")
    assert not invocation.has_option("-c")


def test_invocation_value_flags_not_operands():
    invocation = CommandInvocation("head", ["-n", "10", "file.txt"], value_flags=("-n",))
    assert invocation.operands == ["file.txt"]


def test_invocation_dash_is_an_operand():
    invocation = CommandInvocation("comm", ["-13", "dict.txt", "-"])
    assert "-" in invocation.operands


def test_option_value():
    invocation = CommandInvocation("sort", ["-k", "2", "file"])
    assert invocation.option_value("-k") == "2"
    assert invocation.option_value("-t") is None


def test_predicates():
    invocation = CommandInvocation("cmd", ["-a", "-b", "x"])
    assert OptionPresent("-a").matches(invocation)
    assert not OptionPresent("-z").matches(invocation)
    assert Not(OptionPresent("-z")).matches(invocation)
    assert And(OptionPresent("-a"), OptionPresent("-b")).matches(invocation)
    assert Or(OptionPresent("-z"), OptionPresent("-b")).matches(invocation)
    assert Otherwise().matches(invocation)
    assert not NoOptions().matches(invocation)
    assert NoOptions().matches(CommandInvocation("cmd", ["x"]))


def test_option_value_equals_predicate():
    invocation = CommandInvocation("sort", ["-t", ",", "file"])
    assert OptionValueEquals("-t", ",").matches(invocation)
    assert not OptionValueEquals("-t", ";").matches(invocation)


def test_iospec_resolution():
    invocation = CommandInvocation("comm", ["-1", "a.txt", "b.txt"])
    assert IOSpec.arg(0).resolve(invocation) == ["a.txt"]
    assert IOSpec.arg(1).resolve(invocation) == ["b.txt"]
    assert IOSpec.args_slice(1).resolve(invocation) == ["b.txt"]
    assert IOSpec.args_slice(0).resolve(invocation) == ["a.txt", "b.txt"]
    assert IOSpec.stdin().resolve(invocation) == ["stdin"]
    assert IOSpec.stdout().resolve(invocation) == ["stdout"]


def test_iospec_out_of_range_is_empty():
    invocation = CommandInvocation("sort", [])
    assert IOSpec.arg(2).resolve(invocation) == []


def test_iospec_str():
    assert str(IOSpec.arg(1)) == "args[1]"
    assert str(IOSpec.args_slice(1)) == "args[1:]"
    assert str(IOSpec.stdin()) == "stdin"


def test_first_matching_clause_wins():
    record = AnnotationRecord(
        "cmd",
        [
            Clause(OptionPresent("-x"), Assignment(P)),
            Clause(Otherwise(), Assignment(S)),
        ],
    )
    assert record.parallelizability(CommandInvocation("cmd", ["-x"])) is P
    assert record.parallelizability(CommandInvocation("cmd", [])) is S


def test_no_matching_clause_is_conservative():
    record = AnnotationRecord("cmd", [Clause(OptionPresent("-x"), Assignment(S))])
    assert record.parallelizability(CommandInvocation("cmd", [])) is E


def test_classify_invocation_without_record_is_side_effectful():
    assert classify_invocation(None, CommandInvocation("mystery", [])) is E


def test_simple_record_defaults():
    record = simple_record("tr", S)
    assignment = record.classify(CommandInvocation("tr", ["a", "b"]))
    assert assignment.parallelizability is S
    assert [spec.kind for spec in assignment.inputs] == ["stdin"]
    assert [spec.kind for spec in assignment.outputs] == ["stdout"]


def test_record_invocation_carries_value_flags():
    record = simple_record("head", P)
    record.value_flags = ("-n",)
    invocation = record.invocation("head", ["-n", "5", "file"])
    assert invocation.operands == ["file"]
