"""docs/RESILIENCE.md is executable documentation: every example must run."""

import doctest
import os

DOC = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "RESILIENCE.md")


def test_resilience_doc_examples_run():
    results = doctest.testfile(
        DOC,
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0
    assert results.failed == 0
