"""The retry-then-degrade ladder, tested directly against a real tracer."""

import pytest

from repro.api.config import ResilienceConfig
from repro.obs.tracer import Tracer
from repro.resilience.supervisor import Supervisor
from repro.runtime.executor import ExecutionError


def fast(**overrides):
    """A ladder whose backoff is effectively instant (unit-test speed)."""
    overrides.setdefault("max_retries", 2)
    overrides.setdefault("retry_base_seconds", 0.0)
    overrides.setdefault("retry_jitter", 0.0)
    return ResilienceConfig(**overrides)


def test_retry_then_success_counts_and_traces():
    tracer = Tracer()
    supervisor = Supervisor(fast(max_retries=3), tracer)
    attempts = []

    def attempt():
        attempts.append(1)
        if len(attempts) < 3:
            raise ExecutionError("worker died")
        return "ok"

    assert supervisor.run("region:0", attempt) == "ok"
    assert supervisor.runs_retried == 2
    assert supervisor.degraded_runs == 0
    retry_spans = [span for span in tracer.spans if span.name == "resilience:retry"]
    assert len(retry_spans) == 2
    assert retry_spans[0].attributes["target"] == "region:0"
    assert "worker died" in retry_spans[0].attributes["error"]


def test_exhausted_retries_degrade():
    tracer = Tracer()
    supervisor = Supervisor(fast(max_retries=1, degrade=True), tracer)

    def attempt():
        raise ExecutionError("permanently broken")

    assert supervisor.run("region:1", attempt, degrade=lambda: "fallback") == "fallback"
    assert supervisor.runs_retried == 1
    assert supervisor.degraded_runs == 1
    degrade_spans = [span for span in tracer.spans if span.name == "resilience:degrade"]
    assert len(degrade_spans) == 1
    assert degrade_spans[0].attributes["retries"] == 1


def test_no_degrade_reraises_the_typed_error():
    supervisor = Supervisor(fast(max_retries=1, degrade=False))
    with pytest.raises(ExecutionError, match="permanently broken"):
        supervisor.run(
            "region:2",
            lambda: (_ for _ in ()).throw(ExecutionError("permanently broken")),
            degrade=lambda: "never reached",
        )


def test_missing_degrade_callable_reraises_even_when_enabled():
    supervisor = Supervisor(fast(max_retries=0, degrade=True))
    with pytest.raises(OSError):
        supervisor.run("region:3", lambda: (_ for _ in ()).throw(OSError("disk full")))


def test_non_retryable_errors_propagate_immediately():
    supervisor = Supervisor(fast(max_retries=5, degrade=True))
    calls = []

    def attempt():
        calls.append(1)
        raise ValueError("a bug, not an outage")

    with pytest.raises(ValueError):
        supervisor.run("region:4", attempt, degrade=lambda: "nope")
    assert len(calls) == 1
    assert supervisor.runs_retried == 0


def test_deadline_refuses_retries_that_would_start_too_late():
    # deadline 0.0 is unbounded; a tiny positive deadline with a large
    # backoff means the very first retry is refused and the ladder moves
    # straight to degradation — the "typed error within deadline" contract.
    config = ResilienceConfig(
        max_retries=100,
        degrade=True,
        retry_base_seconds=10.0,
        retry_jitter=0.0,
        deadline_seconds=0.001,
    )
    supervisor = Supervisor(config)
    result = supervisor.run(
        "region:5",
        lambda: (_ for _ in ()).throw(ExecutionError("down")),
        degrade=lambda: "degraded",
    )
    assert result == "degraded"
    assert supervisor.runs_retried == 0


def test_degrade_errors_are_terminal():
    supervisor = Supervisor(fast(max_retries=0, degrade=True))

    def broken_fallback():
        raise ValueError("the interpreter itself failed")

    with pytest.raises(ValueError, match="interpreter itself"):
        supervisor.run(
            "region:6",
            lambda: (_ for _ in ()).throw(ExecutionError("down")),
            degrade=broken_fallback,
        )
