"""The fault matrix: injected faults × backends → byte-identity or typed error.

Each test arms a deterministic :class:`FaultPlan` through the public config
surface and asserts the resilience contract end to end:

* with degradation on, a run whose parallel plan keeps failing (killed pool
  worker, exhausted spill disk, poisoned channel) completes **byte-identical**
  to the sequential interpreter oracle, with ``degraded_runs`` visible in the
  metrics and ``resilience:*`` spans in the trace;
* with degradation off, the same fault surfaces as a *typed* error
  (``ExecutionError``/``OSError``) within the configured deadline — never a
  hang, never a garbled partial result.
"""

import os
import signal
import time

import pytest

from repro.api import Pash, PashConfig, ResilienceConfig
from repro.obs.tracer import Tracer
from repro.resilience import fault
from repro.resilience.fault import (
    CHANNEL_READ,
    CLUSTER_HEARTBEAT,
    POOL_WORKER_EXEC,
    SPILL_WRITE,
    FaultSpec,
)
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem
from repro.workloads.oneliners import get_one_liner

WIDTH = 2
LINES = 120

#: Table-2-class workload driving every matrix cell.
BENCHMARK = get_one_liner("sort")


@pytest.fixture(autouse=True)
def _clean_injector():
    fault.clear()
    yield
    fault.clear()


DATASET = BENCHMARK.correctness_dataset(WIDTH, LINES)


def fresh_environment():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {name: list(lines) for name, lines in DATASET.items()}
        )
    )


def produced(result_or_files):
    """A run's *output* files (the dataset's input files stripped)."""
    files = getattr(result_or_files, "files", result_or_files)
    return {name: lines for name, lines in files.items() if name not in DATASET}


def oracle():
    """The sequential interpreter's output: the byte-identity reference."""
    compiled = Pash.compile(BENCHMARK.script_for_width(WIDTH), PashConfig.paper_default(WIDTH))
    result = compiled.execute(backend="interpreter", environment=fresh_environment())
    output = produced(result)
    assert any(lines for lines in output.values())  # a vacuous oracle proves nothing
    return output


ORACLE_FILES = oracle()


def armed_config(*specs, **overrides):
    overrides.setdefault("max_retries", 1)
    overrides.setdefault("degrade", True)
    overrides.setdefault("retry_base_seconds", 0.0)
    overrides.setdefault("retry_jitter", 0.0)
    resilience = ResilienceConfig(faults=tuple(specs), **overrides)
    return PashConfig.paper_default(WIDTH, resilience=resilience)


def run_supervised(config, backend, **options):
    tracer = Tracer()
    compiled = Pash(config, tracer=tracer).compile(BENCHMARK.script_for_width(WIDTH))
    result = compiled.execute(backend=backend, environment=fresh_environment(), **options)
    return result, tracer


# ---------------------------------------------------------------------------
# parallel backend
# ---------------------------------------------------------------------------


def test_parallel_degrades_past_killed_workers():
    """SIGKILLed pool worker mid-run → retry → interpreter, byte-identical."""
    config = armed_config(FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0))
    result, tracer = run_supervised(config, "parallel")
    assert produced(result) == ORACLE_FILES
    assert result.metrics.degraded_runs > 0
    assert result.metrics.runs_retried > 0
    names = {span.name for span in tracer.spans}
    assert "resilience:retry" in names
    assert "resilience:degrade" in names


def test_parallel_degrades_past_spill_enospc(tmp_path):
    """Injected ENOSPC on every spill write → interpreter, byte-identical."""
    from repro.api.config import StreamingConfig

    config = armed_config(
        FaultSpec(point=SPILL_WRITE, mode="error", errno_name="ENOSPC", max_fires=0)
    ).replace(
        streaming=StreamingConfig(spill_threshold=1, spill_directory=str(tmp_path))
    )
    result, _ = run_supervised(config, "parallel")
    assert produced(result) == ORACLE_FILES
    assert result.metrics.degraded_runs > 0


def test_parallel_channel_poison_after_bytes_degrades():
    """kill-after-N-bytes semantics on the channel plane (error mode)."""
    config = armed_config(
        FaultSpec(point=CHANNEL_READ, mode="error", errno_name="EIO", after_bytes=64, max_fires=0)
    )
    result, _ = run_supervised(config, "parallel")
    assert produced(result) == ORACLE_FILES
    assert result.metrics.degraded_runs > 0


def test_parallel_no_degrade_is_a_typed_error_within_deadline():
    config = armed_config(
        FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0),
        max_retries=1,
        degrade=False,
        deadline_seconds=60.0,
    )
    started = time.monotonic()
    with pytest.raises((ExecutionError, OSError)):
        run_supervised(config, "parallel")
    assert time.monotonic() - started < 60.0


# ---------------------------------------------------------------------------
# jit backend
# ---------------------------------------------------------------------------


def run_jit(config):
    from repro.api import run

    tracer = Tracer()
    environment = fresh_environment()
    result = run(
        BENCHMARK.script_for_width(WIDTH),
        config=config,
        backend="jit",
        environment=environment,
        tracer=tracer,
    )
    return result, tracer


def test_jit_regions_degrade_past_killed_workers():
    config = armed_config(FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0))
    result, tracer = run_jit(config)
    assert produced(result) == ORACLE_FILES
    assert result.metrics.degraded_runs > 0
    assert any(span.name == "resilience:degrade" for span in tracer.spans)


def test_jit_regions_degrade_past_spill_enospc(tmp_path):
    from repro.api.config import StreamingConfig

    config = armed_config(
        FaultSpec(point=SPILL_WRITE, mode="error", errno_name="ENOSPC", max_fires=0)
    ).replace(
        streaming=StreamingConfig(spill_threshold=1, spill_directory=str(tmp_path))
    )
    result, _ = run_jit(config)
    assert produced(result) == ORACLE_FILES
    assert result.metrics.degraded_runs > 0


def test_jit_no_degrade_is_a_typed_error():
    config = armed_config(
        FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0),
        degrade=False,
        deadline_seconds=60.0,
    )
    with pytest.raises((ExecutionError, OSError)):
        run_jit(config)


# ---------------------------------------------------------------------------
# service backend
# ---------------------------------------------------------------------------


@pytest.fixture
def service_daemon():
    from repro.service import PashServiceDaemon, ServiceOptions

    daemons = []

    def factory(config):
        daemon = PashServiceDaemon(
            ServiceOptions(listen="127.0.0.1:0", executors=1, config=config)
        )
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.shutdown()


def submit(daemon, backend=None):
    from repro.service import ServiceClient

    dataset = BENCHMARK.correctness_dataset(WIDTH, LINES)
    client = ServiceClient(daemon.endpoint, timeout=60.0)
    return client.submit(
        BENCHMARK.script_for_width(WIDTH),
        files={name: list(lines) for name, lines in dataset.items()},
        backend=backend,
        timeout=60.0,
    )


def test_service_retries_a_transient_executor_fault(service_daemon):
    from repro.resilience.fault import SERVICE_EXECUTOR

    config = armed_config(
        FaultSpec(point=SERVICE_EXECUTOR, mode="error", errno_name="EIO", max_fires=1),
        max_retries=2,
    ).replace(backend="parallel")
    job = submit(service_daemon(config))
    assert job["state"] == "done"
    assert produced(job["files"]) == ORACLE_FILES
    assert job["report"]["metrics"]["runs_retried"] >= 1


def test_service_degrades_a_persistent_executor_fault(service_daemon):
    from repro.resilience.fault import SERVICE_EXECUTOR

    config = armed_config(
        FaultSpec(point=SERVICE_EXECUTOR, mode="error", errno_name="EIO", max_fires=0),
        max_retries=1,
    ).replace(backend="parallel")
    job = submit(service_daemon(config))
    assert job["state"] == "done"
    assert produced(job["files"]) == ORACLE_FILES
    assert job["report"]["metrics"]["degraded_runs"] >= 1


def test_service_degrades_killed_pool_workers(service_daemon):
    """The acceptance cell: worker SIGKILL on the service tier's jit jobs."""
    config = armed_config(
        FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0)
    ).replace(backend="jit")
    job = submit(service_daemon(config), backend="jit")
    assert job["state"] == "done"
    assert produced(job["files"]) == ORACLE_FILES
    assert job["report"]["metrics"]["degraded_runs"] >= 1


def test_service_no_degrade_fails_typed_not_hung(service_daemon):
    from repro.resilience.fault import SERVICE_EXECUTOR

    config = armed_config(
        FaultSpec(point=SERVICE_EXECUTOR, mode="error", errno_name="EIO", max_fires=0),
        max_retries=1,
        degrade=False,
        deadline_seconds=60.0,
    ).replace(backend="parallel")
    job = submit(service_daemon(config))
    assert job["state"] == "failed"
    assert "injected fault" in job["error"]


# ---------------------------------------------------------------------------
# cluster backend
# ---------------------------------------------------------------------------


def test_cluster_tolerates_dropped_heartbeats(monkeypatch):
    """A worker that loses a few heartbeat frames keeps its tasks: dropped
    beats stay far under the 10s liveness timeout, and the run's bytes are
    unaffected (the fault plan reaches exec'd workers via PASH_FAULTS)."""
    import json

    plan = {
        "seed": 1,
        "faults": [{"point": CLUSTER_HEARTBEAT, "mode": "drop", "max_fires": 2}],
    }
    monkeypatch.setenv(fault.ENV_FAULTS, json.dumps(plan))
    config = PashConfig.paper_default(WIDTH)
    compiled = Pash(config).compile(BENCHMARK.script_for_width(WIDTH))
    result = compiled.execute(backend="cluster", environment=fresh_environment())
    assert produced(result) == ORACLE_FILES


# ---------------------------------------------------------------------------
# pool self-healing
# ---------------------------------------------------------------------------


def test_ensure_idle_replaces_dead_workers():
    from repro.engine.pool import WorkerPool

    pool = WorkerPool()
    try:
        pool.ensure_idle(2)
        victim_pid = pool.worker_pids()[0]
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(
                worker.process.pid == victim_pid and worker.process.is_alive()
                for worker in list(pool._idle)
            ):
                break
            time.sleep(0.05)
        pool.ensure_idle(2)
        assert pool.workers_replaced == 1
        assert pool.stats()["workers_replaced"] == 1
        pids = pool.worker_pids()
        assert len(pids) >= 2
        assert victim_pid not in pids
    finally:
        pool.shutdown()
