"""ResilienceConfig: defaults, round trips, CLI engagement, plan threading."""

import argparse

import pytest

from repro.api import PashConfig, ResilienceConfig
from repro.jit.cache import config_digest
from repro.resilience.fault import SPILL_WRITE, FaultSpec


def test_defaults_are_inactive():
    section = ResilienceConfig()
    assert not section.active
    assert section.fault_plan() is None
    assert PashConfig().resilience == section


def test_either_knob_activates():
    assert ResilienceConfig(max_retries=1).active
    assert ResilienceConfig(degrade=True).active
    assert not ResilienceConfig(max_retries=0, degrade=False).active


def test_validation():
    with pytest.raises(ValueError):
        ResilienceConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ResilienceConfig(deadline_seconds=-0.5)


def test_dict_round_trip_with_faults():
    section = ResilienceConfig(
        max_retries=3,
        degrade=True,
        fault_seed=9,
        faults=(FaultSpec(point=SPILL_WRITE),),
    )
    clone = ResilienceConfig.coerce(section.to_dict())
    assert clone == section
    with pytest.raises(ValueError, match="unknown ResilienceConfig fields"):
        ResilienceConfig.coerce({"max_retries": 1, "bogus": True})


def test_pash_config_round_trip_and_hashability():
    config = PashConfig(
        resilience=ResilienceConfig(
            max_retries=2, degrade=True, faults=(FaultSpec(point=SPILL_WRITE),)
        )
    )
    hash(config)  # frozen specs keep the whole config hashable
    clone = PashConfig.from_dict(config.to_dict())
    assert clone.resilience == config.resilience


def test_retry_policy_reflects_the_section():
    policy = ResilienceConfig(
        max_retries=4, retry_base_seconds=0.2, deadline_seconds=7.0
    ).retry_policy()
    assert policy.max_retries == 4
    assert policy.base_seconds == 0.2
    assert policy.deadline_seconds == 7.0


def test_fault_plans_are_fresh_per_call():
    section = ResilienceConfig(faults=(FaultSpec(point=SPILL_WRITE),), fault_seed=2)
    first, second = section.fault_plan(), section.fault_plan()
    assert first is not second
    with pytest.raises(OSError):
        first.fire(SPILL_WRITE)
    with pytest.raises(OSError):  # pristine counters: the second plan re-arms
        second.fire(SPILL_WRITE)


def test_scheduler_and_cluster_options_carry_the_plan():
    config = PashConfig(
        resilience=ResilienceConfig(faults=(FaultSpec(point=SPILL_WRITE),))
    )
    assert config.scheduler_options().fault_plan is not None
    assert config.cluster_options().fault_plan is not None
    bare = PashConfig()
    assert bare.scheduler_options().fault_plan is None
    assert bare.cluster_options().fault_plan is None


def test_resilience_does_not_fragment_the_plan_cache():
    base = PashConfig()
    armed = PashConfig(resilience=ResilienceConfig(max_retries=3, degrade=True))
    assert config_digest(base) == config_digest(armed)


# ---------------------------------------------------------------------------
# CLI engagement (--max-retries / --no-degrade / --fault-plan)
# ---------------------------------------------------------------------------


def _args(**values):
    return argparse.Namespace(**values)


def test_cli_unengaged_by_default():
    section = ResilienceConfig.from_cli_args(_args())
    assert section == ResilienceConfig()


def test_cli_max_retries_engages_and_defaults_degrade_on():
    section = ResilienceConfig.from_cli_args(_args(max_retries=3))
    assert section.max_retries == 3
    assert section.degrade is True


def test_cli_no_degrade_opts_out():
    section = ResilienceConfig.from_cli_args(_args(max_retries=1, no_degrade=True))
    assert section.max_retries == 1
    assert section.degrade is False


def test_cli_fault_plan_engages_and_loads(tmp_path):
    import json

    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps({"seed": 42, "faults": [{"point": SPILL_WRITE, "mode": "error"}]})
    )
    section = ResilienceConfig.from_cli_args(_args(fault_plan=str(path)))
    assert section.fault_seed == 42
    assert section.faults == (FaultSpec(point=SPILL_WRITE),)
    assert section.degrade is True
