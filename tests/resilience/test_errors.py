"""ResourceExhausted: typed capacity failures that survive pickling."""

import errno
import pickle

import pytest

from repro.resilience.errors import (
    RESOURCE_ERRNOS,
    ResourceExhausted,
    wrap_capacity_error,
)


def test_capacity_errnos_are_wrapped():
    for code in sorted(RESOURCE_ERRNOS):
        original = OSError(code, "boom")
        wrapped = wrap_capacity_error(original, "spill:write", "/tmp/x", 4096)
        assert isinstance(wrapped, ResourceExhausted)
        assert wrapped.errno == code
        assert wrapped.operation == "spill:write"
        assert wrapped.path == "/tmp/x"
        assert wrapped.byte_count == 4096


def test_non_capacity_errors_pass_through_unchanged():
    original = OSError(errno.EACCES, "permission denied")
    assert wrap_capacity_error(original, "spill:write", "/tmp/x", 1) is original
    exhausted = ResourceExhausted("spill:write", "/tmp/x", 1, errno.ENOSPC)
    # Already typed: wrapping again is the identity.
    assert wrap_capacity_error(exhausted, "other", "/y", 2) is exhausted


def test_is_an_oserror_with_a_useful_message():
    error = ResourceExhausted("spill:write", "/data/spool", 1 << 20, errno.ENOSPC)
    assert isinstance(error, OSError)
    text = str(error)
    assert "spill:write" in text
    assert "/data/spool" in text


def test_pickle_round_trip_preserves_typed_fields():
    error = ResourceExhausted(
        "eager:spill-write", "/spool", 777, errno.EMFILE, detail="too many fds"
    )
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, ResourceExhausted)
    assert clone.operation == "eager:spill-write"
    assert clone.path == "/spool"
    assert clone.byte_count == 777
    assert clone.errno == errno.EMFILE


def test_catchable_as_oserror_by_existing_handlers():
    with pytest.raises(OSError):
        raise ResourceExhausted("spill:write", None, 0, errno.ENOSPC)
