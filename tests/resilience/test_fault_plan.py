"""FaultSpec/FaultPlan semantics: validation, determinism, transport."""

import errno
import json
import pickle

import pytest

from repro.resilience import fault
from repro.resilience.fault import (
    CHANNEL_READ,
    CLUSTER_HEARTBEAT,
    ENV_FAULTS,
    FAULT_POINTS,
    SPILL_WRITE,
    FaultPlan,
    FaultSpec,
    load_fault_file,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    fault.clear()
    yield
    fault.clear()


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


def test_spec_rejects_unknown_point():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultSpec(point="no:such-point")


def test_spec_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultSpec(point=SPILL_WRITE, mode="explode")


def test_spec_rejects_unknown_errno():
    with pytest.raises(ValueError, match="unknown errno name"):
        FaultSpec(point=SPILL_WRITE, errno_name="ENOTANERRNO")


def test_spec_rejects_bad_probability():
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(point=SPILL_WRITE, probability=1.5)


def test_spec_dict_round_trip_rejects_unknown_fields():
    spec = FaultSpec(point=CHANNEL_READ, mode="kill", after_bytes=512)
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown FaultSpec fields"):
        FaultSpec.from_dict({"point": SPILL_WRITE, "color": "red"})


# ---------------------------------------------------------------------------
# Plan behaviour
# ---------------------------------------------------------------------------


def test_error_mode_raises_typed_oserror_once():
    plan = FaultPlan([FaultSpec(point=SPILL_WRITE, errno_name="ENOSPC")])
    with pytest.raises(OSError) as caught:
        plan.fire(SPILL_WRITE)
    assert caught.value.errno == errno.ENOSPC
    # max_fires=1 (the default): the second passage is clean.
    assert plan.fire(SPILL_WRITE) is False
    assert plan.fired == 1
    assert plan.fires_at(SPILL_WRITE) == 1


def test_after_bytes_counts_across_calls():
    plan = FaultPlan([FaultSpec(point=CHANNEL_READ, after_bytes=100)])
    assert plan.fire(CHANNEL_READ, nbytes=60) is False
    with pytest.raises(OSError):
        plan.fire(CHANNEL_READ, nbytes=60)  # cumulative 120 >= 100


def test_drop_mode_returns_true():
    plan = FaultPlan([FaultSpec(point=CLUSTER_HEARTBEAT, mode="drop", max_fires=2)])
    assert plan.fire(CLUSTER_HEARTBEAT) is True
    assert plan.fire(CLUSTER_HEARTBEAT) is True
    assert plan.fire(CLUSTER_HEARTBEAT) is False


def test_probability_is_deterministic_under_seed():
    def trace(seed):
        plan = FaultPlan(
            [FaultSpec(point=CLUSTER_HEARTBEAT, mode="drop", max_fires=0, probability=0.5)],
            seed=seed,
        )
        return [plan.fire(CLUSTER_HEARTBEAT) for _ in range(64)]

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)  # astronomically unlikely to collide


def test_unrelated_point_is_free():
    plan = FaultPlan([FaultSpec(point=SPILL_WRITE)])
    assert plan.fire(CHANNEL_READ, nbytes=1000) is False
    assert plan.hits == 1
    assert plan.fired == 0


def test_pickle_resets_live_state():
    plan = FaultPlan([FaultSpec(point=SPILL_WRITE)], seed=3)
    with pytest.raises(OSError):
        plan.fire(SPILL_WRITE)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == 3
    assert clone.faults == plan.faults
    # The clone re-arms: fault state is per-process.
    with pytest.raises(OSError):
        clone.fire(SPILL_WRITE)


def test_plan_dict_round_trip_and_file_loading(tmp_path):
    plan = FaultPlan([FaultSpec(point=SPILL_WRITE, mode="delay", delay_seconds=0.0)], seed=11)
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.seed == 11 and clone.faults == plan.faults
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(plan.to_dict()))
    loaded = load_fault_file(str(path))
    assert loaded.faults == plan.faults
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"seed": 1, "chaos": True})


# ---------------------------------------------------------------------------
# The process-global injector
# ---------------------------------------------------------------------------


def test_global_fire_is_inert_without_a_plan():
    assert fault.active() is None
    for point in FAULT_POINTS:
        assert fault.fire(point, nbytes=123) is False


def test_install_fire_clear():
    plan = FaultPlan([FaultSpec(point=SPILL_WRITE)])
    fault.install(plan)
    with pytest.raises(OSError):
        fault.fire(SPILL_WRITE)
    fault.clear()
    assert fault.fire(SPILL_WRITE) is False
    assert plan.hits == 1


def test_install_from_environ():
    plan = FaultPlan([FaultSpec(point=CLUSTER_HEARTBEAT, mode="drop")], seed=5)
    environ = {ENV_FAULTS: json.dumps(plan.to_dict())}
    installed = fault.install_from_environ(environ)
    assert installed is not None and fault.active() is installed
    assert installed.seed == 5
    assert fault.install_from_environ({}) is None
