"""RetryPolicy math and the shared retry_call loop (no real sleeping)."""

import random

import pytest

from repro.resilience.retry import RetryPolicy, retry_call


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_seconds=0.1, max_seconds=0.8, multiplier=2.0, jitter=0.0)
    delays = [policy.backoff_seconds(n) for n in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.8, 0.8]


def test_jitter_stays_within_band_and_is_seeded():
    policy = RetryPolicy(base_seconds=1.0, max_seconds=1.0, jitter=0.5)
    draws = [policy.backoff_seconds(0, random.Random(13)) for _ in range(10)]
    assert all(0.5 <= delay <= 1.5 for delay in draws)
    assert policy.backoff_seconds(0, random.Random(13)) == draws[0]


def test_allows_retry_bounds_count_and_deadline():
    policy = RetryPolicy(max_retries=2, deadline_seconds=10.0)
    assert policy.allows_retry(0, 1.0)
    assert policy.allows_retry(1, 1.0)
    assert not policy.allows_retry(2, 1.0)  # count exhausted
    assert not policy.allows_retry(0, 10.0)  # would start past the deadline


def test_none_retries_means_deadline_only():
    policy = RetryPolicy(max_retries=None, deadline_seconds=5.0)
    assert policy.allows_retry(1000, 4.9)
    assert not policy.allows_retry(0, 5.0)


def test_retry_call_recovers_and_spaces_attempts():
    attempts = []
    sleeps = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("transient")
        return "done"

    policy = RetryPolicy(max_retries=5, base_seconds=0.1, jitter=0.0)
    result = retry_call(
        flaky, policy, sleep=sleeps.append, monotonic=lambda: 0.0
    )
    assert result == "done"
    assert len(attempts) == 3
    assert sleeps == [0.1, 0.2]


def test_retry_call_reraises_when_exhausted():
    policy = RetryPolicy(max_retries=2, base_seconds=0.0, jitter=0.0)
    calls = []

    def always_fails():
        calls.append(1)
        raise OSError("still down")

    with pytest.raises(OSError, match="still down"):
        retry_call(always_fails, policy, sleep=lambda _s: None, monotonic=lambda: 0.0)
    assert len(calls) == 3  # first attempt + 2 retries


def test_retry_call_predicate_filters_errors():
    def fails_typed():
        raise ValueError("not retryable by predicate")

    policy = RetryPolicy(max_retries=5, base_seconds=0.0)
    with pytest.raises(ValueError):
        retry_call(
            fails_typed,
            policy,
            retryable=lambda error: isinstance(error, OSError),
            sleep=lambda _s: None,
        )


def test_retry_call_refuses_past_deadline():
    clock = iter([0.0, 100.0, 200.0])
    policy = RetryPolicy(max_retries=None, base_seconds=0.0, deadline_seconds=1.0)
    calls = []

    def always_fails():
        calls.append(1)
        raise OSError("down")

    with pytest.raises(OSError):
        retry_call(
            always_fails, policy, sleep=lambda _s: None, monotonic=lambda: next(clock)
        )
    assert len(calls) == 1  # the deadline refused any retry


def test_on_retry_observes_each_backoff():
    seen = []

    def flaky():
        if len(seen) < 2:
            raise OSError("flap")
        return 1

    policy = RetryPolicy(max_retries=5, base_seconds=0.25, jitter=0.0)
    retry_call(
        flaky,
        policy,
        sleep=lambda _s: None,
        monotonic=lambda: 0.0,
        on_retry=lambda n, exc, delay: seen.append((n, delay)),
    )
    assert seen == [(0, 0.25), (1, 0.5)]
