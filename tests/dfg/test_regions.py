"""Tests for parallelizable-region detection (§5.1)."""

from repro.dfg.regions import find_parallelizable_regions, loop_nesting_depth
from repro.shell.ast_nodes import Command, Pipeline
from repro.shell.parser import parse


def candidates(source):
    return find_parallelizable_regions(parse(source))


def test_single_pipeline_is_one_region():
    found = candidates("cat f | grep x | sort")
    assert len(found) == 1
    assert isinstance(found[0].node, Pipeline)


def test_single_command_is_a_region():
    found = candidates("sort f")
    assert len(found) == 1
    assert isinstance(found[0].node, Command)


def test_andor_is_a_barrier():
    found = candidates("cat f1 f2 | grep foo > f3 && sort f3")
    assert len(found) == 2
    assert isinstance(found[0].node, Pipeline)
    assert isinstance(found[1].node, Command)


def test_sequence_produces_one_region_per_statement():
    found = candidates("cat a | sort\nwc -l b\ngrep x c")
    assert len(found) == 3


def test_background_regions_are_marked():
    found = candidates("sort big.txt &")
    assert len(found) == 1
    assert found[0].background


def test_for_loop_body_is_scanned():
    found = candidates("for y in a b; do cat $y | grep x; done")
    assert len(found) == 1
    assert loop_nesting_depth(found[0]) == 1


def test_nested_loops_increase_depth():
    found = candidates("for a in 1; do for b in 2; do cat $a$b | wc -l; done; done")
    assert len(found) == 1
    assert loop_nesting_depth(found[0]) == 2


def test_if_branches_are_scanned_separately():
    found = candidates("if true; then cat a | sort; else cat b | sort; fi")
    # condition is control logic; then/else bodies produce one region each
    assert len(found) == 2


def test_while_condition_not_a_region():
    found = candidates("while test -f lock; do cat a | wc -l; done")
    assert len(found) == 1


def test_subshell_body_is_scanned():
    found = candidates("( cat a | sort )")
    assert len(found) == 1


def test_ordering_matches_program_order():
    found = candidates("grep a f; grep b f; grep c f")
    patterns = [c.node.argument_words[0].literal_text() for c in found]
    assert patterns == ["a", "b", "c"]


def test_commands_property_lists_pipeline_members():
    found = candidates("cat f | grep x | sort")
    assert [command.name for command in found[0].commands] == ["cat", "grep", "sort"]
