"""Tests for the DFG container: structure, ordering, validation."""

import pytest

from repro.dfg.edges import EdgeKind
from repro.dfg.graph import DataflowGraph, GraphError, count_processes, merge_graphs
from repro.dfg.nodes import CatNode, CommandNode


def simple_chain():
    """in.txt -> grep -> sort -> stdout"""
    graph = DataflowGraph()
    grep = graph.add_node(CommandNode(name="grep", arguments=["foo"]))
    sort = graph.add_node(CommandNode(name="sort"))
    source = graph.add_edge(kind=EdgeKind.FILE, name="in.txt")
    graph.attach_input(grep, source)
    graph.connect(grep, sort)
    sink = graph.add_edge(kind=EdgeKind.STDOUT, name="stdout")
    graph.attach_output(sort, sink)
    return graph, grep, sort


def test_add_node_assigns_ids():
    graph = DataflowGraph()
    first = graph.add_node(CommandNode(name="a"))
    second = graph.add_node(CommandNode(name="b"))
    assert first.node_id != second.node_id
    assert len(graph) == 2


def test_connect_wires_both_endpoints():
    graph, grep, sort = simple_chain()
    edge = graph.edge(grep.outputs[0])
    assert edge.source == grep.node_id
    assert edge.target == sort.node_id
    assert graph.successors(grep) == [sort]
    assert graph.predecessors(sort) == [grep]


def test_input_and_output_edges():
    graph, grep, sort = simple_chain()
    assert [edge.name for edge in graph.input_edges()] == ["in.txt"]
    assert [edge.name for edge in graph.output_edges()] == ["stdout"]


def test_source_and_sink_nodes():
    graph, grep, sort = simple_chain()
    assert graph.source_nodes() == [grep]
    assert graph.sink_nodes() == [sort]


def test_topological_order():
    graph, grep, sort = simple_chain()
    order = [node.name for node in graph.topological_order()]
    assert order == ["grep", "sort"]


def test_cycle_detection():
    graph, grep, sort = simple_chain()
    # Introduce a back edge sort -> grep.
    graph.connect(sort, grep)
    with pytest.raises(GraphError):
        graph.topological_order()


def test_validate_accepts_well_formed_graph():
    graph, _, _ = simple_chain()
    graph.validate()


def test_validate_rejects_inconsistent_edge():
    graph, grep, sort = simple_chain()
    graph.edge(grep.outputs[0]).target = 999
    with pytest.raises(GraphError):
        graph.validate()


def test_attach_input_rejects_consumed_edge():
    graph, grep, sort = simple_chain()
    edge = graph.edge(grep.inputs[0])
    with pytest.raises(GraphError):
        graph.attach_input(sort, edge)


def test_remove_edge_detaches_endpoints():
    graph, grep, sort = simple_chain()
    edge_id = grep.outputs[0]
    graph.remove_edge(edge_id)
    assert edge_id not in graph.edges
    assert edge_id not in grep.outputs
    assert edge_id not in sort.inputs


def test_remove_node_detaches_edges():
    graph, grep, sort = simple_chain()
    graph.remove_node(sort.node_id)
    assert sort.node_id not in graph.nodes
    assert graph.edge(grep.outputs[0]).target is None


def test_describe_lists_nodes():
    graph, _, _ = simple_chain()
    text = graph.describe()
    assert "grep foo" in text and "sort" in text


def test_copy_is_deep():
    graph, grep, _ = simple_chain()
    clone = graph.copy()
    clone.nodes[grep.node_id].arguments.append("-v")
    assert graph.nodes[grep.node_id].arguments == ["foo"]


def test_count_processes():
    graph, _, _ = simple_chain()
    assert count_processes(graph) == 2


def test_merge_graphs_disjoint_union():
    first, _, _ = simple_chain()
    second, _, _ = simple_chain()
    merged = merge_graphs([first, second])
    assert len(merged.nodes) == 4
    assert len(merged.edges) == len(first.edges) + len(second.edges)
    merged.validate()


def test_nodes_of_kind():
    graph, _, _ = simple_chain()
    graph.add_node(CatNode())
    assert len(graph.nodes_of_kind("command")) == 2
    assert len(graph.nodes_of_kind("cat")) == 1
