"""Tests for AST → DFG translation."""

import pytest

from repro.annotations.classes import ParallelizabilityClass
from repro.dfg.builder import DFGBuilder, UntranslatableRegion, translate_script
from repro.dfg.edges import EdgeKind
from repro.dfg.nodes import CommandNode
from repro.shell.expansion import ExpansionContext


def build(script):
    return DFGBuilder().build_from_script(script)


def command_nodes(graph):
    return [node for node in graph.topological_order() if isinstance(node, CommandNode)]


def test_pipeline_becomes_chain():
    graph = build("cat in.txt | grep foo | sort | head -n 1")
    names = [node.name for node in command_nodes(graph)]
    assert names == ["cat", "grep", "sort", "head"]
    graph.validate()


def test_file_operands_become_input_edges():
    graph = build("cat a.txt b.txt | wc -l")
    inputs = [edge.name for edge in graph.input_edges()]
    assert inputs == ["a.txt", "b.txt"]


def test_grep_pattern_stays_an_argument():
    graph = build("grep foo a.txt b.txt")
    grep = command_nodes(graph)[0]
    assert grep.arguments == ["foo"]
    assert [graph.edge(e).name for e in grep.inputs] == ["a.txt", "b.txt"]


def test_head_count_value_is_not_an_input():
    graph = build("cat a.txt | head -n 10")
    head = command_nodes(graph)[-1]
    assert head.arguments == ["-n", "10"]
    assert len(head.inputs) == 1


def test_output_redirection_becomes_file_edge():
    graph = build("cat a.txt | sort > out.txt")
    outputs = graph.output_edges()
    assert [edge.name for edge in outputs] == ["out.txt"]
    assert outputs[0].kind is EdgeKind.FILE


def test_append_redirection_flag():
    graph = build("cat a.txt | sort >> out.txt")
    assert graph.output_edges()[0].append


def test_input_redirection():
    graph = build("sort < in.txt")
    assert [edge.name for edge in graph.input_edges()] == ["in.txt"]


def test_final_stage_defaults_to_stdout():
    graph = build("cat a.txt | sort")
    assert graph.output_edges()[0].kind is EdgeKind.STDOUT


def test_parallelizability_classes_recorded():
    graph = build("cat a.txt | grep x | sort")
    classes = [node.parallelizability() for node in command_nodes(graph)]
    assert classes == [
        ParallelizabilityClass.STATELESS,
        ParallelizabilityClass.STATELESS,
        ParallelizabilityClass.PARALLELIZABLE_PURE,
    ]


def test_aggregator_names_recorded():
    graph = build("cat a.txt | sort | uniq -c | wc -l")
    aggregators = [node.aggregator for node in command_nodes(graph)[1:]]
    assert aggregators == ["merge_sort", "merge_uniq", "merge_wc"]


def test_dash_operand_consumes_the_pipe():
    graph = build("cat words.txt | sort | comm -13 dict.txt -")
    comm = command_nodes(graph)[-1]
    names = [graph.edge(e).name or graph.edge(e).kind.value for e in comm.inputs]
    assert names[0] == "dict.txt"
    graph.validate()


def test_side_effectful_command_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat a.txt | awk '{print $1}'")


def test_unknown_command_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat a.txt | frobnicate")


def test_unknown_variable_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat $UNKNOWN_FILE | sort")


def test_known_variable_is_expanded():
    builder = DFGBuilder(context=ExpansionContext({"IN": "data.txt"}))
    graph = builder.build_from_script("cat $IN | sort")
    assert [edge.name for edge in graph.input_edges()] == ["data.txt"]


def test_command_substitution_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat $(ls) | sort")


def test_mid_pipeline_file_reader_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat a.txt | grep foo b.txt")


def test_unsupported_redirection_rejects_region():
    with pytest.raises(UntranslatableRegion):
        build("cat a.txt 2> err.txt | sort")


# ---------------------------------------------------------------------------
# translate_script
# ---------------------------------------------------------------------------


def test_translate_script_collects_regions_and_rejections():
    result = translate_script(
        "cat a.txt | grep x | sort\n"
        "cat b.txt | awk '{print $1}'\n"
        "cat c.txt | wc -l"
    )
    assert len(result.regions) == 2
    assert len(result.rejected) == 1
    assert "awk" in result.rejected[0][1]


def test_translate_script_uses_top_level_assignments():
    result = translate_script("IN=words.txt\ncat $IN | sort")
    assert len(result.regions) == 1
    names = [edge.name for edge in result.regions[0].dfg.input_edges()]
    assert names == ["words.txt"]


def test_translate_script_counts_parallelizable_commands():
    result = translate_script("cat a.txt | grep x | sort")
    assert result.parallelizable_command_count == 3


def test_translate_script_accepts_ast_input():
    from repro.shell.parser import parse

    result = translate_script(parse("cat a.txt | sort"))
    assert len(result.regions) == 1
