"""Pash.compile -> CompiledScript: the one front door, and the legacy shims."""

import pytest

from repro import api, engine
from repro.api import CompiledScript, Pash, PashConfig
from repro.backend.shell_emitter import EmitterOptions
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem

SCRIPT = "cat a.txt b.txt | grep x | sort > out.txt"
FILES = {"a.txt": ["xb", "ya", "xa"], "b.txt": ["xc", "zz"]}


def env():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in FILES.items()})
    )


def test_compile_returns_inspectable_artifact():
    compiled = Pash.compile(SCRIPT, PashConfig.paper_default(2))
    assert isinstance(compiled, CompiledScript)
    assert compiled.source == SCRIPT
    assert "mkfifo" in compiled.text
    assert compiled.text.count("grep x") == 2
    # The artifact exposes the AST, the regions, and per-region reports.
    assert compiled.ast is compiled.translation.ast
    assert len(compiled.regions) == 1
    assert len(compiled.reports) == 1
    assert compiled.reports[0].parallelized_count >= 1
    assert list(compiled.reports[0].pass_seconds)[0] == "split-insertion"
    assert compiled.stats.regions_parallelized == 1
    assert compiled.node_count == len(compiled.optimized_graphs[0].nodes)
    assert compiled.config == PashConfig.paper_default(2)


def test_compile_works_as_instance_method_with_held_config():
    # Single input: the split decides the copy count, i.e. the config's width.
    script = "cat big.txt | grep x | sort > out.txt"
    pash = Pash(PashConfig.paper_default(4))
    compiled = pash.compile(script)
    assert compiled.text.count("grep x") == 4
    # A per-call config overrides the instance's.
    assert pash.compile(script, PashConfig.paper_default(2)).text.count("grep x") == 2


def test_emit_with_custom_options_rerenders():
    compiled = Pash.compile(SCRIPT, PashConfig.paper_default(2))
    text = compiled.emit(EmitterOptions(fifo_directory="/dev/shm", fifo_prefix="edge"))
    assert "/dev/shm/edge_" in text
    assert compiled.emit() == compiled.text  # no options -> the cached text


def test_execute_on_interpreter_matches_sequential_shell():
    interpreter = ShellInterpreter(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in FILES.items()})
    )
    interpreter.run_script(SCRIPT)
    expected = interpreter.state.filesystem.read("out.txt")

    environment = env()
    result = Pash.compile(SCRIPT, PashConfig.paper_default(2)).execute(
        backend="interpreter", environment=environment
    )
    assert result.files["out.txt"] == expected
    assert result.backend == "interpreter"


def test_execute_uses_the_config_backend_by_default():
    config = PashConfig.paper_default(2, backend="parallel")
    result = Pash.compile(SCRIPT, config).execute(environment=env())
    assert result.backend == "parallel"
    assert result.metrics.worker_count >= 2


def test_execute_refuses_partially_translated_scripts():
    compiled = Pash.compile("cat a.txt | grep x\nwhile true; do echo x; done")
    assert compiled.translation.rejected
    with pytest.raises(ExecutionError, match="cannot be translated"):
        compiled.execute(environment=env())


def test_api_run_without_config_runs_sequential_graphs():
    sequential = api.run(SCRIPT, environment=env())
    optimized = api.run(SCRIPT, config=PashConfig.paper_default(2), environment=env())
    assert sequential.files["out.txt"] == optimized.files["out.txt"]
    assert sequential.backend == "interpreter"


def test_api_run_uses_config_backend_and_options():
    result = api.run(SCRIPT, config=PashConfig.paper_default(2, backend="parallel"), environment=env())
    assert result.backend == "parallel"


def test_module_level_compile_convenience():
    compiled = api.compile(SCRIPT, PashConfig.paper_default(2))
    assert compiled.text.count("grep x") == 2


def test_legacy_compile_script_is_a_warning_shim():
    from repro.backend.compiler import compile_script

    with pytest.warns(DeprecationWarning, match="Pash.compile"):
        compiled = compile_script(SCRIPT)
    assert isinstance(compiled, CompiledScript)
    assert "mkfifo" in compiled.text


def test_legacy_compile_script_matches_new_front_door_bit_for_bit():
    config = PashConfig.paper_default(4, fifo_prefix="fifo")
    with pytest.warns(DeprecationWarning):
        from repro.backend.compiler import compile_script

        legacy = compile_script(SCRIPT, config)
    assert legacy.text == Pash.compile(SCRIPT, config).text


def test_legacy_engine_run_script_is_a_warning_shim():
    with pytest.warns(DeprecationWarning, match="repro.api.run"):
        result = engine.run_script(SCRIPT, environment=env())
    assert result.files["out.txt"]


def test_legacy_names_still_importable_from_package_root():
    import repro

    assert repro.compile_script is not None
    assert repro.CompiledScript is CompiledScript
    assert repro.PashConfig is PashConfig
