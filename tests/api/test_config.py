"""PashConfig: one config object, four derived views, round-trippable."""

import dataclasses
import json

import pytest

from repro.api import EagerMode, PashConfig, SplitMode
from repro.cli import build_parser
from repro.engine.scheduler import SchedulerOptions
from repro.transform.pipeline import ParallelizationConfig


def test_defaults_match_legacy_parallelization_config():
    config = PashConfig()
    legacy = ParallelizationConfig()
    assert config.width == legacy.width
    assert config.eager is legacy.eager
    assert config.split is legacy.split
    assert config.aggregation_fan_in == legacy.aggregation_fan_in
    assert config.minimum_copies == legacy.minimum_copies
    assert config.backend == "interpreter"


def test_is_frozen_and_hashable():
    config = PashConfig.paper_default(4)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.width = 8
    assert hash(config) == hash(PashConfig.paper_default(4))


def test_named_constructors_mirror_the_fig7_configurations():
    assert PashConfig.paper_default(8).split is SplitMode.GENERAL
    assert PashConfig.no_eager(8).eager is EagerMode.NONE
    assert PashConfig.no_eager(8).split is SplitMode.NONE
    assert PashConfig.blocking_eager(8).eager is EagerMode.BLOCKING
    assert PashConfig.parallel_only(8).split is SplitMode.NONE
    assert PashConfig.blocking_split(8).split is SplitMode.INPUT_AWARE
    named = PashConfig.named_configurations(8)
    assert set(named) == {
        "Par + Split",
        "Par + B. Split",
        "Parallel",
        "Blocking Eager",
        "No Eager",
    }
    assert all(config.width == 8 for config in named.values())


@pytest.mark.parametrize(
    "config",
    [
        PashConfig(),
        PashConfig.paper_default(16),
        PashConfig.no_eager(4, aggregation_fan_in=4),
        PashConfig(
            width=7,
            eager=EagerMode.BLOCKING,
            split=SplitMode.INPUT_AWARE,
            disabled_passes=("eager-relays",),
            backend="parallel",
            use_host_commands=True,
            chunk_size=4096,
            fifo_directory="/dev/shm",
            fifo_prefix="edge",
            emit_header=True,
        ),
    ],
)
def test_to_dict_from_dict_round_trips(config):
    payload = config.to_dict()
    json.dumps(payload)  # must be plain JSON-able data (the future cache key)
    assert PashConfig.from_dict(payload) == config


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown PashConfig fields"):
        PashConfig.from_dict({"widht": 4})


def test_from_dict_accepts_enum_strings():
    config = PashConfig.from_dict({"width": 3, "eager": "blocking", "split": "none"})
    assert config.eager is EagerMode.BLOCKING
    assert config.split is SplitMode.NONE


def test_coerce_lifts_legacy_config_and_rejects_junk():
    legacy = ParallelizationConfig(width=5, eager=EagerMode.NONE, aggregation_fan_in=3)
    lifted = PashConfig.coerce(legacy)
    assert (lifted.width, lifted.eager, lifted.aggregation_fan_in) == (5, EagerMode.NONE, 3)
    assert PashConfig.coerce(None) == PashConfig()
    config = PashConfig.paper_default(2)
    assert PashConfig.coerce(config) is config
    with pytest.raises(TypeError):
        PashConfig.coerce(42)


def test_parallelization_view_round_trips():
    config = PashConfig.blocking_split(6, aggregation_fan_in=4, minimum_copies=3)
    legacy = config.parallelization()
    assert isinstance(legacy, ParallelizationConfig)
    assert PashConfig.from_parallelization(legacy) == config


def test_emitter_options_view():
    config = PashConfig(fifo_directory="/dev/shm", fifo_prefix="edge", emit_header=True)
    options = config.emitter_options()
    assert options.fifo_directory == "/dev/shm"
    assert options.fifo_prefix == "edge"
    assert options.header is True
    assert options.cleanup is True
    # Without an explicit prefix every emission gets a unique one.
    first = PashConfig().emitter_options().fifo_prefix
    second = PashConfig().emitter_options().fifo_prefix
    assert first != second


def test_scheduler_options_view():
    config = PashConfig(use_host_commands=True, chunk_size=1024, report_timeout_seconds=5.0)
    options = config.scheduler_options()
    assert isinstance(options, SchedulerOptions)
    assert options.use_host_commands is True
    assert options.chunk_size == 1024
    assert options.report_timeout_seconds == 5.0
    # Engine default chunk size is preserved when unset.
    assert PashConfig().scheduler_options().chunk_size == SchedulerOptions().chunk_size


def test_backend_options_only_parallel_gets_scheduler_options():
    config = PashConfig(backend="parallel", use_host_commands=True)
    assert config.backend_options()["options"].use_host_commands is True
    assert PashConfig(backend="interpreter").backend_options() == {}
    assert config.backend_options("shell") == {}


def test_from_cli_args_subsumes_the_flag_surface():
    arguments = build_parser().parse_args(
        [
            "x.sh",
            "--width",
            "9",
            "--blocking-eager",
            "--split",
            "input-aware",
            "--fan-in",
            "4",
            "--disable-pass",
            "eager-relays",
            "--execute",
            "parallel",
        ]
    )
    config = PashConfig.from_cli_args(arguments)
    assert config.width == 9
    assert config.eager is EagerMode.BLOCKING
    assert config.split is SplitMode.INPUT_AWARE
    assert config.aggregation_fan_in == 4
    assert config.disabled_passes == ("eager-relays",)
    assert config.backend == "parallel"


def test_replace_returns_modified_copy():
    base = PashConfig.paper_default(4)
    wider = base.replace(width=16)
    assert wider.width == 16 and base.width == 4
    assert wider.split is base.split
