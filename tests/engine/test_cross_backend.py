"""Cross-backend equivalence: one compile, one artifact, three engines.

For the Table-2 one-liner workloads, a single ``Pash.compile`` produces one
:class:`~repro.api.CompiledScript`, and ``CompiledScript.execute(backend=...)``
must yield byte-identical outputs on the interpreter (in-process oracle), the
parallel engine (real processes and pipes), and — where the command substrate
is faithful to coreutils — the emitted shell script.

The shell leg is restricted to benchmarks whose commands behave identically
under real coreutils: the remaining five hit known substrate-fidelity gaps,
not engine bugs (the Python ``tr -cs`` emits an empty token GNU tr does not
— top-n, wf, bi-grams; GNU ``diff``'s output format differs from the Python
stand-in — diff; and the custom annotated commands like ``bigrams`` have no
host binary — bi-grams-opt).
"""

import shutil

import pytest

from repro.api import Pash, PashConfig
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads.oneliners import ONE_LINERS, get_one_liner

WIDTH = 2
LINES = 240

#: One-liners whose Python command implementations match real coreutils
#: byte-for-byte (see module docstring for why the others are excluded).
SHELL_FAITHFUL = [
    "grep",
    "sort",
    "grep-light",
    "spell",
    "shortest-scripts",
    "set-diff",
    "sort-sort",
]


def run_backend(benchmark, backend):
    """Compile once through the front door, execute on the named backend."""
    dataset = benchmark.correctness_dataset(WIDTH, LINES)
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in dataset.items()})
    )
    compiled = Pash.compile(
        benchmark.script_for_width(WIDTH), PashConfig.paper_default(WIDTH)
    )
    result = compiled.execute(backend=backend, environment=environment)
    produced = {name: lines for name, lines in result.files.items() if name not in dataset}
    return result.stdout, produced, result.metrics


@pytest.mark.parametrize("name", [benchmark.name for benchmark in ONE_LINERS])
def test_parallel_engine_matches_interpreter(name):
    benchmark = get_one_liner(name)
    expected_stdout, expected_files, _ = run_backend(benchmark, "interpreter")
    stdout, files, metrics = run_backend(benchmark, "parallel")
    assert stdout == expected_stdout
    assert files == expected_files
    # Genuine OS-level concurrency: at least two distinct worker processes.
    assert metrics.worker_count >= 2


@pytest.mark.parametrize("name", [benchmark.name for benchmark in ONE_LINERS])
def test_cluster_backend_matches_interpreter(name):
    """Table-2 corpus on the distributed tier: 2 localhost workers."""
    benchmark = get_one_liner(name)
    expected_stdout, expected_files, _ = run_backend(benchmark, "interpreter")
    stdout, files, metrics = run_backend(benchmark, "cluster")
    assert stdout == expected_stdout
    assert files == expected_files
    assert metrics.backend == "cluster"
    assert metrics.cluster_workers == 2


def test_cluster_backend_runs_nodes_remotely():
    """Wide stateless stages really execute in worker processes."""
    import os

    benchmark = get_one_liner("grep")
    _, _, metrics = run_backend(benchmark, "cluster")
    remote_pids = {node.pid for node in metrics.nodes} - {os.getpid()}
    assert remote_pids, "no node ran outside the coordinator process"
    assert metrics.remote_tasks >= 2


def test_cluster_survives_killed_worker():
    """SIGKILL one worker mid-run: requeue to byte-identical output, or a
    clean ``ExecutionError`` — never a hang (the run deadline bounds it)."""
    import signal
    import threading

    from repro.cluster.coordinator import ClusterCoordinator, ClusterOptions
    from repro.runtime.executor import ExecutionError

    benchmark = get_one_liner("grep")
    dataset = benchmark.correctness_dataset(WIDTH, LINES)
    expected_stdout, _, _ = run_backend(benchmark, "interpreter")
    compiled = Pash.compile(
        benchmark.script_for_width(WIDTH), PashConfig.paper_default(WIDTH)
    )
    graphs = compiled.optimized_graphs
    assert graphs

    coordinator = ClusterCoordinator(
        ClusterOptions(workers=2, report_timeout_seconds=60.0)
    )
    coordinator.start()
    victim = coordinator.processes[0]
    killer = threading.Timer(0.05, lambda: victim.send_signal(signal.SIGKILL))
    killer.start()
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in dataset.items()})
    )
    try:
        try:
            result, metrics = coordinator.execute(graphs[0], environment)
        except ExecutionError:
            return  # clean failure is an accepted outcome
        assert result.stdout == expected_stdout
    finally:
        killer.cancel()
        coordinator.shutdown()


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
@pytest.mark.parametrize("name", SHELL_FAITHFUL)
def test_emitted_shell_script_matches_interpreter(name):
    for required in ("mkfifo", "grep", "sort", "cat", "comm"):
        if shutil.which(required) is None:
            pytest.skip(f"missing {required}")
    benchmark = get_one_liner(name)
    expected_stdout, expected_files, _ = run_backend(benchmark, "interpreter")
    stdout, files, _ = run_backend(benchmark, "shell")
    assert stdout == expected_stdout
    assert files == expected_files


# ---------------------------------------------------------------------------
# Mid-script assignments: visible to later regions on every backend
# ---------------------------------------------------------------------------

ASSIGNMENT_SCRIPT = (
    "pat=light\n"
    "grep $pat in.txt | sort\n"
    "pat=dark\n"
    "grep $pat in.txt\n"
)

ASSIGNMENT_FILES = {"in.txt": ["light b", "dark c", "light a", "dark d"]}


def run_assignment_script(backend):
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {name: list(lines) for name, lines in ASSIGNMENT_FILES.items()}
        )
    )
    compiled = Pash.compile(ASSIGNMENT_SCRIPT, PashConfig.paper_default(WIDTH))
    result = compiled.execute(backend=backend, environment=environment)
    return result.stdout


def test_assignments_are_not_rejected_regions():
    compiled = Pash.compile(ASSIGNMENT_SCRIPT, PashConfig.paper_default(WIDTH))
    assert compiled.translation.rejected == []
    assert len(compiled.translation.assignments) == 2
    assert len(compiled.regions) == 2


def test_reassignment_orders_correctly_at_compile_time():
    # The first grep must see pat=light, the second pat=dark: in-order
    # binding, not last-assignment-wins.
    compiled = Pash.compile(ASSIGNMENT_SCRIPT, PashConfig.paper_default(WIDTH))
    emitted = compiled.text
    assert "grep light" in emitted
    assert "grep dark" in emitted


@pytest.mark.parametrize("backend", ["interpreter", "parallel", "jit", "cluster"])
def test_assignment_visibility_across_backends(backend):
    from repro.runtime.interpreter import ShellInterpreter

    oracle = ShellInterpreter(
        filesystem=VirtualFileSystem(
            {name: list(lines) for name, lines in ASSIGNMENT_FILES.items()}
        )
    )
    expected = oracle.run_script(ASSIGNMENT_SCRIPT)
    assert run_assignment_script(backend) == expected
    assert expected == ["light a", "light b", "dark c", "dark d"]


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_assignment_visibility_on_shell_backend():
    if shutil.which("mkfifo") is None or shutil.which("grep") is None:
        pytest.skip("missing coreutils")
    assert run_assignment_script("shell") == ["light a", "light b", "dark c", "dark d"]
