"""Tests for the engine's OS-pipe channel layer."""

import os
import threading

import pytest

from repro.engine.channels import (
    Channel,
    ChannelError,
    ChannelReader,
    ChannelWriter,
    EagerPump,
    decode_lines,
    encode_lines,
)


def pipe_round_trip(lines, chunk_size=64):
    """Write ``lines`` through a real pipe from a thread, read them back."""
    channel = Channel(chunk_size=chunk_size)
    writer = channel.writer()

    def produce():
        writer.write_lines(lines)
        writer.close()

    producer = threading.Thread(target=produce)
    producer.start()
    received = channel.reader().read_lines()
    producer.join()
    return received, writer


def test_round_trip_small():
    lines = ["alpha", "beta", "gamma"]
    received, _ = pipe_round_trip(lines)
    assert received == lines


def test_round_trip_empty_stream():
    received, writer = pipe_round_trip([])
    assert received == []
    assert writer.bytes_written == 0


def test_round_trip_crosses_chunk_boundaries():
    lines = [f"line-{index:06d}-" + "x" * 37 for index in range(5000)]
    received, writer = pipe_round_trip(lines, chunk_size=256)
    assert received == lines
    assert writer.bytes_written == sum(len(line) + 1 for line in lines)
    assert writer.lines_written == len(lines)


def test_round_trip_preserves_empty_and_unicode_lines():
    lines = ["", "héllo wörld", "", "tab\tseparated", "naïve £5"]
    received, _ = pipe_round_trip(lines)
    assert received == lines


def test_reader_counts_bytes():
    channel = Channel(chunk_size=16)
    writer = channel.writer()
    reader = channel.reader()
    writer.write_lines(["abc", "defg"])
    writer.close()
    assert reader.read_lines() == ["abc", "defg"]
    assert reader.bytes_read == len("abc\ndefg\n")
    assert reader.lines_read == 2


def test_write_after_close_raises():
    channel = Channel()
    writer = channel.writer()
    channel_reader = channel.reader()
    writer.close()
    with pytest.raises(ChannelError):
        writer.write_line("late")
    assert channel_reader.read_lines() == []


def test_encode_decode_inverse():
    lines = ["a", "", "b c", "déjà"]
    assert decode_lines(encode_lines(lines)) == lines
    assert decode_lines(b"") == []
    assert decode_lines(b"no-trailing-newline") == ["no-trailing-newline"]


def test_eager_pump_drains_concurrently():
    """The pump consumes far more than a pipe buffer while we are not reading."""
    lines = ["y" * 200 for _ in range(10_000)]  # ~2 MB >> 64 KB pipe capacity
    channel = Channel()
    pump = EagerPump(channel.reader())
    pump.start()
    writer = channel.writer()
    # Without the pump this write would block forever on the full pipe.
    writer.write_lines(lines)
    writer.close()
    assert pump.result() == lines


def test_channel_close_is_idempotent():
    channel = Channel()
    channel.close()
    channel.close()


def test_broken_pipe_surfaces_to_writer():
    channel = Channel()
    os.close(channel.read_fd)
    writer = channel.writer()
    with pytest.raises(BrokenPipeError):
        writer.write_lines(["x" * (1 << 20)])
        writer.close()
    writer.abandon()
