"""Tests for the multiprocess DFG scheduler."""

import os
import shutil

import pytest

from repro.dfg.builder import DFGBuilder
from repro.engine.scheduler import ParallelScheduler, SchedulerOptions, execute_graph_parallel
from repro.runtime.executor import (
    DFGExecutor,
    ExecutionEnvironment,
    ExecutionError,
)
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import ParallelizationConfig, optimize_graph


def build(script, width=None):
    graph = DFGBuilder().build_from_script(script)
    if width:
        optimize_graph(graph, ParallelizationConfig.paper_default(width))
    return graph


def environment(files=None, stdin=None):
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in (files or {}).items()}),
        stdin=list(stdin or []),
    )


FILES = {
    "a.txt": ["banana", "apple foo", "cherry FOO"],
    "b.txt": ["date foo", "elderberry", "fig foo"],
}


def test_simple_pipeline_matches_interpreter():
    script = "cat a.txt b.txt | grep foo | sort > out.txt"
    expected = DFGExecutor(environment(FILES)).execute(build(script))
    result, metrics = execute_graph_parallel(build(script), environment(FILES))
    assert result.files["out.txt"] == expected.files["out.txt"]
    assert metrics.elapsed_seconds > 0


def test_optimized_graph_matches_interpreter():
    script = "cat a.txt b.txt | grep foo | sort > out.txt"
    expected = DFGExecutor(environment(FILES)).execute(build(script, width=2))
    result, _ = execute_graph_parallel(build(script, width=2), environment(FILES))
    assert result.files["out.txt"] == expected.files["out.txt"]


def test_stdout_graph():
    script = "cat a.txt | grep -v foo"
    result, _ = execute_graph_parallel(build(script), environment(FILES))
    assert result.stdout == ["banana", "cherry FOO"]


def test_stdin_graph():
    graph = build("grep foo")
    result, _ = execute_graph_parallel(graph, environment(stdin=["one foo", "two", "three foo"]))
    assert result.stdout == ["one foo", "three foo"]


def test_multiple_worker_processes_observed():
    script = "cat a.txt b.txt | grep foo | sort > out.txt"
    _, metrics = execute_graph_parallel(build(script, width=2), environment(FILES))
    assert metrics.worker_count >= 2
    assert metrics.worker_count == len({node.pid for node in metrics.nodes})
    assert os.getpid() not in {node.pid for node in metrics.nodes}


def test_per_node_metrics_populated():
    script = "cat a.txt b.txt | grep foo > out.txt"
    graph = build(script)
    result, metrics = execute_graph_parallel(graph, environment(FILES))
    assert len(metrics.nodes) == len(graph.nodes)
    by_label = {node.label: node for node in metrics.nodes}
    grep_node = by_label["grep foo"]
    assert grep_node.bytes_in > 0
    assert grep_node.lines_in == 6
    assert grep_node.lines_out == len(result.files["out.txt"]) == 3
    assert grep_node.wall_seconds >= 0
    assert metrics.total_bytes_moved > 0
    assert 0 <= metrics.worker_utilization <= 1


def test_missing_input_file_raises():
    with pytest.raises(ExecutionError):
        execute_graph_parallel(build("cat missing.txt | sort"), environment())


def _graph_with_failing_node(downstream=False):
    """A graph containing a command the registry does not implement."""
    from repro.dfg.edges import EdgeKind
    from repro.dfg.graph import DataflowGraph
    from repro.dfg.nodes import CommandNode

    graph = DataflowGraph()
    failing = graph.add_node(CommandNode(name="unknowncommand123"))
    source = graph.add_edge(kind=EdgeKind.FILE, name="a.txt")
    graph.attach_input(failing, source)
    if downstream:
        consumer = graph.add_node(CommandNode(name="sort"))
        graph.connect(failing, consumer)
        sink = graph.add_edge(kind=EdgeKind.FILE, name="out.txt")
        graph.attach_output(consumer, sink)
    else:
        sink = graph.add_edge(kind=EdgeKind.FILE, name="out.txt")
        graph.attach_output(failing, sink)
    return graph


def test_worker_failure_propagates_with_label():
    with pytest.raises(ExecutionError) as excinfo:
        execute_graph_parallel(_graph_with_failing_node(), environment(FILES))
    assert "unknowncommand123" in str(excinfo.value)


def test_failure_does_not_wedge_downstream():
    """A dying node must deliver EOF, not a hang, to its consumers."""
    scheduler = ParallelScheduler(environment(FILES), SchedulerOptions(report_timeout_seconds=30))
    with pytest.raises(ExecutionError):
        scheduler.execute(_graph_with_failing_node(downstream=True))


def test_killed_worker_fails_fast_with_exit_code():
    """A SIGKILLed worker never reports; the run must not sit out the timeout.

    The kill is injected through the resilience tier's fault plane
    (``pool:worker-exec`` in kill mode) rather than a custom self-killing
    command — the same rig the chaos suite uses.
    """
    import time as time_module

    from repro.resilience.fault import POOL_WORKER_EXEC, FaultPlan, FaultSpec

    plan = FaultPlan([FaultSpec(point=POOL_WORKER_EXEC, mode="kill", max_fires=0)])
    scheduler = ParallelScheduler(
        environment(FILES),
        SchedulerOptions(report_timeout_seconds=60, fault_plan=plan),
    )
    started = time_module.perf_counter()
    with pytest.raises(ExecutionError) as excinfo:
        scheduler.execute(build("cat a.txt b.txt | grep foo | sort > out.txt"))
    assert time_module.perf_counter() - started < 30
    assert "died without reporting" in str(excinfo.value)


def test_output_arity_mismatch_is_a_loud_error():
    """A node wired to more output edges than it produces must fail, not
    silently feed EOF downstream (parity with the interpreter's check)."""
    from repro.dfg.edges import EdgeKind
    from repro.dfg.graph import DataflowGraph
    from repro.dfg.nodes import RelayNode

    graph = DataflowGraph()
    relay_node = graph.add_node(RelayNode())
    source = graph.add_edge(kind=EdgeKind.FILE, name="a.txt")
    graph.attach_input(relay_node, source)
    for name in ("o1.txt", "o2.txt"):
        sink = graph.add_edge(kind=EdgeKind.FILE, name=name)
        graph.attach_output(relay_node, sink)

    with pytest.raises(ExecutionError) as excinfo:
        execute_graph_parallel(graph, environment(FILES))
    assert "2 output edges" in str(excinfo.value)


def test_file_append_output():
    env = environment({"a.txt": ["x", "y"], "log.txt": ["old"]})
    result, _ = execute_graph_parallel(build("cat a.txt >> log.txt"), env)
    assert result.files["log.txt"] == ["old", "x", "y"]
    assert env.filesystem.read("log.txt") == ["old", "x", "y"]


def test_multi_statement_environment_chaining():
    env = environment(FILES)
    execute_graph_parallel(build("cat a.txt b.txt | sort > sorted.txt"), env)
    result, _ = execute_graph_parallel(build("cat sorted.txt | head -n 2 > out.txt"), env)
    assert result.files["out.txt"] == ["apple foo", "banana"]


def test_large_stream_through_pipes():
    lines = [f"payload line {index} foo" for index in range(20_000)]
    env = environment({"big.txt": lines})
    expected = DFGExecutor(env.copy()).execute(build("cat big.txt | grep foo | wc -l"))
    result, metrics = execute_graph_parallel(
        build("cat big.txt | grep foo | wc -l", width=4), env
    )
    assert result.stdout == expected.stdout
    assert metrics.total_bytes_moved > 100_000


def test_empty_graph():
    from repro.dfg.graph import DataflowGraph

    result, metrics = execute_graph_parallel(DataflowGraph(), environment())
    assert result.stdout == []
    assert metrics.nodes == []


@pytest.mark.skipif(shutil.which("grep") is None, reason="requires host grep")
def test_host_command_mode():
    script = "cat a.txt b.txt | grep foo | sort > out.txt"
    expected = DFGExecutor(environment(FILES)).execute(build(script))
    result, metrics = execute_graph_parallel(
        build(script), environment(FILES), SchedulerOptions(use_host_commands=True)
    )
    assert result.files["out.txt"] == expected.files["out.txt"]
    assert any(node.host_command for node in metrics.nodes)
