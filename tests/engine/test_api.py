"""Tests for the unified backend API (`repro.engine.run`)."""

import shutil

import pytest

from repro import engine
from repro.dfg.builder import DFGBuilder
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.transform.pipeline import ParallelizationConfig


FILES = {"a.txt": ["banana", "apple foo"], "b.txt": ["cherry foo", "date"]}
SCRIPT = "cat a.txt b.txt | grep foo | sort > out.txt"


def env():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in FILES.items()})
    )


def test_available_backends():
    names = engine.available_backends()
    assert {"interpreter", "parallel", "shell"} <= set(names)


def test_unknown_backend_raises():
    with pytest.raises(ValueError) as excinfo:
        engine.create_backend("quantum")
    assert "quantum" in str(excinfo.value)
    assert "parallel" in str(excinfo.value)


def test_register_custom_backend():
    class NullBackend(engine.ExecutionBackend):
        name = "null"

        def execute(self, graph, environment):
            return engine.EngineResult(backend=self.name)

    engine.register_backend("null", NullBackend)
    try:
        graph = DFGBuilder().build_from_script(SCRIPT)
        result = engine.run(graph, backend="null", environment=env())
        assert result.backend == "null"
        assert result.stdout == []
    finally:
        engine.api._BACKENDS.pop("null", None)


def test_run_graph_on_interpreter_and_parallel():
    graph = DFGBuilder().build_from_script(SCRIPT)
    interp = engine.run(graph, backend="interpreter", environment=env())
    graph = DFGBuilder().build_from_script(SCRIPT)
    parallel = engine.run(graph, backend="parallel", environment=env())
    assert interp.output_of("out.txt") == ["apple foo", "cherry foo"]
    assert parallel.output_of("out.txt") == interp.output_of("out.txt")
    assert parallel.backend == "parallel"
    assert parallel.metrics.worker_count >= 2
    assert parallel.elapsed_seconds > 0


def test_run_script_optimizes_and_executes():
    result = engine.run_script(
        SCRIPT,
        backend="parallel",
        environment=env(),
        config=ParallelizationConfig.paper_default(2),
    )
    assert result.output_of("out.txt") == ["apple foo", "cherry foo"]
    # The optimized graph has parallel grep copies plus runtime helpers.
    assert len(result.metrics.nodes) > 3


def test_run_script_multi_statement_shares_environment():
    script = "cat a.txt b.txt | sort > sorted.txt\ncat sorted.txt | head -n 1 > out.txt"
    result = engine.run_script(script, backend="parallel", environment=env())
    assert result.output_of("sorted.txt") == ["apple foo", "banana", "cherry foo", "date"]
    assert result.output_of("out.txt") == ["apple foo"]


def test_run_updates_environment_filesystem():
    environment = env()
    graph = DFGBuilder().build_from_script(SCRIPT)
    engine.run(graph, backend="parallel", environment=environment)
    assert environment.filesystem.read("out.txt") == ["apple foo", "cherry foo"]


def test_parallel_backend_options_forwarded():
    graph = DFGBuilder().build_from_script(SCRIPT)
    result = engine.run(graph, backend="parallel", environment=env(), chunk_size=32)
    assert result.output_of("out.txt") == ["apple foo", "cherry foo"]


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_shell_backend_missing_input_raises_instead_of_hanging():
    from repro.runtime.executor import ExecutionError

    with pytest.raises(ExecutionError):
        engine.run_script(
            "cat not-there.txt | sort > out.txt",
            backend="shell",
            environment=ExecutionEnvironment(filesystem=VirtualFileSystem()),
        )


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_shell_backend_round_trip():
    result = engine.run_script(
        SCRIPT,
        backend="shell",
        environment=env(),
        config=ParallelizationConfig.paper_default(2),
    )
    assert result.output_of("out.txt") == ["apple foo", "cherry foo"]


@pytest.mark.parametrize(
    "backend",
    ["interpreter", "parallel"]
    + (["shell"] if shutil.which("sh") else []),
)
def test_stdin_fed_pipeline_on_every_backend(backend):
    """Background jobs get /dev/null stdin under sh; the engine must not."""
    environment = ExecutionEnvironment(stdin=["banana foo", "zebra", "apple foo"])
    result = engine.run_script("grep foo | sort", backend=backend, environment=environment)
    assert result.stdout == ["apple foo", "banana foo"]


@pytest.mark.parametrize(
    "backend",
    ["interpreter", "parallel"] + (["shell"] if shutil.which("sh") else []),
)
def test_append_preserves_real_file_content(backend, tmp_path, monkeypatch):
    """`>>` against a file that exists only on disk must extend, not truncate."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "log.txt").write_text("old line\n")
    (tmp_path / "in.txt").write_text("beta\nalpha\n")
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(allow_real_files=True))
    result = engine.run_script("sort in.txt >> log.txt", backend=backend, environment=environment)
    assert result.output_of("log.txt") == ["old line", "alpha", "beta"]


def test_run_script_refuses_partially_translatable_scripts():
    """Silently skipping rejected regions would produce wrong output."""
    from repro.runtime.executor import ExecutionError

    script = "cat a.txt | grep foo > g.txt\ncat a.txt | awk '{print}' > w.txt"
    with pytest.raises(ExecutionError) as excinfo:
        engine.run_script(script, backend="interpreter", environment=env())
    assert "cannot be translated" in str(excinfo.value)


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_shell_backend_refuses_absolute_output_paths(tmp_path):
    from repro.runtime.executor import ExecutionError

    target = tmp_path / "escape.txt"
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem({"a.txt": ["apple foo"]})
    )
    with pytest.raises(ExecutionError) as excinfo:
        engine.run_script(
            f"cat a.txt | sort > {target}", backend="shell", environment=environment
        )
    assert "absolute output path" in str(excinfo.value)
    assert not target.exists()


@pytest.mark.skipif(shutil.which("sh") is None, reason="requires a POSIX shell")
def test_shell_backend_never_writes_absolute_vfs_names(tmp_path):
    """Unrelated in-memory files with absolute names must stay in memory."""
    precious = tmp_path / "precious.txt"
    precious.write_text("real content\n")
    environment = ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {str(precious): ["vfs content"], "a.txt": ["apple foo"], "b.txt": ["banana"]}
        )
    )
    engine.run_script(SCRIPT, backend="shell", environment=environment)
    assert precious.read_text() == "real content\n"


def test_engine_result_absorb_merges_metrics():
    first = engine.run_script(SCRIPT, backend="parallel", environment=env())
    nodes_before = len(first.metrics.nodes)
    second = engine.run_script(SCRIPT, backend="parallel", environment=env())
    first.absorb(second)
    assert len(first.metrics.nodes) == nodes_before + len(second.metrics.nodes)
    assert first.elapsed_seconds >= second.elapsed_seconds
