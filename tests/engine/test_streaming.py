"""Bounded-memory streaming: chunked iteration, UTF-8 boundaries, spill.

Covers the hot-path invariants the engine's data plane now guarantees:

* incremental line decoding is exact even when multi-byte UTF-8 sequences
  are split across chunk boundaries (every chunk size, including 1 byte);
* spill-to-disk buffers round-trip streams bit-for-bit while keeping their
  in-memory window under the configured high-water mark;
* degenerate streams (0 bytes, no trailing newline) behave like the
  interpreter's line model end-to-end;
* the three backends stay byte-identical with streaming knobs turned all
  the way down (tiny chunks, tiny spill thresholds).
"""

import os
import threading

import pytest

from repro import api, engine
from repro.api import PashConfig, StreamingConfig
from repro.engine.channels import (
    Channel,
    EagerPump,
    SpillBuffer,
    decode_lines,
    encode_lines,
    iter_decoded_lines,
    iter_encoded_chunks,
)
from repro.runtime.eager import EagerBuffer, relay
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem

UNICODE_LINES = ["héllo wörld", "", "naïve £5 — ✓", "漢字テスト", "emoji 🎉🎊", "plain"]


# ---------------------------------------------------------------------------
# Incremental decoding across chunk boundaries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 7, 64])
def test_iter_decoded_lines_survives_multibyte_chunk_splits(chunk_size):
    """Re-chunking the framed bytes at any granularity must not corrupt UTF-8."""
    payload = encode_lines(UNICODE_LINES)
    chunks = [payload[i : i + chunk_size] for i in range(0, len(payload), chunk_size)]
    assert list(iter_decoded_lines(chunks)) == UNICODE_LINES


def test_iter_decoded_lines_empty_and_no_trailing_newline():
    assert list(iter_decoded_lines([])) == []
    assert list(iter_decoded_lines([b""])) == []
    assert list(iter_decoded_lines([b"no-newline"])) == ["no-newline"]
    # A multi-byte char split across the final boundary, newline missing.
    tail = "café".encode("utf-8")
    assert list(iter_decoded_lines([b"a\n" + tail[:3], tail[3:]])) == ["a", "café"]


def test_iter_encoded_chunks_inverse_and_bounded():
    lines = [f"line-{i}-é" for i in range(500)]
    chunks = list(iter_encoded_chunks(lines, chunk_size=64))
    assert b"".join(chunks) == encode_lines(lines)
    # Each chunk is one framing unit plus at most one overhanging line.
    assert all(len(chunk) <= 64 + max(len(l.encode()) + 1 for l in lines) for chunk in chunks)
    assert list(iter_encoded_chunks([], chunk_size=64)) == []


@pytest.mark.parametrize("chunk_size", [3, 5, 17])
def test_pipe_round_trip_with_multibyte_lines_and_tiny_chunks(chunk_size):
    """A real OS pipe re-chunks arbitrarily; decoding must stay exact."""
    channel = Channel(chunk_size=chunk_size)
    writer = channel.writer()

    def produce():
        writer.write_lines(UNICODE_LINES)
        writer.close()

    producer = threading.Thread(target=produce)
    producer.start()
    received = list(channel.reader().iter_lines())
    producer.join()
    assert received == UNICODE_LINES


# ---------------------------------------------------------------------------
# SpillBuffer: bounded memory, ordered spill/restore
# ---------------------------------------------------------------------------


def test_spill_buffer_round_trips_in_order_and_stays_bounded():
    buffer = SpillBuffer(spill_threshold=256)
    chunks = [f"chunk-{i:04d}-".encode() * 8 for i in range(200)]  # ~100 B each
    for chunk in chunks:
        buffer.append(chunk)
    buffer.close()
    assert buffer.peak_buffered_bytes <= 256
    assert buffer.spilled_bytes > 0
    assert buffer.spill_events > 0
    assert b"".join(iter(buffer)) == b"".join(chunks)


def test_spill_buffer_zero_threshold_spills_everything():
    buffer = SpillBuffer(spill_threshold=0)
    buffer.append(b"abc")
    buffer.append(b"def")
    buffer.close()
    assert buffer.peak_buffered_bytes == 0
    assert buffer.spilled_bytes == 6
    assert list(buffer) == [b"abc", b"def"]


def test_spill_buffer_interleaved_producer_consumer():
    """Memory stays bounded while a slow consumer trails a fast producer."""
    buffer = SpillBuffer(spill_threshold=128)
    chunks = [bytes([65 + (i % 26)]) * 50 for i in range(100)]

    def produce():
        for chunk in chunks:
            buffer.append(chunk)
        buffer.close()

    producer = threading.Thread(target=produce)
    producer.start()
    received = b"".join(iter(buffer))
    producer.join()
    assert received == b"".join(chunks)
    assert buffer.peak_buffered_bytes <= 128


def test_spill_buffer_empty_stream():
    buffer = SpillBuffer(spill_threshold=16)
    buffer.close()
    assert list(buffer) == []
    assert buffer.spilled_bytes == 0


# ---------------------------------------------------------------------------
# EagerPump over a real pipe
# ---------------------------------------------------------------------------


def test_eager_pump_spills_past_threshold_and_restores():
    lines = ["y" * 200 for _ in range(5_000)]  # ~1 MB
    channel = Channel()
    pump = EagerPump(channel.reader(), spill_threshold=4096)
    pump.start()
    writer = channel.writer()
    # Without the pump this write would block forever on the full pipe —
    # and with an unbounded pump it would all sit in memory.
    writer.write_lines(lines)
    writer.close()
    assert pump.result() == lines
    assert pump.peak_buffered_bytes <= 4096
    assert pump.spilled_bytes > 0


def test_eager_pump_streaming_consumption():
    """iter_lines consumes concurrently with the pump thread."""
    lines = [f"row {i} é" for i in range(2_000)]
    channel = Channel(chunk_size=128)
    pump = EagerPump(channel.reader(), spill_threshold=512)
    pump.start()
    writer = channel.writer()
    writer.write_lines(lines)
    writer.close()
    assert list(pump.iter_lines()) == lines


# ---------------------------------------------------------------------------
# EagerBuffer (in-process relay) spill round-trip
# ---------------------------------------------------------------------------


def test_eager_buffer_spill_round_trip():
    lines = [f"line-{i}-ü" for i in range(1_000)]
    buffer = EagerBuffer(mode="eager", spill_threshold=512)
    buffer.write_all(lines)
    buffer.close()
    assert buffer.peak_buffered_bytes <= 512
    assert buffer.spilled_bytes > 0
    assert buffer.drain() == lines


def test_relay_identity_holds_with_spill():
    lines = UNICODE_LINES * 50
    assert relay(lines, spill_threshold=64) == lines
    assert relay([], spill_threshold=64) == []


def test_eager_buffer_blocking_mode_with_spill():
    buffer = EagerBuffer(mode="blocking", spill_threshold=32)
    buffer.write_all(["a" * 64, "b" * 64])
    assert buffer.read() is None  # nothing readable before close
    buffer.close()
    assert buffer.drain() == ["a" * 64, "b" * 64]


# ---------------------------------------------------------------------------
# End-to-end: engine streams real files, degenerate framings included
# ---------------------------------------------------------------------------


def _disk_environment():
    return ExecutionEnvironment(filesystem=VirtualFileSystem(allow_real_files=True))


@pytest.mark.parametrize(
    "payload,expected",
    [
        (b"", []),
        (b"solo", ["solo"]),  # no trailing newline
        (b"a\nb\nc\n", ["a", "b", "c"]),
        (b"a\nb", ["a", "b"]),  # newline missing on the final line
        ("é漢\n🎉\n".encode("utf-8"), ["é漢", "🎉"]),
        # \r and \f are line *content* under the stream model's \n framing;
        # both backends must agree (str.splitlines would split them).
        (b"a\rb\nsecond\x0cpart\n", ["a\rb", "second\x0cpart"]),
    ],
)
def test_parallel_backend_streams_real_files(tmp_path, payload, expected):
    """Graph-input files stream from disk in the worker, byte-exact."""
    path = tmp_path / "input.txt"
    path.write_bytes(payload)
    script = f"cat {path} | grep ''"
    config = PashConfig(width=1, streaming=StreamingConfig(chunk_size=3, spill_threshold=8))

    sequential = api.run(script, backend="interpreter", environment=_disk_environment())
    parallel = api.run(
        script, config=config, backend="parallel", environment=_disk_environment()
    )
    assert parallel.stdout == sequential.stdout == expected


def test_cat_of_unterminated_file_does_not_merge_lines(tmp_path):
    """`cat a b` must keep a's unterminated last line separate from b."""
    first = tmp_path / "first.txt"
    second = tmp_path / "second.txt"
    first.write_bytes(b"alpha\nbeta")  # no trailing newline
    second.write_bytes(b"gamma\n")
    script = f"cat {first} {second}"
    config = PashConfig(width=1, streaming=StreamingConfig(chunk_size=4))

    sequential = api.run(script, backend="interpreter", environment=_disk_environment())
    parallel = api.run(
        script, config=config, backend="parallel", environment=_disk_environment()
    )
    assert parallel.stdout == sequential.stdout == ["alpha", "beta", "gamma"]


def test_large_graph_output_travels_through_spill_file():
    """Graph outputs past the spill threshold go via disk, not the queue."""
    lines = [f"record {i:05d}" for i in range(3_000)]  # ~39 KB framed
    env = ExecutionEnvironment(filesystem=VirtualFileSystem({"in.txt": lines}))
    config = PashConfig(width=1, streaming=StreamingConfig(spill_threshold=1024))

    result = api.run(
        "cat in.txt | grep record > out.txt",
        config=config,
        backend="parallel",
        environment=env,
    )
    assert result.output_of("out.txt") == lines
    assert result.metrics.total_spilled_bytes > 0
    assert result.metrics.peak_buffered_bytes <= 1024


def test_spill_metrics_surface_per_node():
    lines = ["z" * 100 for _ in range(2_000)]
    env = ExecutionEnvironment(filesystem=VirtualFileSystem({"in.txt": lines}))
    config = PashConfig(width=1, streaming=StreamingConfig(spill_threshold=2048))
    result = api.run(
        "cat in.txt | sort > out.txt", config=config, backend="parallel", environment=env
    )
    assert result.output_of("out.txt") == sorted(lines)
    by_label = {node.label: node for node in result.metrics.nodes}
    # sort materializes, so its eager pump must have absorbed (and spilled)
    # the whole stream while staying under the in-memory bound.
    assert by_label["sort"].spilled_bytes > 0
    assert by_label["sort"].peak_buffered_bytes <= 2048
    assert "spilled" in result.metrics.summary()


# ---------------------------------------------------------------------------
# Cross-backend equivalence with streaming knobs turned all the way down
# ---------------------------------------------------------------------------


CROSS_BACKEND_SCRIPT = "cat in1.txt in2.txt | tr A-Z a-z | grep light | sort > out.txt"


def _cross_env():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(
            {
                "in1.txt": ["Hello LIGHT", "dark matter", "light émitter", ""],
                "in2.txt": ["LIGHT speed", "héavy", "light"],
            }
        )
    )


@pytest.mark.parametrize("width", [2, 4])
def test_backends_identical_with_aggressive_streaming(width):
    config = PashConfig.paper_default(
        width, streaming=StreamingConfig(chunk_size=5, spill_threshold=16)
    )
    compiled = api.Pash.compile(CROSS_BACKEND_SCRIPT, config)
    outputs = {}
    for backend in engine.available_backends():
        result = compiled.execute(backend=backend, environment=_cross_env())
        outputs[backend] = result.output_of("out.txt")
    assert outputs["parallel"] == outputs["interpreter"]
    assert outputs["shell"] == outputs["interpreter"]


def test_streaming_config_round_trips_through_dicts():
    config = PashConfig(
        width=3,
        streaming=StreamingConfig(chunk_size=1024, spill_threshold=4096, spill_directory="/tmp"),
    )
    payload = config.to_dict()
    assert payload["streaming"] == {
        "chunk_size": 1024,
        "spill_threshold": 4096,
        "spill_directory": "/tmp",
    }
    restored = PashConfig.from_dict(payload)
    assert restored == config
    assert restored.scheduler_options().spill_threshold == 4096
    assert restored.scheduler_options().chunk_size == 1024


def test_streaming_config_rejects_unknown_fields():
    with pytest.raises(ValueError):
        PashConfig.from_dict({"streaming": {"bogus": 1}})


def test_encode_decode_inverse_still_holds():
    assert decode_lines(encode_lines(UNICODE_LINES)) == UNICODE_LINES
