"""Metrics serialization: the stable to_dict/from_dict JSON schema."""

import dataclasses
import json

import pytest

from repro.engine.metrics import EngineMetrics, NodeMetrics


def node(**overrides):
    values = dict(
        node_id=3, label="grep foo", kind="command", pid=1234,
        wall_seconds=0.25, compute_seconds=0.1, reused_worker=True,
        bytes_in=100, bytes_out=40, lines_in=10, lines_out=4,
        host_command=False, peak_buffered_bytes=64, spilled_bytes=0,
        spill_events=0,
    )
    values.update(overrides)
    return NodeMetrics(**values)


def test_node_metrics_round_trips_through_json():
    original = node()
    payload = json.loads(json.dumps(original.to_dict()))
    assert NodeMetrics.from_dict(payload) == original


def test_node_metrics_schema_is_exactly_the_fields():
    expected = {field.name for field in dataclasses.fields(NodeMetrics)}
    assert set(node().to_dict()) == expected


def test_node_metrics_rejects_unknown_keys():
    payload = node().to_dict()
    payload["surprise"] = 1
    with pytest.raises(ValueError, match="unknown NodeMetrics fields: surprise"):
        NodeMetrics.from_dict(payload)


def engine_metrics():
    return EngineMetrics(
        backend="parallel",
        elapsed_seconds=0.5,
        nodes=[node(), node(node_id=4, pid=1235, reused_worker=False)],
        processes_spawned=1,
        processes_reused=1,
        spawn_seconds=0.01,
        stages_fused=1,
        commands_fused=2,
        relays_elided=1,
        edges_direct=2,
        edges_buffered=1,
    )


def test_engine_metrics_round_trips_through_json():
    original = engine_metrics()
    payload = json.loads(json.dumps(original.to_dict()))
    restored = EngineMetrics.from_dict(payload)
    assert restored == original
    # A second trip is byte-stable (the schema is deterministic).
    assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
        original.to_dict(), sort_keys=True
    )


def test_engine_metrics_derived_block_matches_properties():
    metrics = engine_metrics()
    derived = metrics.to_dict()["derived"]
    assert derived["worker_count"] == metrics.worker_count == 2
    assert derived["total_bytes_moved"] == metrics.total_bytes_moved == 200
    assert derived["total_node_seconds"] == pytest.approx(0.5)
    assert derived["worker_utilization"] == pytest.approx(metrics.worker_utilization)


def test_engine_metrics_from_dict_ignores_derived_and_rejects_unknown():
    payload = engine_metrics().to_dict()
    assert EngineMetrics.from_dict(payload) == engine_metrics()
    payload["bogus"] = True
    with pytest.raises(ValueError, match="unknown EngineMetrics fields: bogus"):
        EngineMetrics.from_dict(payload)
