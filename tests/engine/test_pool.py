"""The persistent worker pool: reuse, fallbacks, spawn support, teardown."""

import multiprocessing
import os

import pytest

from repro import api
from repro.api import Pash, PashConfig
from repro.dfg.builder import DFGBuilder
from repro.engine.pool import WorkerPool, resolve_context
from repro.engine.scheduler import (
    ParallelScheduler,
    SchedulerOptions,
    execute_graph_parallel,
)
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem

FILES = {
    "a.txt": ["banana", "apple foo", "cherry FOO"],
    "b.txt": ["date foo", "elderberry", "fig foo"],
}

SCRIPT = "cat a.txt b.txt | grep foo | sort > out.txt"


def environment(files=FILES):
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in files.items()})
    )


def build(script=SCRIPT):
    return DFGBuilder().build_from_script(script)


@pytest.fixture
def pool():
    pool = WorkerPool(start_method="fork")
    yield pool
    pool.shutdown()


# ---------------------------------------------------------------------------
# Reuse
# ---------------------------------------------------------------------------


def test_second_run_reuses_worker_processes(pool):
    options = SchedulerOptions(report_timeout_seconds=30)
    scheduler = ParallelScheduler(environment(), options, pool=pool)
    _, first = scheduler.execute(build())
    assert first.processes_spawned == len(first.nodes)
    assert first.processes_reused == 0

    scheduler = ParallelScheduler(environment(), options, pool=pool)
    result, second = scheduler.execute(build())
    assert result.files["out.txt"] == ["apple foo", "date foo", "fig foo"]
    assert second.processes_spawned == 0
    assert second.processes_reused == len(second.nodes)
    # The same OS processes served both runs.
    assert {node.pid for node in second.nodes} <= {node.pid for node in first.nodes}
    assert all(node.reused_worker for node in second.nodes)


def test_warm_pool_attribution_and_span_pids_stay_consistent(pool):
    """Regression: attribution counters and span pids agree on a warm re-run.

    The second run on a warm pool must spawn zero processes, reuse one per
    node, mark every ``NodeMetrics.reused_worker``, stamp matching spawn
    accounting (near-zero spawn time), and — with tracing on — ship worker
    spans whose pids are exactly the pool's worker pids and whose
    ``reused_worker`` attribute agrees with the metrics.
    """
    from repro.obs.tracer import Tracer

    options = SchedulerOptions(report_timeout_seconds=30)
    tracer = Tracer()
    scheduler = ParallelScheduler(environment(), options, pool=pool, tracer=tracer)
    _, first = scheduler.execute(build())
    assert first.processes_spawned == len(first.nodes)
    assert first.processes_reused == 0

    mark = tracer.mark()
    scheduler = ParallelScheduler(environment(), options, pool=pool, tracer=tracer)
    _, second = scheduler.execute(build())
    assert second.processes_spawned == 0
    assert second.processes_reused == len(second.nodes)
    assert all(node.reused_worker for node in second.nodes)
    # Spawn time on the warm run only covers the (empty) growth check.
    assert second.spawn_seconds < first.spawn_seconds or first.spawn_seconds == 0

    worker_spans = [
        span for span in tracer.since(mark) if span.category == "worker"
    ]
    assert len(worker_spans) == len(second.nodes)
    pool_pids = set(pool.worker_pids())
    metric_pids = {node.pid for node in second.nodes}
    assert {span.pid for span in worker_spans} == metric_pids <= pool_pids
    assert all(span.attributes["reused_worker"] for span in worker_spans)
    # Span counters mirror the node metrics they were measured alongside.
    by_node = {span.attributes["node_id"]: span for span in worker_spans}
    for node in second.nodes:
        span = by_node[node.node_id]
        assert span.attributes["bytes_in"] == node.bytes_in
        assert span.attributes["bytes_out"] == node.bytes_out


def test_pool_grows_for_wider_graphs_and_keeps_workers(pool):
    options = SchedulerOptions(report_timeout_seconds=30)
    ParallelScheduler(environment(), options, pool=pool).execute(build())
    small = pool.worker_count
    wide = build("cat a.txt b.txt | grep foo | tr a-z A-Z | sort > out.txt")
    from repro.api import optimize  # noqa: PLC0415 - test-local import

    optimize(wide, PashConfig.paper_default(4))
    ParallelScheduler(environment(), options, pool=pool).execute(wide)
    assert pool.worker_count >= small
    assert pool.processes_spawned >= small


def test_disabling_the_pool_forks_per_node():
    options = SchedulerOptions(use_pool=False, report_timeout_seconds=30)
    _, metrics = execute_graph_parallel(build(), environment(), options)
    assert metrics.processes_spawned == len(metrics.nodes)
    assert metrics.processes_reused == 0
    assert not any(node.reused_worker for node in metrics.nodes)


# ---------------------------------------------------------------------------
# Fallbacks
# ---------------------------------------------------------------------------


def test_unpicklable_registry_falls_back_to_dedicated_forks(pool):
    env = environment()
    env.registry = env.registry.copy()
    real_grep = env.registry.lookup("grep").function

    def closure_grep(arguments, inputs):  # closures cannot pickle
        return real_grep(arguments, inputs)

    env.registry.register_function("grep", closure_grep, "unpicklable grep")
    options = SchedulerOptions(report_timeout_seconds=30)
    result, metrics = ParallelScheduler(env, options, pool=pool).execute(build())
    assert result.files["out.txt"] == ["apple foo", "date foo", "fig foo"]
    # Every node ran in a dedicated fork; the pool served none of them.
    assert not any(node.reused_worker for node in metrics.nodes)


def test_worker_pids_stay_distinct_after_a_failed_run(pool):
    """Regression: a failure path must not hand one worker to two nodes.

    Double-releasing a pool worker once put it on the idle list twice; the
    next run then serialized two concurrent nodes on one process, which can
    deadlock.  After any failed run, a subsequent run must still map nodes
    to distinct processes.
    """
    from repro.dfg.edges import EdgeKind
    from repro.dfg.graph import DataflowGraph
    from repro.dfg.nodes import CommandNode

    def bad_graph():
        graph = DataflowGraph()
        failing = graph.add_node(CommandNode(name="unknowncommand123"))
        source = graph.add_edge(kind=EdgeKind.FILE, name="a.txt")
        graph.attach_input(failing, source)
        sink = graph.add_edge(kind=EdgeKind.FILE, name="out.txt")
        graph.attach_output(failing, sink)
        return graph

    options = SchedulerOptions(report_timeout_seconds=30)
    for _ in range(2):
        with pytest.raises(ExecutionError):
            ParallelScheduler(environment(), options, pool=pool).execute(bad_graph())
    graph = build()
    _, metrics = ParallelScheduler(environment(), options, pool=pool).execute(graph)
    pids = [node.pid for node in metrics.nodes]
    assert len(pids) == len(set(pids)) == len(graph.nodes)


def test_fork_unavailable_warns_once_and_falls_back(monkeypatch):
    import repro.engine.pool as pool_module

    real_get_context = multiprocessing.get_context

    def no_fork(method=None):
        if method == "fork":
            raise ValueError("cannot find context for 'fork'")
        return real_get_context(method)

    monkeypatch.setattr(pool_module.multiprocessing, "get_context", no_fork)
    monkeypatch.setattr(pool_module, "_warned_methods", set())
    with pytest.warns(RuntimeWarning, match="start method 'fork' is unavailable"):
        context = resolve_context("fork")
    assert context.get_start_method() in ("spawn", "forkserver", "fork")
    # Second resolution is silent (warn-once).
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        resolve_context("fork")


def test_pool_executes_under_spawn_start_method():
    """SCM_RIGHTS fd passing + registry re-registration: no fork needed."""
    pool = WorkerPool(start_method="spawn")
    try:
        options = SchedulerOptions(start_method="spawn", report_timeout_seconds=60)
        result, metrics = ParallelScheduler(environment(), options, pool=pool).execute(
            build()
        )
        assert result.files["out.txt"] == ["apple foo", "date foo", "fig foo"]
        assert metrics.processes_spawned == len(metrics.nodes)
    finally:
        pool.shutdown()


def test_spawn_without_pool_is_a_loud_error():
    options = SchedulerOptions(
        start_method="spawn", use_pool=False, report_timeout_seconds=30
    )
    with pytest.raises(ExecutionError, match="worker pool"):
        execute_graph_parallel(build(), environment(), options)


# ---------------------------------------------------------------------------
# Sessions and teardown
# ---------------------------------------------------------------------------


def test_pash_session_owns_and_closes_its_pool():
    config = PashConfig.paper_default(2, backend="parallel")
    with Pash(config) as pash:
        first = pash.run(SCRIPT, environment=environment())
        second = pash.run(SCRIPT, environment=environment())
        assert second.metrics.processes_reused > 0
        session_pool = pash._pool
        assert session_pool is not None and session_pool.worker_count > 0
    assert session_pool.closed
    assert session_pool.worker_count == 0
    assert pash._pool is None


def test_non_session_runs_share_the_default_pool():
    first = api.run(
        SCRIPT, config=PashConfig.paper_default(2), backend="parallel",
        environment=environment(),
    )
    second = api.run(
        SCRIPT, config=PashConfig.paper_default(2), backend="parallel",
        environment=environment(),
    )
    assert second.metrics.processes_reused == len(second.metrics.nodes)
    assert {n.pid for n in second.metrics.nodes} <= {n.pid for n in first.metrics.nodes}


def test_shutdown_is_idempotent_and_blocks_dispatch(pool):
    pool.prewarm(1)
    pool.shutdown()
    pool.shutdown()
    assert pool.closed
    with pytest.raises(RuntimeError):
        pool.ensure_idle(1)


def test_concurrent_runs_on_the_shared_pool_serialize_safely():
    """Regression: one pool = one report queue; interleaved runs must not
    steal each other's reports (they serialize on the pool's run lock)."""
    import threading

    outcomes = {}

    def run(key):
        result = api.run(
            SCRIPT, config=PashConfig.paper_default(2), backend="parallel",
            environment=environment(),
        )
        outcomes[key] = result.output_of("out.txt")

    threads = [threading.Thread(target=run, args=(index,)) for index in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert outcomes == {index: ["apple foo", "date foo", "fig foo"] for index in range(3)}


def test_explicit_scalar_overrides_survive_config_derived_options():
    """Regression: execute(..., spill_threshold=N) must win over the
    config-derived SchedulerOptions instead of being silently dropped."""
    compiled = Pash(PashConfig.paper_default(2)).compile(SCRIPT)
    from repro.engine.api import ParallelBackend

    backend = ParallelBackend(
        options=PashConfig.paper_default(2).scheduler_options(), spill_threshold=123
    )
    assert backend.options.spill_threshold == 123
    result = compiled.execute(
        backend="parallel", environment=environment(), spill_threshold=1 << 20
    )
    assert result.output_of("out.txt") == ["apple foo", "date foo", "fig foo"]


def test_jobs_config_prewarms_and_zero_disables():
    options = PashConfig(jobs=3).scheduler_options()
    assert options.pool_size == 3 and options.use_pool
    options = PashConfig(jobs=0).scheduler_options()
    assert not options.use_pool


# ---------------------------------------------------------------------------
# Data-plane rationalization metrics
# ---------------------------------------------------------------------------


def test_relays_elided_and_edges_classified(pool):
    graph = build("cat a.txt b.txt | grep foo | tr a-z A-Z | sort > out.txt")
    from repro.api import optimize  # noqa: PLC0415 - test-local import

    optimize(graph, PashConfig.paper_default(2))
    options = SchedulerOptions(report_timeout_seconds=30)
    result, metrics = ParallelScheduler(environment(), options, pool=pool).execute(graph)
    expected = ["APPLE FOO", "DATE FOO", "FIG FOO"]
    assert result.files["out.txt"] == expected
    assert metrics.relays_elided > 0
    assert metrics.edges_buffered > 0  # the fan-in aggregation still pumps
    # Elided relays report no per-node metrics: every entry is a real worker.
    assert len(metrics.nodes) == len(graph.nodes) - metrics.relays_elided
    assert os.getpid() not in {node.pid for node in metrics.nodes}


def test_pump_policy_all_reproduces_buffered_edges(pool):
    graph = build()
    options = SchedulerOptions(pump_policy="all", report_timeout_seconds=30)
    result, metrics = ParallelScheduler(environment(), options, pool=pool).execute(graph)
    assert result.files["out.txt"] == ["apple foo", "date foo", "fig foo"]
    assert metrics.edges_direct == 0
    assert metrics.edges_buffered > 0
