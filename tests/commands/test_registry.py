"""Tests for the command registry and registry-level invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.annotations.library import standard_library
from repro.commands import CommandError, CommandRegistry, standard_registry
from repro.commands.base import CommandImplementation, concat_streams, flag_value, has_flag


def test_standard_registry_contains_evaluation_commands():
    registry = standard_registry()
    for name in (
        "cat", "grep", "tr", "cut", "sed", "sort", "uniq", "wc", "head", "tail",
        "comm", "tac", "xargs", "awk", "diff", "sha1sum",
        "html-to-text", "url-extract", "word-stem", "fetch-station", "fetch-page",
    ):
        assert name in registry


def test_lookup_by_path():
    registry = standard_registry()
    assert registry.lookup("/usr/bin/grep").name == "grep"


def test_lookup_unknown_raises():
    with pytest.raises(CommandError):
        standard_registry().lookup("no-such-command")


def test_run_dispatches():
    assert standard_registry().run("tr", ["a", "b"], [["abc"]]) == ["bbc"]


def test_register_function_and_copy():
    registry = CommandRegistry()
    registry.register_function("shout", lambda args, inputs: [line.upper() for line in inputs[0]])
    assert registry.run("shout", [], [["hi"]]) == ["HI"]
    clone = registry.copy()
    clone.register_function("whisper", lambda args, inputs: inputs[0])
    assert "whisper" not in registry


def test_every_parallelizable_annotated_command_with_impl_is_runnable():
    """Commands annotated as data-parallelizable and registered must run."""
    registry = standard_registry()
    library = standard_library()
    checked = 0
    for name in library.commands():
        if name not in registry:
            continue
        if not library.classify(name, []).is_data_parallelizable:
            continue
        implementation = registry.lookup(name)
        assert isinstance(implementation, CommandImplementation)
        checked += 1
    assert checked >= 15


# ---------------------------------------------------------------------------
# base helpers
# ---------------------------------------------------------------------------


def test_has_flag_exact_and_combined():
    assert has_flag(["-r", "-n"], "-n")
    assert has_flag(["-rn"], "-n")
    assert not has_flag(["--name"], "-n")
    assert not has_flag(["value"], "-n")


def test_flag_value_forms():
    assert flag_value(["-n", "5"], "-n") == "5"
    assert flag_value(["-n5"], "-n") == "5"
    assert flag_value(["--width=3"], "--width") == "3"
    assert flag_value(["-x"], "-n", default="7") == "7"


def test_concat_streams_order():
    assert concat_streams([["a"], [], ["b", "c"]]) == ["a", "b", "c"]


@given(st.lists(st.text(alphabet="abc ", max_size=8), max_size=30))
def test_grep_then_concat_equals_concat_then_grep(lines):
    """Stateless law: grep(x ++ y) == grep(x) ++ grep(y)."""
    registry = standard_registry()
    half = len(lines) // 2
    first, second = lines[:half], lines[half:]
    combined = registry.run("grep", ["a"], [lines])
    split = registry.run("grep", ["a"], [first]) + registry.run("grep", ["a"], [second])
    assert combined == split
