"""Tests for sort, uniq, comm, join, paste, nl, tsort."""

import pytest

from repro.commands import sorting
from repro.commands.base import CommandError


# ---------------------------------------------------------------------------
# sort
# ---------------------------------------------------------------------------


def test_sort_lexicographic():
    assert sorting.sort_command([], [["b", "a", "c"]]) == ["a", "b", "c"]


def test_sort_reverse():
    assert sorting.sort_command(["-r"], [["b", "a", "c"]]) == ["c", "b", "a"]


def test_sort_numeric():
    assert sorting.sort_command(["-n"], [["10", "9", "100"]]) == ["9", "10", "100"]


def test_sort_reverse_numeric_combined_flag():
    assert sorting.sort_command(["-rn"], [["10", "9", "100"]]) == ["100", "10", "9"]


def test_sort_unique():
    assert sorting.sort_command(["-u"], [["b", "a", "b"]]) == ["a", "b"]


def test_sort_key_field():
    data = ["apple 3", "banana 1", "cherry 2"]
    assert sorting.sort_command(["-k", "2", "-n"], [data]) == [
        "banana 1",
        "cherry 2",
        "apple 3",
    ]


def test_sort_merge_of_sorted_runs():
    out = sorting.sort_command(["-m"], [["a", "c"], ["b", "d"]])
    assert out == ["a", "b", "c", "d"]


def test_sort_merge_respects_reverse_numeric():
    out = sorting.sort_command(["-m", "-rn"], [["9", "3"], ["8", "1"]])
    assert out == ["9", "8", "3", "1"]


def test_sort_concatenates_multiple_inputs():
    assert sorting.sort_command([], [["c"], ["a"], ["b"]]) == ["a", "b", "c"]


def test_sort_stability_equivalence_with_python_sorted():
    data = ["b", "a", "c", "a"]
    assert sorting.sort_command([], [data]) == sorted(data)


# ---------------------------------------------------------------------------
# uniq
# ---------------------------------------------------------------------------


def test_uniq_collapses_adjacent():
    assert sorting.uniq([], [["a", "a", "b", "a"]]) == ["a", "b", "a"]


def test_uniq_count_format():
    out = sorting.uniq(["-c"], [["a", "a", "b"]])
    assert out == ["      2 a", "      1 b"]


def test_uniq_duplicates_only():
    assert sorting.uniq(["-d"], [["a", "a", "b"]]) == ["a"]


def test_uniq_ignore_case():
    assert sorting.uniq(["-i"], [["A", "a", "b"]]) == ["A", "b"]


def test_uniq_empty_input():
    assert sorting.uniq([], [[]]) == []


# ---------------------------------------------------------------------------
# comm
# ---------------------------------------------------------------------------


def test_comm_three_columns():
    out = sorting.comm([], [["a", "b", "c"], ["b", "c", "d"]])
    assert out == ["a", "\t\tb", "\t\tc", "\td"]


def test_comm_suppress_first_and_third():
    out = sorting.comm(["-1", "-3"], [["a", "b"], ["b", "c"]])
    assert out == ["c"]


def test_comm_suppress_second_and_third():
    out = sorting.comm(["-2", "-3"], [["a", "b"], ["b", "c"]])
    assert out == ["a"]


def test_comm_combined_flags():
    out = sorting.comm(["-13"], [["a", "b"], ["b", "c"]])
    assert out == ["c"]


def test_comm_requires_two_inputs():
    with pytest.raises(CommandError):
        sorting.comm([], [["a"]])


# ---------------------------------------------------------------------------
# join / paste / nl / tsort
# ---------------------------------------------------------------------------


def test_join_on_first_field():
    out = sorting.join([], [["1 a", "2 b"], ["1 x", "3 y"]])
    assert out == ["1 a x"]


def test_join_requires_two_inputs():
    with pytest.raises(CommandError):
        sorting.join([], [["1 a"]])


def test_paste_parallel_lines():
    out = sorting.paste([], [["a", "b"], ["1", "2"]])
    assert out == ["a\t1", "b\t2"]


def test_paste_custom_delimiter_and_uneven_inputs():
    out = sorting.paste(["-d", ","], [["a", "b", "c"], ["1"]])
    assert out == ["a,1", "b,", "c,"]


def test_paste_serial():
    assert sorting.paste(["-s"], [["a", "b"], ["1", "2"]]) == ["a\tb", "1\t2"]


def test_nl_numbers_nonempty_lines():
    out = sorting.nl([], [["x", "", "y"]])
    assert out[0].endswith("\tx") and out[1] == "" and out[2].endswith("\ty")
    assert out[0].strip().startswith("1")
    assert out[2].strip().startswith("2")


def test_tsort_orders_dependencies():
    out = sorting.tsort([], [["a b", "b c"]])
    assert out.index("a") < out.index("b") < out.index("c")


def test_tsort_cycle_raises():
    with pytest.raises(CommandError):
        sorting.tsort([], [["a b", "b a"]])


def test_tsort_odd_tokens_raises():
    with pytest.raises(CommandError):
        sorting.tsort([], [["a b c"]])
