"""Tests for cat/head/tail/tac/wc/seq/hashing and the custom use-case commands."""

import pytest

from repro.commands import misc
from repro.commands.base import CommandError


def test_cat_concatenates_in_order():
    assert misc.cat([], [["a"], ["b", "c"]]) == ["a", "b", "c"]


def test_cat_numbering():
    out = misc.cat(["-n"], [["x", "y"]])
    assert out[0].strip().startswith("1") and out[0].endswith("x")


def test_head_default_and_explicit():
    data = [[str(i) for i in range(20)]]
    assert misc.head([], data) == [str(i) for i in range(10)]
    assert misc.head(["-n", "3"], data) == ["0", "1", "2"]
    assert misc.head(["-n3"], data) == ["0", "1", "2"]


def test_tail_default_and_skip_form():
    data = [[str(i) for i in range(20)]]
    assert misc.tail(["-n", "2"], data) == ["18", "19"]
    assert misc.tail(["-n", "+19"], data) == ["18", "19"]
    assert misc.tail(["-n+2"], [["a", "b", "c"]]) == ["b", "c"]


def test_tac_reverses_lines():
    assert misc.tac([], [["a", "b", "c"]]) == ["c", "b", "a"]


def test_wc_counts():
    assert misc.wc(["-l"], [["a b", "c"]]) == ["2"]
    assert misc.wc(["-w"], [["a b", "c"]]) == ["3"]
    assert misc.wc(["-lw"], [["a b", "c"]]) == ["2 3"]
    lines, words, chars = misc.wc([], [["ab", "c"]])[0].split()
    assert (lines, words) == ("2", "2")
    assert int(chars) == 5  # "ab\n" + "c\n"


def test_seq_forms():
    assert misc.seq(["3"], []) == ["1", "2", "3"]
    assert misc.seq(["2", "4"], []) == ["2", "3", "4"]
    assert misc.seq(["1", "2", "5"], []) == ["1", "3", "5"]
    assert misc.seq(["3", "-1", "1"], []) == ["3", "2", "1"]


def test_seq_invalid_arity():
    with pytest.raises(CommandError):
        misc.seq([], [])


def test_echo_joins_operands():
    assert misc.echo(["hello", "world"], []) == ["hello world"]


def test_basename_and_dirname():
    assert misc.basename(["/usr/bin/sort"], []) == ["sort"]
    assert misc.basename(["/x/y/file.txt", ".txt"], []) == ["file"]
    assert misc.dirname(["/usr/bin/sort"], []) == ["/usr/bin"]
    assert misc.dirname(["plain"], []) == ["."]
    assert misc.basename([], [["/a/b", "/c/d/"]]) == ["b", "d"]


def test_sha1sum_is_deterministic_and_input_sensitive():
    first = misc.sha1sum([], [["hello"]])
    second = misc.sha1sum([], [["hello"]])
    different = misc.sha1sum([], [["goodbye"]])
    assert first == second
    assert first != different
    assert first[0].endswith("  -")


def test_md5sum_format():
    digest = misc.md5sum([], [["x"]])[0]
    assert len(digest.split()[0]) == 32


def test_diff_reports_changes():
    out = misc.diff_command([], [["a", "b"], ["a", "c"]])
    assert "-b" in out and "+c" in out


def test_diff_identical_inputs_is_empty():
    assert misc.diff_command([], [["a"], ["a"]]) == []


def test_diff_requires_two_inputs():
    with pytest.raises(CommandError):
        misc.diff_command([], [["a"]])


# ---------------------------------------------------------------------------
# Custom annotated commands
# ---------------------------------------------------------------------------


def test_html_to_text_strips_tags():
    out = misc.html_to_text([], [["<p>Hello <b>world</b></p>", "<br/>"]])
    assert out == ["Hello world"]


def test_url_extract():
    out = misc.url_extract([], [["see https://example.org/x and http://a.b/c."]])
    assert out[0].startswith("https://example.org/x")
    assert len(out) == 2


def test_word_stem_lowercases_and_strips_suffixes():
    assert misc.word_stem([], [["Running dogs walked"]]) == ["runn dog walk"]


def test_strip_punct():
    assert misc.strip_punct([], [["a,b.c!"]]) == ["abc"]


def test_lowercase():
    assert misc.lowercase([], [["MiXeD"]]) == ["mixed"]


def test_bigrams_per_line():
    assert misc.bigrams([], [["a b c", "x y"]]) == ["a b", "b c", "x y"]


def test_trigrams_cross_lines():
    assert misc.trigrams([], [["a b", "c d"]]) == ["a b c", "b c d"]


def test_fetch_station_is_deterministic():
    first = misc.fetch_station(["2015/station-1"], [])
    second = misc.fetch_station(["2015/station-1"], [])
    assert first == second
    assert len(first) > 0


def test_fetch_station_reads_identifiers_from_stream():
    out = misc.fetch_station([], [["2015/a", "2015/b"]])
    assert len(out) == 2 * len(misc.fetch_station(["2015/a"], []))


def test_fetch_page_produces_html():
    lines = misc.fetch_page(["https://example.org/wiki/page-1"], [])
    assert lines[0].startswith("<html>")
    assert lines[-1].endswith("</html>")
