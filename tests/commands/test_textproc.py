"""Tests for grep, tr, cut, sed, awk, and friends."""

import pytest

from repro.commands import textproc
from repro.commands.base import CommandError


# ---------------------------------------------------------------------------
# grep
# ---------------------------------------------------------------------------


def test_grep_basic_filter():
    assert textproc.grep(["foo"], [["foo bar", "baz", "xfoox"]]) == ["foo bar", "xfoox"]


def test_grep_case_insensitive():
    assert textproc.grep(["-i", "foo"], [["FOO", "bar"]]) == ["FOO"]


def test_grep_invert():
    assert textproc.grep(["-v", "foo"], [["foo", "bar"]]) == ["bar"]


def test_grep_combined_iv():
    assert textproc.grep(["-iv", "foo"], [["FOO", "bar"]]) == ["bar"]


def test_grep_count():
    assert textproc.grep(["-c", "a"], [["a", "b", "aa"]]) == ["2"]


def test_grep_whole_line():
    assert textproc.grep(["-x", "abc"], [["abc", "abcd"]]) == ["abc"]


def test_grep_word_match():
    assert textproc.grep(["-w", "cat"], [["cat dog", "category"]]) == ["cat dog"]


def test_grep_fixed_string():
    assert textproc.grep(["-F", "a.b"], [["a.b", "axb"]]) == ["a.b"]


def test_grep_regex():
    assert textproc.grep(["li.*da"], [["light and dark", "dark and light"]]) == ["light and dark"]


def test_grep_multiple_inputs_in_order():
    out = textproc.grep(["x"], [["x1", "y"], ["x2"]])
    assert out == ["x1", "x2"]


def test_grep_requires_pattern():
    with pytest.raises(CommandError):
        textproc.grep([], [["a"]])


def test_grep_bad_regex_raises():
    with pytest.raises(CommandError):
        textproc.grep(["("], [["a"]])


# ---------------------------------------------------------------------------
# tr
# ---------------------------------------------------------------------------


def test_tr_simple_translation():
    assert textproc.tr(["a", "b"], [["abc", "aaa"]]) == ["bbc", "bbb"]


def test_tr_range_translation():
    assert textproc.tr(["A-Z", "a-z"], [["HeLLo"]]) == ["hello"]


def test_tr_delete():
    assert textproc.tr(["-d", "aeiou"], [["banana split"]]) == ["bnn splt"]


def test_tr_squeeze():
    assert textproc.tr(["-s", " "], [["a   b  c"]]) == ["a b c"]


def test_tr_space_to_newline_splits_lines():
    assert textproc.tr([" ", "\\n"], [["a b c"]]) == ["a", "b", "c"]


def test_tr_complement_squeeze_word_split():
    out = textproc.tr(["-cs", "A-Za-z", "\\n"], [["one two,three"]])
    assert out == ["one", "two", "three"]


def test_tr_punct_class_delete():
    assert textproc.tr(["-d", "[:punct:]"], [["a,b.c!"]]) == ["abc"]


def test_tr_empty_input():
    assert textproc.tr(["a", "b"], [[]]) == []


# ---------------------------------------------------------------------------
# cut
# ---------------------------------------------------------------------------


def test_cut_fields():
    assert textproc.cut(["-d", " ", "-f", "2"], [["a b c", "x y z"]]) == ["b", "y"]


def test_cut_field_ranges():
    assert textproc.cut(["-d", ",", "-f", "1,3"], [["a,b,c,d"]]) == ["a,c"]


def test_cut_characters():
    assert textproc.cut(["-c", "2-4"], [["abcdef"]]) == ["bcd"]


def test_cut_missing_delimiter_passes_line_through():
    assert textproc.cut(["-d", ",", "-f", "2"], [["no-delimiter"]]) == ["no-delimiter"]


def test_cut_requires_spec():
    with pytest.raises(CommandError):
        textproc.cut([], [["abc"]])


# ---------------------------------------------------------------------------
# sed
# ---------------------------------------------------------------------------


def test_sed_basic_substitution():
    assert textproc.sed(["s/a/b/"], [["banana"]]) == ["bbnana"]


def test_sed_global_substitution():
    assert textproc.sed(["s/a/b/g"], [["banana"]]) == ["bbnbnb"]


def test_sed_custom_delimiter():
    assert textproc.sed(["s;^;prefix/;"], [["file"]]) == ["prefix/file"]


def test_sed_y_transliteration():
    assert textproc.sed(["y/ab/xy/"], [["aabb"]]) == ["xxyy"]


def test_sed_e_flag():
    assert textproc.sed(["-e", "s/a/b/"], [["aaa"]]) == ["baa"]


def test_sed_dash_n_unsupported():
    with pytest.raises(CommandError):
        textproc.sed(["-n", "1p"], [["a"]])


def test_sed_requires_script():
    with pytest.raises(CommandError):
        textproc.sed([], [["a"]])


# ---------------------------------------------------------------------------
# awk subset
# ---------------------------------------------------------------------------


def test_awk_print_column():
    assert textproc.awk(["{print $2}"], [["a b c"]]) == ["b"]


def test_awk_print_column_and_line():
    assert textproc.awk(["{print $2, $0}"], [["5 apples"]]) == ["apples 5 apples"]


def test_awk_print_whole_line():
    assert textproc.awk(["{print}"], [["x y"]]) == ["x y"]


def test_awk_custom_separator():
    assert textproc.awk(["-F", ",", "{print $2}"], [["a,b,c"]]) == ["b"]


def test_awk_unsupported_program_raises():
    with pytest.raises(CommandError):
        textproc.awk(["BEGIN {x=0} {x+=1} END {print x}"], [["a"]])


# ---------------------------------------------------------------------------
# misc stateless helpers
# ---------------------------------------------------------------------------


def test_fold_wraps_lines():
    assert textproc.fold(["-w", "3"], [["abcdefgh"]]) == ["abc", "def", "gh"]


def test_rev_reverses_characters():
    assert textproc.rev([], [["abc", "xy"]]) == ["cba", "yx"]


def test_iconv_drops_non_ascii():
    assert textproc.iconv(["-c"], [["café"]]) == ["caf"]


def test_strings_extracts_printable_runs():
    assert textproc.strings([], [["ab\x00cdefgh"]]) == ["cdefgh"]


def test_expand_tabs():
    assert textproc.expand([], [["a\tb"]]) == ["a       b"]


def test_gunzip_is_passthrough():
    assert textproc.gunzip([], [["data"]]) == ["data"]


# ---------------------------------------------------------------------------
# xargs
# ---------------------------------------------------------------------------


def test_xargs_batches_arguments():
    out = textproc.xargs(["-n", "2", "echo"], [["a", "b", "c"]])
    assert out == ["a b", "c"]


def test_xargs_attached_n_value():
    out = textproc.xargs(["-n1", "echo"], [["a", "b"]])
    assert out == ["a", "b"]


def test_xargs_passes_command_flags():
    out = textproc.xargs(["-n", "1", "grep", "-c", "a"], [["abc"]])
    # grep -c a over the operand file-less batch: the batch becomes operands,
    # so grep treats "abc" as its input file list resolved to nothing; the
    # wrapped call still returns a single count line.
    assert len(out) == 1


def test_xargs_requires_command():
    with pytest.raises(CommandError):
        textproc.xargs(["-n", "1"], [["a"]])
