"""Tests for the performance simulator: speedup shapes, not absolute numbers."""

from repro.dfg.builder import DFGBuilder, translate_script
from repro.simulator.costs import default_cost_model
from repro.simulator.machine import MachineModel
from repro.simulator.simulate import simulate_graph, simulate_script_graphs
from repro.transform.pipeline import ParallelizationConfig, optimize_graph

MACHINE = MachineModel.paper_testbed()


def chunked(total, width, prefix="in"):
    per = total // width
    return {f"{prefix}{i}.txt": per for i in range(width)}


def build(script):
    return DFGBuilder().build_from_script(script)


def simulated_speedup(script, files, width, config=None, cost_model=None):
    baseline = simulate_graph(build(script), files, MACHINE, cost_model=cost_model)
    graph = build(script)
    optimize_graph(graph, config or ParallelizationConfig.paper_default(width))
    parallel = simulate_graph(graph, files, MACHINE, cost_model=cost_model, include_setup=True)
    return baseline.total_seconds / parallel.total_seconds


def test_sequential_pipeline_bounded_by_slowest_stage():
    files = {"in0.txt": 10_000_000}
    result = simulate_graph(build("cat in0.txt | grep x | tr a b | cut -c 1-3"), files, MACHINE)
    # Task parallelism: far less than the sum of per-stage costs.
    assert result.total_seconds < result.work_seconds
    assert result.critical_path_seconds > 0


def test_stateless_pipeline_scales_with_width():
    total = 64_000_000
    speedups = []
    for width in (2, 8, 32):
        files = chunked(total, width)
        script = "cat " + " ".join(files) + " | grep light | tr A-Z a-z > out.txt"
        speedups.append(simulated_speedup(script, files, width))
    assert speedups[0] > 1.5
    assert speedups[0] < speedups[1] < speedups[2]


def test_sort_speedup_saturates():
    total = 96_000_000
    files16 = chunked(total, 16)
    files64 = chunked(total, 64)
    sixteen = simulated_speedup(
        "cat " + " ".join(files16) + " | sort > out.txt", files16, 16
    )
    sixty_four = simulated_speedup(
        "cat " + " ".join(files64) + " | sort > out.txt", files64, 64
    )
    assert sixteen > 3
    # Sort's merge phase limits scaling: 64x is not 4x better than 16x.
    assert sixty_four < sixteen * 2


def test_eager_beats_no_eager_for_sort():
    total = 96_000_000
    files = chunked(total, 16)
    script = "cat " + " ".join(files) + " | sort > out.txt"
    eager = simulated_speedup(script, files, 16, ParallelizationConfig.parallel_only(16))
    lazy = simulated_speedup(script, files, 16, ParallelizationConfig.no_eager(16))
    assert eager > lazy


def test_eager_beats_blocking_eager():
    total = 96_000_000
    files = chunked(total, 16)
    script = "cat " + " ".join(files) + " | sort > out.txt"
    eager = simulated_speedup(script, files, 16, ParallelizationConfig.parallel_only(16))
    blocking = simulated_speedup(script, files, 16, ParallelizationConfig.blocking_eager(16))
    assert eager >= blocking


def test_split_helps_pipelines_with_pure_prefix():
    total = 48_000_000
    files = chunked(total, 16)
    script = (
        "cat " + " ".join(files) + " | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 10 > o.txt"
    )
    with_split = simulated_speedup(script, files, 16, ParallelizationConfig.paper_default(16))
    without_split = simulated_speedup(script, files, 16, ParallelizationConfig.parallel_only(16))
    assert with_split > without_split


def test_tiny_scripts_see_slowdown_from_setup():
    files = {"in0.txt": 500, "in1.txt": 500}
    script = "cat in0.txt in1.txt | grep light | head -n1 > out.txt"
    speedup = simulated_speedup(script, files, 16)
    assert speedup < 1.0


def test_io_bound_script_gets_modest_speedup():
    total = 400_000_000
    files = chunked(total, 16)
    cost_model = default_cost_model().override("grep", seconds_per_line=4e-8)
    script = "cat " + " ".join(files) + " | grep light > out.txt"
    speedup = simulated_speedup(script, files, 16, cost_model=cost_model)
    assert 1.0 < speedup < 6.0


def test_more_processes_cost_more_spawn_time():
    files = chunked(1_000_000, 4)
    script = "cat " + " ".join(files) + " | grep x > out.txt"
    narrow = build(script)
    optimize_graph(narrow, ParallelizationConfig.paper_default(4))
    wide = build(script)
    optimize_graph(wide, ParallelizationConfig.paper_default(4))
    result = simulate_graph(narrow, files, MACHINE, include_setup=True)
    assert result.process_count == len(narrow.nodes)


def test_simulate_script_graphs_accumulates_regions_and_files():
    script = (
        "cat a0.txt a1.txt | tr A-Z a-z | sort > sorted_a.txt\n"
        "cat sorted_a.txt | uniq -c | wc -l > out.txt"
    )
    translation = translate_script(script)
    graphs = [region.dfg for region in translation.regions]
    files = {"a0.txt": 1_000_000, "a1.txt": 1_000_000}
    result = simulate_script_graphs(graphs, files, machine=MACHINE)
    assert result.total_seconds > 0
    assert result.process_count == sum(len(g.nodes) for g in graphs)


def test_speedup_over_helper():
    files = chunked(8_000_000, 8)
    script = "cat " + " ".join(files) + " | grep light > out.txt"
    baseline = simulate_graph(build(script), files, MACHINE)
    graph = build(script)
    optimize_graph(graph, ParallelizationConfig.paper_default(8))
    parallel = simulate_graph(graph, files, MACHINE, include_setup=True)
    assert parallel.speedup_over(baseline) == baseline.total_seconds / parallel.total_seconds
