"""Tests for the cost model and machine model."""

from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, RelayNode, SplitNode
from repro.simulator.costs import CommandCost, CostModel, default_cost_model
from repro.simulator.machine import MachineModel


def test_command_cost_linear_work():
    cost = CommandCost(seconds_per_line=1e-6, startup_seconds=0.0)
    assert cost.work_seconds(1_000_000) == 1.0


def test_command_cost_nlogn_work_grows_superlinearly():
    cost = CommandCost(seconds_per_line=1e-6, complexity="nlogn", startup_seconds=0.0)
    assert cost.work_seconds(1_000_000) > 10 * cost.work_seconds(100_000) / 2


def test_output_lines_selectivity_and_fixed():
    assert CommandCost(selectivity=0.5).output_lines(100) == 50
    assert CommandCost(fixed_output_lines=1).output_lines(100) == 1


def test_default_model_covers_core_commands():
    model = default_cost_model()
    for name in ("grep", "sort", "uniq", "wc", "tr", "cut", "head", "cat"):
        assert name in model.command_costs


def test_sort_is_blocking_and_nlogn():
    model = default_cost_model()
    node = CommandNode(name="sort", arguments=["-rn"])
    cost = model.cost_for(node)
    assert cost.blocking
    assert cost.complexity == "nlogn"


def test_sort_merge_flag_is_streaming():
    model = default_cost_model()
    cost = model.cost_for(CommandNode(name="sort", arguments=["-m"]))
    assert not cost.blocking
    assert cost.complexity == "linear"


def test_head_count_flag_bounds_output():
    model = default_cost_model()
    cost = model.cost_for(CommandNode(name="head", arguments=["-n", "5"]))
    assert cost.fixed_output_lines == 5
    attached = model.cost_for(CommandNode(name="head", arguments=["-n5"]))
    assert attached.fixed_output_lines == 5


def test_grep_count_flag_is_blocking_single_line():
    model = default_cost_model()
    cost = model.cost_for(CommandNode(name="grep", arguments=["-c", "x"]))
    assert cost.blocking and cost.fixed_output_lines == 1


def test_grep_invert_flag_flips_selectivity():
    model = default_cost_model()
    plain = model.cost_for(CommandNode(name="grep", arguments=["x"]))
    inverted = model.cost_for(CommandNode(name="grep", arguments=["-v", "x"]))
    assert abs(plain.selectivity + inverted.selectivity - 1.0) < 0.1


def test_xargs_inherits_wrapped_command_cost():
    model = default_cost_model()
    wrapped = model.cost_for(CommandNode(name="xargs", arguments=["-n", "1", "fetch-station"]))
    direct = model.cost_for(CommandNode(name="fetch-station"))
    assert wrapped.seconds_per_line == direct.seconds_per_line
    assert wrapped.selectivity == direct.selectivity


def test_unknown_command_uses_default_cost():
    model = default_cost_model()
    cost = model.cost_for(CommandNode(name="mystery-tool"))
    assert cost is model.default or cost.seconds_per_line == model.default.seconds_per_line


def test_helper_node_costs():
    model = default_cost_model()
    assert model.cost_for(CatNode()).seconds_per_line < 1e-7
    assert model.cost_for(RelayNode()).seconds_per_line < 1e-7
    assert model.cost_for(SplitNode(strategy="general")).blocking
    assert not model.cost_for(SplitNode(strategy="input-aware")).blocking
    assert model.cost_for(AggregatorNode(aggregator="merge_sort")).blocking


def test_override_returns_new_model():
    model = default_cost_model()
    updated = model.override("grep", seconds_per_line=1.0)
    assert updated.command_costs["grep"].seconds_per_line == 1.0
    assert model.command_costs["grep"].seconds_per_line != 1.0


def test_machine_disk_and_spawn_costs():
    machine = MachineModel(disk_lines_per_second=1000, disk_parallel_scaling=2.0)
    assert machine.disk_seconds(1000, readers=1) == 1.0
    assert machine.disk_seconds(1000, readers=4) == 0.5
    assert machine.spawn_seconds(10) == 10 * machine.process_spawn_seconds


def test_machine_presets():
    assert MachineModel.paper_testbed().cores == 64
    assert MachineModel.laptop().cores < 64
