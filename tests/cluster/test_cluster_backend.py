"""Cluster tier unit tests: sharding policy, edge store, backend semantics."""

import os

import pytest

from repro import engine
from repro.cluster.coordinator import (
    ClusterBackend,
    ClusterCoordinator,
    ClusterOptions,
    EdgeStore,
    remote_eligible,
)
from repro.dfg.builder import DFGBuilder
from repro.dfg.nodes import AggregatorNode, CatNode, CommandNode, SplitNode
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem

FILES = {"a.txt": ["banana", "apple foo"], "b.txt": ["cherry foo", "date"]}
SCRIPT = "cat a.txt b.txt | grep foo | sort > out.txt"


def env():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem({name: list(lines) for name, lines in FILES.items()})
    )


# ---------------------------------------------------------------------------
# Sharding policy
# ---------------------------------------------------------------------------


def test_sharding_policy_matches_statelessness():
    graph = DFGBuilder().build_from_script(SCRIPT)
    verdicts = {node.label(): remote_eligible(node) for node in graph.nodes.values()}
    assert verdicts["grep foo"] is True  # stateless: shards across workers
    assert verdicts["sort"] is False  # needs the whole stream: stays local
    assert verdicts["cat"] is False  # fan-in point: stays local


def test_structural_nodes_stay_on_coordinator():
    assert not remote_eligible(SplitNode(node_id=1))
    assert not remote_eligible(CatNode(node_id=2))
    assert not remote_eligible(AggregatorNode(node_id=3, aggregator="sort -m"))


# ---------------------------------------------------------------------------
# EdgeStore
# ---------------------------------------------------------------------------


def test_edge_store_memory_roundtrip(tmp_path):
    store = EdgeStore(directory=str(tmp_path))
    try:
        store.put_lines(1, ["alpha", "beta"])
        assert store.has(1)
        assert store.lines(1) == ["alpha", "beta"]
        assert b"".join(store.frames(1)) == b"alpha\nbeta\n"
    finally:
        store.close()


def test_edge_store_spills_past_threshold(tmp_path):
    store = EdgeStore(spill_threshold=8, directory=str(tmp_path))
    try:
        lines = [f"line {i}" for i in range(100)]
        store.put_lines(1, lines)
        assert store._spilled and not store._memory
        assert store.lines(1) == lines
    finally:
        store.close()


def test_edge_sink_commit_and_abandon(tmp_path):
    store = EdgeStore(spill_threshold=4, directory=str(tmp_path))
    try:
        sink = store.sink(5)
        sink.write(b"one\ntwo\n")  # beyond threshold: goes to a spill file
        sink.commit()
        assert store.lines(5) == ["one", "two"]

        abandoned = store.sink(6)
        abandoned.write(b"partial\n")
        abandoned.abandon()
        assert not store.has(6)
    finally:
        store.close()


def test_store_directory_removed_on_close(tmp_path):
    store = EdgeStore(directory=str(tmp_path))
    directory = store.directory
    assert os.path.isdir(directory)
    store.close()
    assert not os.path.exists(directory)


# ---------------------------------------------------------------------------
# Backend semantics
# ---------------------------------------------------------------------------


def test_cluster_registered_as_backend():
    assert "cluster" in engine.available_backends()
    backend = engine.create_backend("cluster", workers=3)
    assert isinstance(backend, ClusterBackend)
    assert backend.options.workers == 3


def test_cluster_run_matches_interpreter_and_uses_workers():
    graph = DFGBuilder().build_from_script(SCRIPT)
    expected = engine.run(graph, backend="interpreter", environment=env())
    graph = DFGBuilder().build_from_script(SCRIPT)
    result = engine.run(graph, backend="cluster", environment=env())
    assert result.output_of("out.txt") == expected.output_of("out.txt")
    assert result.backend == "cluster"
    assert result.metrics.cluster_workers == 2
    assert result.metrics.remote_tasks >= 1
    remote_pids = {node.pid for node in result.metrics.nodes} - {os.getpid()}
    assert remote_pids


def test_remote_command_error_fails_cleanly():
    graph = DFGBuilder().build_from_script("cat a.txt | grep [ | sort")
    with pytest.raises(ExecutionError):
        engine.run(graph, backend="cluster", environment=env())


def test_startup_timeout_is_a_clean_error():
    coordinator = ClusterCoordinator(
        ClusterOptions(workers=1, connect="127.0.0.1:0", register_timeout_seconds=0.5)
    )
    with pytest.raises(ExecutionError, match="timed out"):
        coordinator.start()


def test_malformed_connect_address_is_a_clean_error():
    coordinator = ClusterCoordinator(ClusterOptions(connect="nonsense"))
    with pytest.raises(ExecutionError, match="HOST:PORT"):
        coordinator.start()


def test_no_worker_processes_leak():
    backend = ClusterBackend(workers=2)
    graph = DFGBuilder().build_from_script(SCRIPT)
    backend.execute(graph, env())
    # ClusterBackend shuts its per-run coordinator down unconditionally, so
    # any pash-worker it spawned must be gone.
    alive = [
        pid
        for pid in os.listdir("/proc")
        if pid.isdigit()
        and _cmdline_mentions_worker(pid)
    ]
    assert alive == []


def _cmdline_mentions_worker(pid):
    try:
        with open(f"/proc/{pid}/cmdline", "rb") as handle:
            return b"repro.cluster.worker" in handle.read()
    except OSError:
        return False
