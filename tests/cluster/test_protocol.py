"""Wire-protocol unit tests: framing, EOF semantics, edge streams."""

import socket
import threading

import pytest

from repro.cluster.protocol import (
    MAX_MESSAGE_BYTES,
    MSG_CHUNK,
    MSG_EDGE_END,
    MessageSocket,
    ProtocolError,
    iter_file_frames,
    parse_address,
    recv_message,
    send_edge_stream,
    send_message,
)


def make_pair():
    left, right = socket.socketpair()
    return left, right


def test_message_roundtrip():
    left, right = make_pair()
    try:
        send_message(left, {"type": "task", "task_id": 7, "payload": ["a", "b"]})
        message = recv_message(right)
        assert message == {"type": "task", "task_id": 7, "payload": ["a", "b"]}
    finally:
        left.close()
        right.close()


def test_clean_eof_returns_none():
    left, right = make_pair()
    left.close()
    try:
        assert recv_message(right) is None
    finally:
        right.close()


def test_eof_mid_frame_raises():
    left, right = make_pair()
    try:
        # A length prefix promising bytes that never arrive.
        left.sendall(b"\x00\x00\x00\x10abc")
        left.close()
        with pytest.raises(ProtocolError):
            recv_message(right)
    finally:
        right.close()


def test_oversized_length_prefix_rejected_without_allocation():
    left, right = make_pair()
    try:
        left.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_message(right)
    finally:
        left.close()
        right.close()


def test_non_dict_payload_rejected():
    import pickle
    import struct

    left, right = make_pair()
    try:
        payload = pickle.dumps(["not", "a", "dict"])
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_message(right)
    finally:
        left.close()
        right.close()


def test_edge_stream_roundtrip():
    left, right = make_pair()
    channel = MessageSocket(left)
    try:
        frames = [b"alpha\nbeta\n", b"gamma\n"]
        sender = threading.Thread(
            target=send_edge_stream, args=(channel, 3, 11, frames)
        )
        sender.start()
        received = []
        while True:
            message = recv_message(right)
            assert message["task_id"] == 3
            assert message["edge_id"] == 11
            if message["type"] == MSG_EDGE_END:
                break
            assert message["type"] == MSG_CHUNK
            received.append(message["data"])
        sender.join()
        assert received == frames
    finally:
        channel.close()
        right.close()


def test_iter_file_frames(tmp_path):
    path = tmp_path / "edge.spill"
    path.write_bytes(b"x" * 10)
    assert list(iter_file_frames(str(path), 4)) == [b"xxxx", b"xxxx", b"xx"]


def test_parse_address():
    assert parse_address("127.0.0.1:7077") == ("127.0.0.1", 7077)
    assert parse_address("host.example:80") == ("host.example", 80)
    for bad in ("no-port", ":80", "host:", "host:abc"):
        with pytest.raises(ValueError):
            parse_address(bad)
