"""EXP-WIKI — §6.4: Wikipedia web-indexing use case."""

from conftest import print_header

from repro.evaluation.usecases import wikipedia_correctness, wikipedia_usecase

#: Paper: 1.97x at 2x and 12.7x at 16x parallelism.
PAPER = {2: 1.97, 16: 12.7}


def test_bench_wikipedia_usecase(benchmark):
    results = benchmark.pedantic(
        lambda: wikipedia_usecase(widths=(2, 16), url_count=6000), rounds=1, iterations=1
    )

    print_header("Use case — Wikipedia web indexing")
    print(f"{'width':<8}{'paper':<10}{'measured'}")
    for width, data in results["widths"].items():
        print(f"{width:<8}{PAPER[width]:<10}{data['speedup']}")

    two = results["widths"][2]["speedup"]
    sixteen = results["widths"][16]["speedup"]
    assert 1.5 <= two <= 2.5
    assert 8.0 <= sixteen <= 16.0

    correctness = wikipedia_correctness(pages=12, width=4)
    print("parallel index identical to sequential:", correctness["identical"])
    assert correctness["identical"]
