"""EXP-GNUP — §6.5: comparison with GNU parallel on a bio-informatics-style
pipeline, including the correctness failure of naive parallelization."""

from conftest import print_header

from repro.evaluation.microbench import gnu_parallel_comparison

#: Paper: PaSh 4.3x; parallel on the bottleneck stage 1.8x; naive parallel
#: 3.2x but with 92% of the output differing from the sequential run.
PAPER = {"pash": 4.3, "single_stage": 1.8, "naive": 3.2, "naive_differing": 0.92}


def test_bench_micro_gnu_parallel(benchmark):
    report = benchmark.pedantic(
        lambda: gnu_parallel_comparison(total_lines=6_000_000, width=16), rounds=1, iterations=1
    )

    print_header("Micro-benchmark — GNU parallel comparison (§6.5)")
    print(f"{'variant':<28}{'paper':<10}{'measured'}")
    print(f"{'PaSh speedup':<28}{PAPER['pash']:<10}{report['pash_speedup']}")
    print(f"{'single-stage parallel':<28}{PAPER['single_stage']:<10}{report['single_stage_speedup']}")
    print(f"{'naive whole-pipeline':<28}{PAPER['naive']:<10}{report['naive_speedup']}")
    print(
        f"{'naive differing output':<28}{PAPER['naive_differing']:<10}"
        f"{report['naive_differing_fraction']}"
    )
    print(f"{'PaSh output identical':<28}{'yes':<10}{report['pash_output_identical']}")

    # Shape: PaSh accelerates the pipeline and stays correct; the naive GNU
    # parallel strategy breaks most of the output; targeting a single stage
    # yields limited benefit compared to PaSh.
    assert report["pash_speedup"] > 2.0
    assert report["pash_output_identical"]
    assert report["naive_differing_fraction"] > 0.5
    assert report["single_stage_speedup"] < report["pash_speedup"]
