"""Ablation — aggregation-tree fan-in (binary tree vs flat n-way merge).

DESIGN.md calls out the shape of the pure-command aggregation stage as a
design choice; this benchmark quantifies it on the Sort one-liner.
"""

from conftest import print_header

from repro.api import PashConfig, SplitMode
from repro.evaluation.harness import simulate_benchmark
from repro.workloads.oneliners import get_one_liner


def _config(width, fan_in):
    return PashConfig(width=width, split=SplitMode.GENERAL, aggregation_fan_in=fan_in).parallelization()


def test_bench_ablation_aggregation_fan_in(benchmark):
    one_liner = get_one_liner("sort")
    width = 16

    def run():
        return {
            fan_in: simulate_benchmark(one_liner, width, _config(width, fan_in))
            for fan_in in (2, 4, 0)
        }

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Ablation — aggregation tree fan-in (Sort, width 16)")
    print(f"{'fan-in':<10}{'nodes':<10}{'speedup'}")
    for fan_in, run_result in runs.items():
        label = "flat" if fan_in == 0 else str(fan_in)
        print(f"{label:<10}{run_result.node_count:<10}{round(run_result.speedup, 2)}")

    binary = runs[2]
    flat = runs[0]
    # The binary tree uses more processes than the flat merge but keeps the
    # speedup in the same range (merging is pipelined either way).
    assert binary.node_count > flat.node_count
    assert binary.speedup > 1.0 and flat.speedup > 1.0
    assert abs(binary.speedup - flat.speedup) / flat.speedup < 0.6
