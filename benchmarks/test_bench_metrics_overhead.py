"""EXP-OBS2 — the metrics plane's cost, hooked and unhooked.

The telemetry registry follows the tracing plane's contract: a process that
never installs a registry pays only for calls into ``NULL_REGISTRY``.  Two
numbers:

* *disabled overhead* — every ``counter_inc``/``histogram_observe`` site
  degrades to one attribute load and one ``enabled`` check on the shared
  null registry.  The per-hook cost is measured directly over many
  iterations, multiplied by the hook count of a real instrumented run, and
  divided by the per-run wall clock of the spawn-bound batch.  Asserted
  < 2% — deterministically, without differencing two noisy wall clocks.
* *enabled cost* — the per-hook cost with a live registry installed
  (lock + dict lookup + float add), reported for scale.

Run with ``--bench-json`` to persist the measurements (see conftest).
"""

import time

from conftest import print_header

from repro.api import Pash, PashConfig
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    counter_inc,
    install,
)
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

WIDTH = 4
LINES_PER_CHUNK = 300
RUNS = 4
SCRIPT = "cat in0.txt in1.txt in2.txt in3.txt | grep the | tr A-Z a-z > out.txt"
NULL_HOOK_ITERATIONS = 200_000
ENABLED_HOOK_ITERATIONS = 50_000
MAX_DISABLED_OVERHEAD = 0.02


def _environment():
    files = {f"in{i}.txt": text.text_lines(LINES_PER_CHUNK, seed=i) for i in range(4)}
    return ExecutionEnvironment(filesystem=VirtualFileSystem(files))


def _run_batch(compiled, runs):
    environments = [_environment() for _ in range(runs)]
    started = time.perf_counter()
    results = [
        compiled.execute(backend="parallel", environment=environment)
        for environment in environments
    ]
    return time.perf_counter() - started, results


def _null_hook_seconds():
    """Seconds per hook against the default (null) registry."""
    started = time.perf_counter()
    for _ in range(NULL_HOOK_ITERATIONS):
        counter_inc("pash_bench_total", 1, "bench", backend="parallel")
    return (time.perf_counter() - started) / NULL_HOOK_ITERATIONS


def _enabled_hook_seconds():
    """Seconds per hook with a live registry installed."""
    previous = install(MetricsRegistry())
    try:
        started = time.perf_counter()
        for _ in range(ENABLED_HOOK_ITERATIONS):
            counter_inc("pash_bench_total", 1, "bench", backend="parallel")
        return (time.perf_counter() - started) / ENABLED_HOOK_ITERATIONS
    finally:
        install(previous)


class _HookCounter:
    """A registry stand-in that counts hook invocations instead of values."""

    enabled = True

    def __init__(self):
        self.hooks = 0

    def _count(self, *args, **kwargs):
        self.hooks += 1
        return NULL_INSTRUMENT

    counter = gauge = histogram = _count


def _count_hooks_per_run(compiled):
    """Hooks one run actually fires, counted at the hook layer."""
    counting = _HookCounter()
    previous = install(counting)
    try:
        compiled.execute(backend="parallel", environment=_environment())
    finally:
        install(previous)
    return max(1, counting.hooks)


def _run_workloads():
    compiled = Pash(PashConfig.paper_default(WIDTH)).compile(SCRIPT)
    compiled.execute(backend="parallel", environment=_environment())  # warm pool
    batch_seconds, results = _run_batch(compiled, RUNS)
    hooks_per_run = _count_hooks_per_run(compiled)
    return (
        batch_seconds,
        results,
        hooks_per_run,
        _null_hook_seconds(),
        _enabled_hook_seconds(),
    )


def test_bench_metrics_disabled_overhead(benchmark, bench_record):
    """Uninstalled metrics must cost < 2% of the spawn-bound per-run clock."""
    batch_seconds, results, hooks_per_run, null_seconds, enabled_seconds = (
        benchmark.pedantic(_run_workloads, rounds=1, iterations=1)
    )

    per_run_seconds = batch_seconds / RUNS
    disabled_overhead = null_seconds * hooks_per_run / per_run_seconds
    enabled_overhead = enabled_seconds * hooks_per_run / per_run_seconds

    print_header("Observability — metrics overhead, spawn-bound batch")
    print(f"{'path':<16}{'ns/hook':<10}{'hooks/run':<11}{'% of run'}")
    print(
        f"{'uninstalled':<16}{null_seconds * 1e9:<10.0f}{hooks_per_run:<11}"
        f"{disabled_overhead * 100:.4f}"
    )
    print(
        f"{'installed':<16}{enabled_seconds * 1e9:<10.0f}{hooks_per_run:<11}"
        f"{enabled_overhead * 100:.4f}"
    )

    bench_record(
        "metrics_overhead",
        width=WIDTH,
        runs=RUNS,
        batch_seconds=round(batch_seconds, 4),
        null_hook_nanoseconds=round(null_seconds * 1e9, 1),
        enabled_hook_nanoseconds=round(enabled_seconds * 1e9, 1),
        hooks_per_run=hooks_per_run,
        disabled_overhead_fraction=round(disabled_overhead, 6),
        enabled_overhead_fraction=round(enabled_overhead, 6),
    )

    assert len(results) == RUNS
    assert hooks_per_run >= 1
    # The acceptance bar: an uninstalled registry's hooks cost well under
    # 2% of a run's wall clock.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
