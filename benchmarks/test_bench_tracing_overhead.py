"""EXP-OBS — the tracing plane's cost, on and off.

Observability is only free if nobody pays for it by default.  Two numbers:

* *disabled overhead* — with ``tracing=False`` every instrumentation point
  degrades to a call on the shared null tracer (no allocation, no lock).
  The per-hook cost is measured directly over many iterations, multiplied by
  the hook count of a real run (spans recorded by an enabled run of the same
  workload), and divided by the per-run wall clock of the spawn-bound batch.
  That ratio is asserted < 2% — deterministically, without differencing two
  noisy wall clocks.
* *enabled cost* — the same batch run with tracing on, reported (not
  asserted: shipping spans over the report queue is allowed to cost real
  time; it is opt-in).

Run with ``--bench-json`` to persist the measurements (see conftest).
"""

import time

from conftest import print_header

from repro.api import Pash, PashConfig
from repro.obs.export import span_summary
from repro.obs.tracer import NULL_TRACER
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

WIDTH = 4
LINES_PER_CHUNK = 300
RUNS = 4
SCRIPT = "cat in0.txt in1.txt in2.txt in3.txt | grep the | tr A-Z a-z > out.txt"
NULL_HOOK_ITERATIONS = 200_000
MAX_DISABLED_OVERHEAD = 0.02


def _environment():
    files = {f"in{i}.txt": text.text_lines(LINES_PER_CHUNK, seed=i) for i in range(4)}
    return ExecutionEnvironment(filesystem=VirtualFileSystem(files))


def _run_batch(compiled, runs):
    environments = [_environment() for _ in range(runs)]
    started = time.perf_counter()
    results = [
        compiled.execute(backend="parallel", environment=environment)
        for environment in environments
    ]
    return time.perf_counter() - started, results


def _null_hook_seconds():
    """Seconds per disabled instrumentation point (span + one attribute)."""
    started = time.perf_counter()
    for _ in range(NULL_HOOK_ITERATIONS):
        with NULL_TRACER.span("bench", "engine", nodes=1) as span:
            span.set(seconds=0.0)
    return (time.perf_counter() - started) / NULL_HOOK_ITERATIONS


def _run_workloads():
    plain = Pash(PashConfig.paper_default(WIDTH)).compile(SCRIPT)
    traced = Pash(PashConfig.paper_default(WIDTH, tracing=True)).compile(SCRIPT)

    # Warm both pools outside the timed windows.
    plain.execute(backend="parallel", environment=_environment())
    traced.execute(backend="parallel", environment=_environment())

    plain_seconds, plain_results = _run_batch(plain, RUNS)
    traced_seconds, traced_results = _run_batch(traced, RUNS)
    hook_seconds = _null_hook_seconds()
    return (
        plain_seconds,
        plain_results,
        traced_seconds,
        traced_results,
        hook_seconds,
    )


def test_bench_tracing_disabled_overhead(benchmark, bench_record):
    """Disabled tracing must cost < 2% of the spawn-bound per-run wall clock."""
    plain_seconds, plain_results, traced_seconds, traced_results, hook_seconds = (
        benchmark.pedantic(_run_workloads, rounds=1, iterations=1)
    )

    # One enabled run's span count ~= the number of instrumentation points a
    # disabled run walks through (each span is exactly one hook).
    hooks_per_run = len(traced_results[-1].spans)
    per_run_seconds = plain_seconds / RUNS
    disabled_overhead = hook_seconds * hooks_per_run / per_run_seconds
    summary = span_summary(traced_results[-1].spans)

    print_header("Observability — tracing overhead, spawn-bound batch")
    print(f"{'configuration':<16}{'seconds':<10}{'per-run ms':<12}{'spans/run'}")
    print(f"{'tracing off':<16}{plain_seconds:<10.3f}{per_run_seconds * 1000:<12.1f}{0}")
    print(
        f"{'tracing on':<16}{traced_seconds:<10.3f}"
        f"{traced_seconds / RUNS * 1000:<12.1f}{hooks_per_run}"
    )
    print(
        f"null hook: {hook_seconds * 1e9:.0f} ns/call x {hooks_per_run} hooks "
        f"= {disabled_overhead * 100:.4f}% of a {per_run_seconds * 1000:.1f} ms run"
    )

    bench_record(
        "tracing_overhead",
        width=WIDTH,
        runs=RUNS,
        disabled_seconds=round(plain_seconds, 4),
        enabled_seconds=round(traced_seconds, 4),
        null_hook_nanoseconds=round(hook_seconds * 1e9, 1),
        hooks_per_run=hooks_per_run,
        disabled_overhead_fraction=round(disabled_overhead, 6),
        **{key: round(value, 6) if isinstance(value, float) else value
           for key, value in summary.items()},
    )

    # Disabled runs record nothing; enabled runs cover the whole stack.
    assert all(result.spans == [] for result in plain_results)
    assert summary["spans_total"] > 0
    assert summary.get("span_count_worker", 0) >= WIDTH
    assert summary.get("span_count_scheduler", 0) >= 1
    # The acceptance bar: the instrumentation points a disabled run passes
    # through cost well under 2% of its wall clock.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
