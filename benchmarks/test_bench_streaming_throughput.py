"""EXP-STREAMING — bounded-memory throughput of the engine hot path.

The engine's data plane streams framed chunks through spill-to-disk eager
relays (dgsh-tee behaviour, §5.2): no stream buffer ever holds more than the
configured ``spill_threshold`` bytes in memory, so throughput and input size
are capped by disk, not RAM.  This benchmark drives a 100 MB-class synthetic
input (generated on the fly; override with ``PASH_STREAM_BENCH_MB``) through
a real multi-stage pipeline and checks the two claims that make streaming
trustworthy:

* *bounded*: the measured ``peak_buffered_bytes`` stays at or below the
  configured spill threshold — three orders of magnitude below the input —
  while the spill counters show the overflow actually went through disk;
* *exact*: the streamed result is byte-identical to the in-process
  interpreter oracle, both for the pure streaming pipeline and for the
  split-parallelized one.
"""

import os
import time

from conftest import print_header

from repro import api
from repro.api import PashConfig, StreamingConfig
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem

import pytest

MB = 1 << 20
INPUT_MB = int(os.environ.get("PASH_STREAM_BENCH_MB", "100"))
SPILL_THRESHOLD = 1 * MB
WIDTH = 2


def _disk_environment():
    return ExecutionEnvironment(filesystem=VirtualFileSystem(allow_real_files=True))


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A synthetic ~INPUT_MB corpus on disk plus the interpreter oracle."""
    path = tmp_path_factory.mktemp("streaming") / "big.txt"
    target = INPUT_MB * MB
    written = 0
    index = 0
    with open(path, "w") as handle:
        while written < target:
            block = "".join(
                f"record {index + offset:09d} the quick brown fox jumps over "
                f"the lazy dog {(index + offset) % 97:02d}\n"
                for offset in range(1000)
            )
            handle.write(block)
            written += len(block)
            index += 1000
    script = f"cat {path} | tr a-z A-Z | grep FOX > out.txt"

    started = time.perf_counter()
    oracle = api.run(script, backend="interpreter", environment=_disk_environment())
    oracle_seconds = time.perf_counter() - started
    yield {
        "path": str(path),
        "bytes": os.path.getsize(path),
        "script": script,
        "oracle": oracle,
        "oracle_seconds": oracle_seconds,
    }


def _report(title, corpus, result, elapsed):
    input_mb = corpus["bytes"] / MB
    print_header(title)
    print(f"{'backend':<14}{'seconds':<10}{'MB/s':<9}{'peak buffer':<14}{'spilled'}")
    print(
        f"{'interpreter':<14}{corpus['oracle_seconds']:<10.2f}"
        f"{input_mb / corpus['oracle_seconds']:<9.1f}{'(unbounded)':<14}{'-'}"
    )
    metrics = result.metrics
    print(
        f"{'parallel':<14}{elapsed:<10.2f}{input_mb / elapsed:<9.1f}"
        f"{metrics.peak_buffered_bytes:<14}{metrics.total_spilled_bytes}"
    )
    print(
        f"input {input_mb:.0f} MB; spill threshold {SPILL_THRESHOLD} B "
        f"({corpus['bytes'] // SPILL_THRESHOLD}x smaller than the input); "
        f"{metrics.total_spill_events} chunks through disk"
    )
    print(metrics.summary())


def test_bench_streaming_pipeline_bounded_memory(benchmark, corpus):
    """Pure streaming (chunk/batch hot path): bounded, spilling, exact."""
    config = PashConfig(
        width=WIDTH,
        disabled_passes=("split-insertion",),  # keep every stage streaming
        streaming=StreamingConfig(spill_threshold=SPILL_THRESHOLD),
    )

    def run():
        started = time.perf_counter()
        result = api.run(
            corpus["script"], config=config, backend="parallel",
            environment=_disk_environment(),
        )
        return result, time.perf_counter() - started

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    _report("Streaming engine — 100 MB-class pipeline, bounded memory", corpus, result, elapsed)

    # Exact: byte-identical to the interpreter oracle.
    assert result.output_of("out.txt") == corpus["oracle"].output_of("out.txt")
    # Bounded: no stream buffer ever exceeded the configured high-water mark,
    # which is ~100x smaller than the input.
    assert result.metrics.peak_buffered_bytes <= SPILL_THRESHOLD
    assert corpus["bytes"] >= 50 * SPILL_THRESHOLD
    # The overflow really went through disk (the graph output alone is
    # input-sized, so spill volume must be a large fraction of the input).
    assert result.metrics.total_spilled_bytes > corpus["bytes"] // 2
    assert result.metrics.total_spill_events > 0


def test_bench_streaming_parallelized_still_byte_identical(benchmark, corpus):
    """The paper's split-parallelized config over the same corpus: the
    channel layer stays bounded and the output stays byte-identical."""
    config = PashConfig.paper_default(
        WIDTH, streaming=StreamingConfig(spill_threshold=SPILL_THRESHOLD)
    )

    def run():
        return api.run(
            corpus["script"], config=config, backend="parallel",
            environment=_disk_environment(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Streaming engine — split-parallelized, width %d" % WIDTH)
    print(result.metrics.summary())

    assert result.output_of("out.txt") == corpus["oracle"].output_of("out.txt")
    assert result.metrics.peak_buffered_bytes <= SPILL_THRESHOLD
