"""EXP-RESILIENCE — the fault-injection hooks' cost when nothing is armed.

The resilience tier threads ``fault.fire(point, nbytes)`` hooks through hot
paths: every pool-worker dispatch, every channel chunk read, every spill
write.  With no plan installed each hook is one module-global load and a
``None`` check, so — like the tracing plane — resilience must be free until
someone opts in.

Methodology (mirrors ``test_bench_tracing_overhead``): measure the per-hook
disabled cost directly over many iterations, multiply by a *conservative
over-estimate* of the hooks one run walks through (two per worker dispatch
plus one per data chunk, derived from the run's own metrics), and divide by
the measured per-run wall clock of the spawn-bound batch.  That ratio is
asserted < 2% without differencing two noisy wall clocks.
"""

import math
import time

from conftest import print_header

from repro.api import Pash, PashConfig
from repro.resilience import fault
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

WIDTH = 4
LINES_PER_CHUNK = 300
RUNS = 4
SCRIPT = "cat in0.txt in1.txt in2.txt in3.txt | grep the | tr A-Z a-z > out.txt"
NULL_HOOK_ITERATIONS = 200_000
MAX_DISABLED_OVERHEAD = 0.02


def _environment():
    files = {f"in{i}.txt": text.text_lines(LINES_PER_CHUNK, seed=i) for i in range(4)}
    return ExecutionEnvironment(filesystem=VirtualFileSystem(files))


def _null_hook_seconds():
    """Seconds per disabled fault point (one global load + None check)."""
    fault.clear()
    started = time.perf_counter()
    for _ in range(NULL_HOOK_ITERATIONS):
        fault.fire(fault.CHANNEL_READ, 65536)
    return (time.perf_counter() - started) / NULL_HOOK_ITERATIONS


def _hooks_per_run(metrics, chunk_size):
    """Conservative over-estimate of fault-point passages in one run.

    Each worker dispatch crosses ``pool:worker-exec`` once and its spill
    sink at most once per output chunk; each channel read crosses
    ``channel:read`` once per chunk plus a final partial chunk per node.
    Over-estimating is safe: it can only *inflate* the asserted overhead.
    """
    dispatches = len(metrics.nodes)
    chunk_reads = math.ceil(metrics.total_bytes_moved / chunk_size) + dispatches
    return dispatches * 2 + chunk_reads


def _run_workloads():
    config = PashConfig.paper_default(WIDTH)
    compiled = Pash(config).compile(SCRIPT)
    compiled.execute(backend="parallel", environment=_environment())  # warm pool

    environments = [_environment() for _ in range(RUNS)]
    started = time.perf_counter()
    results = [
        compiled.execute(backend="parallel", environment=environment)
        for environment in environments
    ]
    batch_seconds = time.perf_counter() - started
    hook_seconds = _null_hook_seconds()
    return config, batch_seconds, results, hook_seconds


def test_bench_resilience_disabled_overhead(benchmark, bench_record):
    """Unarmed fault hooks must cost < 2% of the per-run wall clock."""
    config, batch_seconds, results, hook_seconds = benchmark.pedantic(
        _run_workloads, rounds=1, iterations=1
    )

    metrics = results[-1].metrics
    hooks_per_run = _hooks_per_run(metrics, config.streaming.chunk_size or 1 << 16)
    per_run_seconds = batch_seconds / RUNS
    disabled_overhead = hook_seconds * hooks_per_run / per_run_seconds

    print_header("Resilience — fault-injection hook overhead, unarmed")
    print(
        f"null hook: {hook_seconds * 1e9:.0f} ns/call x {hooks_per_run} hooks "
        f"= {disabled_overhead * 100:.4f}% of a {per_run_seconds * 1000:.1f} ms run"
    )

    bench_record(
        "resilience_overhead",
        width=WIDTH,
        runs=RUNS,
        batch_seconds=round(batch_seconds, 4),
        per_run_seconds=round(per_run_seconds, 4),
        null_hook_nanoseconds=round(hook_seconds * 1e9, 1),
        hooks_per_run=hooks_per_run,
        disabled_overhead_fraction=round(disabled_overhead, 6),
    )

    # An unarmed run touches the ladder nowhere: no retries, no degrades.
    assert all(result.metrics.runs_retried == 0 for result in results)
    assert all(result.metrics.degraded_runs == 0 for result in results)
    assert hooks_per_run > 0
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
