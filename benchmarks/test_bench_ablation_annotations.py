"""Ablation — annotation coverage.

PaSh's parallelization is driven entirely by the annotation library: with the
full standard library the one-liners parallelize, while with conservative
defaults (no annotations) nothing is touched.  This quantifies the value of
the §3 study and the annotation DSL.
"""

from conftest import print_header

from repro.annotations.library import AnnotationLibrary, standard_library
from repro.dfg.builder import translate_script
from repro.workloads.oneliners import ONE_LINERS


def _region_counts(library):
    accepted = 0
    rejected = 0
    for one_liner in ONE_LINERS:
        result = translate_script(one_liner.script_for_width(4), library=library)
        accepted += len(result.regions)
        rejected += len(result.rejected)
    return accepted, rejected


def test_bench_ablation_annotation_coverage(benchmark):
    full, empty = benchmark.pedantic(
        lambda: (_region_counts(standard_library()), _region_counts(AnnotationLibrary())),
        rounds=1,
        iterations=1,
    )

    print_header("Ablation — annotation library coverage (one-liner corpus)")
    print(f"{'library':<22}{'regions translated':<22}{'regions rejected'}")
    print(f"{'standard library':<22}{full[0]:<22}{full[1]}")
    print(f"{'no annotations':<22}{empty[0]:<22}{empty[1]}")

    assert full[0] >= 12  # every benchmark contributes at least one region
    assert full[1] == 0
    assert empty[0] == 0  # without annotations PaSh conservatively does nothing
    assert empty[1] > 0
