"""EXP-ENGINE — measured wall-clock speedup of the parallel engine.

Every other benchmark regenerates the paper's numbers through the
discrete-event simulator; this one runs the same dataflow graphs for real on
``repro.engine`` and times them.  Two workloads:

* *latency-bound* — grep with a fixed per-line cost (the stand-in for the
  paper's complex-NFA grep, whose real cost is ~0.24 ms/line per Table 2).
  A width-4 graph overlaps the four workers' stage latency, so the engine
  must beat the interpreter on any machine — concurrency, not core count,
  is what's being bought.
* *CPU-bound* — the Table-2 ``sort`` one-liner over an in-memory corpus.
  Here the speedup depends on the cores actually available, so the
  assertion only applies on multi-core machines; the measurement is always
  printed.
"""

import os
import time

from conftest import print_header

from repro import api
from repro.api import PashConfig
from repro.commands import standard_registry
from repro.evaluation.harness import measured_speedup
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text
from repro.workloads.oneliners import get_one_liner

WIDTH = 4
LINES_PER_CHUNK = 300
SECONDS_PER_LINE = 4e-4  # ≈ Table 2's complex-NFA grep cost


def _slow_grep_registry():
    """The standard registry with grep carrying a per-line latency."""
    registry = standard_registry().copy()
    real_grep = registry.lookup("grep").function

    def slow_grep(arguments, inputs):
        time.sleep(SECONDS_PER_LINE * sum(len(stream) for stream in inputs))
        return real_grep(arguments, inputs)

    registry.register_function(
        "grep", slow_grep, "grep with per-line latency (complex-NFA stand-in)"
    )
    return registry


def _environment():
    files = {
        f"in{index}.txt": text.text_lines(LINES_PER_CHUNK, seed=index) for index in range(WIDTH)
    }
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(files), registry=_slow_grep_registry()
    )


def _run_latency_workload():
    chunks = " ".join(f"in{index}.txt" for index in range(WIDTH))
    script = f"cat {chunks} | grep the > out.txt"
    config = PashConfig.paper_default(WIDTH)

    interpreter = api.run(script, backend="interpreter", environment=_environment())
    parallel = api.run(
        script, config=config, backend="parallel", environment=_environment()
    )
    return interpreter, parallel


def test_bench_engine_latency_bound_speedup(benchmark):
    interpreter, parallel = benchmark.pedantic(_run_latency_workload, rounds=1, iterations=1)
    speedup = interpreter.elapsed_seconds / parallel.elapsed_seconds

    print_header("Engine — latency-bound grep, measured wall clock")
    print(f"{'backend':<14}{'seconds':<10}{'workers':<9}{'bytes moved'}")
    print(f"{'interpreter':<14}{interpreter.elapsed_seconds:<10.3f}{1:<9}{'-'}")
    print(
        f"{'parallel':<14}{parallel.elapsed_seconds:<10.3f}"
        f"{parallel.metrics.worker_count:<9}{parallel.metrics.total_bytes_moved}"
    )
    print(f"speedup: {speedup:.2f}x at width {WIDTH}")

    assert parallel.output_of("out.txt") == interpreter.output_of("out.txt")
    assert parallel.metrics.worker_count >= 2
    # Width-4 stage latency overlaps across worker processes regardless of
    # core count; the engine must clearly beat sequential evaluation.
    assert speedup > 1.3


def test_bench_engine_cpu_bound_sort(benchmark):
    baseline, parallel, speedup = benchmark.pedantic(
        lambda: measured_speedup(get_one_liner("sort"), width=WIDTH, lines=60_000),
        rounds=1,
        iterations=1,
    )

    print_header("Engine — Table-2 sort one-liner, measured wall clock")
    print(f"{'backend':<14}{'seconds':<10}{'workers'}")
    print(f"{'interpreter':<14}{baseline.elapsed_seconds:<10.3f}{1}")
    print(
        f"{'parallel':<14}{parallel.elapsed_seconds:<10.3f}{parallel.metrics.worker_count}"
    )
    print(f"speedup: {speedup:.2f}x at width {WIDTH} "
          f"({len(os.sched_getaffinity(0))} usable cores)")

    assert baseline.output_lines == parallel.output_lines
    assert parallel.metrics.worker_count >= 2
    if len(os.sched_getaffinity(0)) >= 4:
        # With the width's worth of cores the parallel engine must win.
        assert speedup > 1.0
