"""EXP-ENGINE — measured wall-clock speedup of the parallel engine.

Every other benchmark regenerates the paper's numbers through the
discrete-event simulator; this one runs the same dataflow graphs for real on
``repro.engine`` and times them.  Three workloads:

* *latency-bound* — grep with a fixed per-line cost (the stand-in for the
  paper's complex-NFA grep, whose real cost is ~0.24 ms/line per Table 2).
  A width-4 graph overlaps the four workers' stage latency, so the engine
  must beat the interpreter on any machine — concurrency, not core count,
  is what's being bought.
* *CPU-bound* — the Table-2 ``sort`` one-liner over an in-memory corpus.
  Here the speedup depends on the cores actually available, so the
  assertion only applies on multi-core machines; the measurement is always
  printed.
* *spawn-bound* — a batch of short Table-2-style pipelines run back to back
  through one session.  This is where the persistent worker pool, stage
  fusion, relay elision, and direct (pump-free) edges pay: the same
  workload is also run on the legacy configuration (one fork per node per
  run, one pump per edge, no fusion) and the ratio is asserted ≥ 1.5x.

Run with ``--bench-json`` to persist the measurements (see conftest).
"""

import os
import time

from conftest import print_header

from repro import api
from repro.api import Pash, PashConfig
from repro.commands import standard_registry
from repro.engine.scheduler import SchedulerOptions
from repro.evaluation.harness import measured_speedup
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text
from repro.workloads.oneliners import get_one_liner

WIDTH = 4
LINES_PER_CHUNK = 300
SECONDS_PER_LINE = 4e-4  # ≈ Table 2's complex-NFA grep cost


def _slow_grep_registry():
    """The standard registry with grep carrying a per-line latency."""
    registry = standard_registry().copy()
    real_grep = registry.lookup("grep").function

    def slow_grep(arguments, inputs):
        time.sleep(SECONDS_PER_LINE * sum(len(stream) for stream in inputs))
        return real_grep(arguments, inputs)

    registry.register_function(
        "grep", slow_grep, "grep with per-line latency (complex-NFA stand-in)"
    )
    return registry


def _environment():
    files = {
        f"in{index}.txt": text.text_lines(LINES_PER_CHUNK, seed=index) for index in range(WIDTH)
    }
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(files), registry=_slow_grep_registry()
    )


def _run_latency_workload():
    chunks = " ".join(f"in{index}.txt" for index in range(WIDTH))
    script = f"cat {chunks} | grep the > out.txt"
    config = PashConfig.paper_default(WIDTH)

    interpreter = api.run(script, backend="interpreter", environment=_environment())
    parallel = api.run(
        script, config=config, backend="parallel", environment=_environment()
    )
    return interpreter, parallel


def test_bench_engine_latency_bound_speedup(benchmark, bench_record):
    interpreter, parallel = benchmark.pedantic(_run_latency_workload, rounds=1, iterations=1)
    speedup = interpreter.elapsed_seconds / parallel.elapsed_seconds

    print_header("Engine — latency-bound grep, measured wall clock")
    print(f"{'backend':<14}{'seconds':<10}{'workers':<9}{'bytes moved'}")
    print(f"{'interpreter':<14}{interpreter.elapsed_seconds:<10.3f}{1:<9}{'-'}")
    print(
        f"{'parallel':<14}{parallel.elapsed_seconds:<10.3f}"
        f"{parallel.metrics.worker_count:<9}{parallel.metrics.total_bytes_moved}"
    )
    print(f"speedup: {speedup:.2f}x at width {WIDTH}")

    bench_record(
        "engine_latency_bound_grep",
        width=WIDTH,
        interpreter_seconds=round(interpreter.elapsed_seconds, 4),
        parallel_seconds=round(parallel.elapsed_seconds, 4),
        speedup=round(speedup, 3),
        processes_spawned=parallel.metrics.processes_spawned,
        processes_reused=parallel.metrics.processes_reused,
    )
    assert parallel.output_of("out.txt") == interpreter.output_of("out.txt")
    assert parallel.metrics.worker_count >= 2
    # Width-4 stage latency overlaps across worker processes regardless of
    # core count; the engine must clearly beat sequential evaluation.
    assert speedup > 1.3


def _run_cpu_workload():
    static = measured_speedup(get_one_liner("sort"), width=WIDTH, lines=60_000)
    adaptive = measured_speedup(
        get_one_liner("sort"),
        width=WIDTH,
        lines=60_000,
        config=PashConfig.paper_default(WIDTH, adaptive_width=True),
    )
    return static, adaptive


def test_bench_engine_cpu_bound_sort(benchmark, bench_record):
    """Static width vs width clamped to the cores actually available.

    The seed baseline showed a 0.11x *slowdown* at static width 4 on a
    1-core box: the fan-out's splitting/aggregation overhead bought no
    parallelism.  The ``adaptive_width`` clamp caps the effective width at
    the usable core count, so on starved machines the graph stays (near-)
    sequential and the slowdown disappears, while on ≥4-core machines the
    clamp is a no-op and the static numbers are unchanged.
    """
    (static_run, adaptive_run) = benchmark.pedantic(
        _run_cpu_workload, rounds=1, iterations=1
    )
    baseline, parallel, speedup = static_run
    adaptive_baseline, adaptive, adaptive_speedup = adaptive_run
    cores = len(os.sched_getaffinity(0))

    bench_record(
        "engine_cpu_bound_sort",
        width=WIDTH,
        interpreter_seconds=round(baseline.elapsed_seconds, 4),
        parallel_seconds=round(parallel.elapsed_seconds, 4),
        speedup=round(speedup, 3),
        adaptive_seconds=round(adaptive.elapsed_seconds, 4),
        adaptive_speedup=round(adaptive_speedup, 3),
        usable_cores=cores,
    )

    print_header("Engine — Table-2 sort one-liner, measured wall clock")
    print(f"{'backend':<18}{'seconds':<10}{'workers'}")
    print(f"{'interpreter':<18}{baseline.elapsed_seconds:<10.3f}{1}")
    print(
        f"{'parallel':<18}{parallel.elapsed_seconds:<10.3f}{parallel.metrics.worker_count}"
    )
    print(
        f"{'adaptive-width':<18}{adaptive.elapsed_seconds:<10.3f}"
        f"{adaptive.metrics.worker_count}"
    )
    print(f"static speedup: {speedup:.2f}x, adaptive: {adaptive_speedup:.2f}x "
          f"at width {WIDTH} ({cores} usable cores)")

    assert baseline.output_lines == parallel.output_lines
    assert adaptive_baseline.output_lines == adaptive.output_lines
    assert parallel.metrics.worker_count >= 2
    if cores >= WIDTH:
        # With the width's worth of cores the parallel engine must win and
        # the clamp must not get in its way.
        assert speedup > 1.0
        assert adaptive_speedup > 1.0
    else:
        # Core-starved: the clamp must recover (most of) the static fan-out's
        # overhead — this is the BENCH_engine.json 0.11x fix, gated.
        assert adaptive_speedup > speedup


# ---------------------------------------------------------------------------
# Spawn-bound: many short pipelines through one session (PR-4 vs PR-3 path)
# ---------------------------------------------------------------------------

SHORT_RUNS = 8
SHORT_SCRIPT = "cat in0.txt in1.txt in2.txt in3.txt | grep the | tr A-Z a-z > out.txt"

#: The engine exactly as PR 3 left it: one fresh fork per node per run, an
#: eager pump (thread + copy hop) on every channel, every relay a process.
LEGACY_OPTIONS = SchedulerOptions(use_pool=False, pump_policy="all", elide_relays=False)


def _short_environment():
    files = {f"in{i}.txt": text.text_lines(LINES_PER_CHUNK, seed=i) for i in range(4)}
    return ExecutionEnvironment(filesystem=VirtualFileSystem(files))


def _run_batch(compiled, runs, **backend_options):
    """Execute the compiled script ``runs`` times; returns (seconds, results)."""
    environments = [_short_environment() for _ in range(runs)]
    started = time.perf_counter()
    results = [
        compiled.execute(backend="parallel", environment=environment, **backend_options)
        for environment in environments
    ]
    return time.perf_counter() - started, results


def _run_spawn_workload():
    fused = Pash(PashConfig.paper_default(WIDTH)).compile(SHORT_SCRIPT)
    legacy = Pash(
        PashConfig.paper_default(WIDTH, fuse_stages=False)
    ).compile(SHORT_SCRIPT)

    expected = api.run(SHORT_SCRIPT, backend="interpreter", environment=_short_environment())

    # Warm-up: pay the pool's startup once, outside the timed window (the
    # legacy path has no warm-up to pay — that asymmetry is the feature).
    fused.execute(backend="parallel", environment=_short_environment())

    new_seconds, new_results = _run_batch(fused, SHORT_RUNS)
    legacy_seconds, legacy_results = _run_batch(legacy, SHORT_RUNS, options=LEGACY_OPTIONS)
    return expected, new_seconds, new_results, legacy_seconds, legacy_results


def test_bench_engine_short_pipeline_batch(benchmark, bench_record):
    """Persistent pool + fused stages vs the PR-3 fork-per-node hot path."""
    expected, new_seconds, new_results, legacy_seconds, legacy_results = benchmark.pedantic(
        _run_spawn_workload, rounds=1, iterations=1
    )
    ratio = legacy_seconds / new_seconds
    new_spawned = sum(result.metrics.processes_spawned for result in new_results)
    new_reused = sum(result.metrics.processes_reused for result in new_results)
    legacy_spawned = sum(result.metrics.processes_spawned for result in legacy_results)
    new_metrics = new_results[-1].metrics

    print_header("Engine — spawn-bound short pipelines, pooled+fused vs PR-3 path")
    print(f"{'configuration':<22}{'seconds':<10}{'spawned':<9}{'reused':<8}{'per-run ms'}")
    print(
        f"{'pool+fuse+direct':<22}{new_seconds:<10.3f}{new_spawned:<9}"
        f"{new_reused:<8}{new_seconds / SHORT_RUNS * 1000:.1f}"
    )
    print(
        f"{'fork-per-node (PR-3)':<22}{legacy_seconds:<10.3f}{legacy_spawned:<9}"
        f"{0:<8}{legacy_seconds / SHORT_RUNS * 1000:.1f}"
    )
    print(
        f"speedup vs PR-3 path: {ratio:.2f}x over {SHORT_RUNS} runs "
        f"(fused {new_metrics.commands_fused} commands into "
        f"{new_metrics.stages_fused} stages, elided {new_metrics.relays_elided} "
        f"relays, {new_metrics.edges_direct} direct edges)"
    )

    bench_record(
        "engine_short_pipeline_batch",
        width=WIDTH,
        runs=SHORT_RUNS,
        pooled_seconds=round(new_seconds, 4),
        legacy_seconds=round(legacy_seconds, 4),
        speedup_vs_pr3=round(ratio, 3),
        processes_spawned=new_spawned,
        processes_reused=new_reused,
        legacy_processes_spawned=legacy_spawned,
        stages_fused=new_metrics.stages_fused,
        commands_fused=new_metrics.commands_fused,
        relays_elided=new_metrics.relays_elided,
        edges_direct=new_metrics.edges_direct,
    )

    # Cross-path and cross-backend byte-identity first, speed second.
    for result in new_results + legacy_results:
        assert result.output_of("out.txt") == expected.output_of("out.txt")
    # Stage fusion must be doing real work on this shape (grep|tr chains)...
    assert new_metrics.stages_fused >= WIDTH
    # ...and the pooled runs must not be re-forking the graph every time.
    assert new_spawned < legacy_spawned
    # The acceptance bar: ≥ 1.5x lower wall clock than the PR-3 engine path.
    assert ratio >= 1.5
