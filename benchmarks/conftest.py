"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or measures
the engine for real) and prints the reproduced rows/series so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the artifact that
EXPERIMENTS.md is written from.

Machine-readable trajectory: run with ``--bench-json [PATH]`` (default
``BENCH_engine.json``) and every benchmark that calls the ``bench_record``
fixture leaves its numbers — wall clocks, speedups, spawn counts — in one
JSON file stamped with the git sha, so future revisions can diff their
performance against a recorded baseline (the committed
``benchmarks/BENCH_engine.json``).  The option lives in this conftest, so it
is available whenever ``benchmarks/`` (or a file inside it) is part of the
pytest invocation.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from typing import Any, Dict, List

import pytest


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


# ---------------------------------------------------------------------------
# --bench-json: machine-readable benchmark trajectory
# ---------------------------------------------------------------------------


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--bench-json",
        action="store",
        nargs="?",
        const="BENCH_engine.json",
        default=None,
        metavar="PATH",
        help="write recorded benchmark measurements (wall clock, speedups, "
        "spawn counts, git sha) to PATH as JSON (default: BENCH_engine.json)",
    )


def pytest_configure(config) -> None:
    config._bench_records = []  # type: ignore[attr-defined]


@pytest.fixture
def bench_record(request):
    """Record one benchmark's measurements for the JSON trajectory.

    Usage::

        def test_bench_something(benchmark, bench_record):
            ...
            bench_record("engine_short_pipelines", speedup=ratio, ...)

    Records are kept in memory for the session and written out only when
    ``--bench-json`` was given.
    """
    records: List[Dict[str, Any]] = request.config._bench_records

    def record(name: str, **fields: Any) -> None:
        records.append({"benchmark": name, **fields})

    return record


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                timeout=5,
                check=True,
            )
            .stdout.decode("ascii", "replace")
            .strip()
        )
    except Exception:  # noqa: BLE001 - sha is best-effort metadata
        return "unknown"


def pytest_sessionfinish(session, exitstatus) -> None:
    path = session.config.getoption("--bench-json", default=None)
    records = getattr(session.config, "_bench_records", [])
    if not path or not records:
        return
    payload = {
        "schema": 1,
        "git_sha": _git_sha(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": records,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"\n[bench-json] wrote {len(records)} record(s) to {path}")
