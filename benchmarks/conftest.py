"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows/series so that ``pytest benchmarks/ --benchmark-only -s``
doubles as the artifact that EXPERIMENTS.md is written from.
"""

from __future__ import annotations


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
