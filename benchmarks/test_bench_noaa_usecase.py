"""EXP-NOAA — §6.3: temperature analysis use case."""

from conftest import print_header

from repro.evaluation.usecases import noaa_correctness, noaa_usecase

#: Paper: 1.86x / 2.44x end-to-end at 2x / 10x; the max-temperature phase
#: alone reaches 2.30x / 10.79x.
PAPER = {2: 1.86, 10: 2.44}
PAPER_MAX_PHASE = {2: 2.30, 10: 10.79}


def test_bench_noaa_usecase(benchmark):
    results = benchmark.pedantic(
        lambda: noaa_usecase(widths=(2, 10), stations_per_year=2000), rounds=1, iterations=1
    )

    print_header("Use case — NOAA temperature analysis (Fig. 1 pipeline)")
    print(f"{'width':<8}{'paper (end-to-end)':<20}{'paper (max phase)':<20}{'measured'}")
    for width, data in results["widths"].items():
        print(f"{width:<8}{PAPER[width]:<20}{PAPER_MAX_PHASE[width]:<20}{data['speedup']}")

    two = results["widths"][2]["speedup"]
    ten = results["widths"][10]["speedup"]
    assert 1.5 <= two <= 2.5
    assert two < ten <= 12.0

    correctness = noaa_correctness(years=[2015], stations=4)
    print("parallel output identical to sequential:", correctness["identical"])
    assert correctness["identical"]
