"""EXP-SERVICE — submission latency of the warm daemon vs cold CLI processes.

The service tier's pitch is amortization: one long-lived daemon holds a warm
:class:`~repro.engine.pool.WorkerPool` and a warm plan cache, so the marginal
cost of a submission is *admission + execution*, while every ``pash`` CLI
invocation pays interpreter start-up, module import, compilation, and worker
spawning from zero.

This benchmark submits ``N`` jobs **concurrently** to an in-process daemon
(each from its own client thread, like real tenants) and runs the same ``N``
jobs as **serial CLI child processes**, then compares per-job p50/p99
latency.  Run with ``--bench-json`` to persist the measurements.
"""

import os
import subprocess
import sys
import tempfile
import threading
import time

from conftest import print_header

from repro.api import PashConfig
from repro.service import PashServiceDaemon, ServiceClient, ServiceOptions

N_JOBS = 8
WIDTH = 2
SCRIPT = "cat in0.txt in1.txt | grep the | tr a-z A-Z | sort | uniq"
WORDS = ["the", "light", "dark", "lantern", "the", "apple"]


def _lines(count=400):
    return [f"{WORDS[index % len(WORDS)]} line {index}" for index in range(count)]


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_service(files):
    daemon = PashServiceDaemon(
        ServiceOptions(
            listen="127.0.0.1:0",
            executors=4,
            queue_limit=2 * N_JOBS,
            tenant_quota=2 * N_JOBS,
            config=PashConfig.paper_default(WIDTH, backend="jit"),
        )
    )
    daemon.start()
    try:
        # One warm-up submission: the daemon's pitch is steady-state latency,
        # so the pool spawn + first compile are paid before measuring.
        ServiceClient(daemon.endpoint, timeout=60.0).submit(SCRIPT, files=files)
        latencies = [None] * N_JOBS
        errors = []

        def submit(slot):
            try:
                client = ServiceClient(daemon.endpoint, timeout=60.0)
                started = time.perf_counter()
                job = client.submit(
                    SCRIPT, tenant=f"tenant-{slot}", files=files, timeout=55.0
                )
                latencies[slot] = time.perf_counter() - started
                assert job["state"] == "done", job.get("error")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in range(N_JOBS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        assert all(sample is not None for sample in latencies)
        return latencies
    finally:
        daemon.shutdown()


def _run_serial_cli(files):
    """The same jobs as cold ``python -m repro.cli`` child processes."""
    source = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.abspath(source)
    latencies = []
    with tempfile.TemporaryDirectory(prefix="pash-bench-cli-") as workdir:
        for name, lines in files.items():
            with open(os.path.join(workdir, name), "w") as handle:
                handle.write("\n".join(lines) + "\n")
        script_path = os.path.join(workdir, "job.sh")
        with open(script_path, "w") as handle:
            handle.write(SCRIPT + "\n")
        for _ in range(N_JOBS):
            started = time.perf_counter()
            completed = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "job.sh",
                    "--width",
                    str(WIDTH),
                    "--execute",
                    "jit",
                ],
                cwd=workdir,
                env=environment,
                capture_output=True,
                text=True,
                timeout=120,
            )
            latencies.append(time.perf_counter() - started)
            assert completed.returncode == 0, completed.stderr
    return latencies


def test_bench_service_latency(bench_record):
    files = {"in0.txt": _lines(), "in1.txt": _lines(300)}

    service = _run_service(files)
    serial = _run_serial_cli(files)

    service_p50 = _percentile(service, 0.50) * 1000
    service_p99 = _percentile(service, 0.99) * 1000
    serial_p50 = _percentile(serial, 0.50) * 1000
    serial_p99 = _percentile(serial, 0.99) * 1000

    print_header(
        f"EXP-SERVICE — {N_JOBS} concurrent daemon submissions vs "
        f"{N_JOBS} serial CLI invocations"
    )
    print(f"{'leg':<28}{'p50 ms':>10}{'p99 ms':>10}")
    print(f"{'daemon (concurrent)':<28}{service_p50:>10.1f}{service_p99:>10.1f}")
    print(f"{'cold CLI (serial)':<28}{serial_p50:>10.1f}{serial_p99:>10.1f}")
    speedup_p50 = serial_p50 / service_p50 if service_p50 > 0 else float("inf")
    print(f"p50 speedup: {speedup_p50:.1f}x")

    bench_record(
        "service_latency",
        jobs=N_JOBS,
        service_p50_ms=round(service_p50, 2),
        service_p99_ms=round(service_p99, 2),
        serial_cli_p50_ms=round(serial_p50, 2),
        serial_cli_p99_ms=round(serial_p99, 2),
        speedup_p50=round(speedup_p50, 2),
    )

    # The warm daemon must beat cold per-job CLI start-up comfortably; the
    # CLI leg pays interpreter+import+compile+spawn per job (hundreds of ms).
    assert service_p50 < serial_p50
