"""EXP-F7 — Figure 7: one-liner speedups for 2-64x under five configurations."""

import pytest
from conftest import print_header

from repro.evaluation.figures import FIG7_WIDTHS, best_configuration_speedups, figure7_series
from repro.workloads.oneliners import ONE_LINERS, get_one_liner

#: Paper: average best-configuration speedups for 2..64x parallelism.
PAPER_AVERAGE_BEST = {2: 1.97, 4: 3.5, 8: 5.78, 16: 8.83, 32: 10.96, 64: 13.47}


@pytest.mark.parametrize("name", [b.name for b in ONE_LINERS])
def test_bench_fig7_per_script(benchmark, name):
    one_liner = get_one_liner(name)
    series = benchmark.pedantic(
        lambda: figure7_series(one_liner, widths=FIG7_WIDTHS), rounds=1, iterations=1
    )

    print_header(f"Figure 7 — {name}: speedup vs parallelism")
    for configuration, points in series.items():
        rendered = "  ".join(f"{width}x:{points[width]:6.2f}" for width in FIG7_WIDTHS)
        print(f"  {configuration:<16} {rendered}")

    best = series["Par + Split"]
    lazy = series["No Eager"]
    # Shape checks: speedup never decreases catastrophically with width, the
    # eager configuration is at least as good as the lazy one, and large
    # scripts improve over the sequential baseline.
    assert best[64] >= best[2] * 0.9
    assert all(best[width] >= lazy[width] * 0.95 for width in FIG7_WIDTHS)
    if name not in ("grep-light",):
        assert best[16] > 1.5


def test_bench_fig7_average_best_speedup(benchmark):
    averages = benchmark.pedantic(
        lambda: best_configuration_speedups(widths=FIG7_WIDTHS), rounds=1, iterations=1
    )
    print_header("Figure 7 — average best-configuration speedup per width")
    print(f"{'width':<8}{'paper':<10}{'measured'}")
    for width in FIG7_WIDTHS:
        print(f"{width:<8}{PAPER_AVERAGE_BEST[width]:<10}{averages[width]}")
    # The averages grow monotonically with width and land in the same regime
    # as the paper (single digits at 8x, 10-20x at 64x).
    values = [averages[width] for width in FIG7_WIDTHS]
    assert all(later >= earlier for earlier, later in zip(values, values[1:]))
    assert 1.2 <= averages[2] <= 3.0
    assert 4.0 <= averages[16] <= 16.0
    assert 6.0 <= averages[64] <= 30.0
