"""EXP-T1 — Table 1: parallelizability classes of POSIX and GNU Coreutils."""

from conftest import print_header

from repro.annotations.study import PAPER_TABLE1_COUNTS, standard_study
from repro.evaluation.tables import format_table1, table1_rows


def test_bench_table1_study(benchmark):
    rows = benchmark(table1_rows)

    print_header("Table 1 — Parallelizability classes (reproduced)")
    print(format_table1())
    print()
    print("Paper-reported counts:")
    study = standard_study()
    for (suite, parallelizability), expected in sorted(
        PAPER_TABLE1_COUNTS.items(), key=lambda item: (item[0][0], item[0][1].rank)
    ):
        measured = study.count(suite, parallelizability)
        print(f"  {suite:<10} {parallelizability.symbol}: paper={expected:<4} measured={measured}")
        assert measured == expected

    assert len(rows) == 4
