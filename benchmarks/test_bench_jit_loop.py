"""EXP-JIT — measured wall-clock win of JIT orchestration on a loop-heavy script.

The script below is exactly the shape PaSh's AOT compiler surrenders on: a
``for`` loop whose body is a Table-2-class pipeline.  The AOT path compiles
nothing it can run (the whole script only executes through the sequential
interpreter), so the *baseline interpreter* is the honest comparison.  The
JIT driver executes the loop itself, compiles the body the first time it is
reached, serves iterations 2+ from the plan cache, and runs every compiled
plan on the parallel engine through the persistent worker pool.

``grep`` carries a fixed per-line latency (the stand-in for the paper's
complex-NFA grep, ~0.24 ms/line per Table 2), so the width-4 plan overlaps
the four workers' stage latency and the engine must beat the interpreter on
any machine — concurrency, not core count, is what's being bought.

Run with ``--bench-json`` to persist the measurements (see conftest).
"""

import time

from conftest import print_header

from repro.api import PashConfig
from repro.commands import standard_registry
from repro.jit import JitDriver
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.workloads import text

WIDTH = 4
ROUNDS = 4
LINES_PER_CHUNK = 300
SECONDS_PER_LINE = 4e-4  # ≈ Table 2's complex-NFA grep cost

#: A loop over ≥4 inputs whose body is a Table-2-class pipeline.  The body
#: references no loop-carried binding, so the plan cache must serve every
#: iteration after the first.
LOOP_SCRIPT = (
    "for round in 1 2 3 4; do\n"
    "  cat in0.txt in1.txt in2.txt in3.txt | grep the | sort | head -n 40\n"
    "done\n"
)


def _slow_grep_registry():
    registry = standard_registry().copy()
    real_grep = registry.lookup("grep").function

    def slow_grep(arguments, inputs):
        time.sleep(SECONDS_PER_LINE * sum(len(stream) for stream in inputs))
        return real_grep(arguments, inputs)

    registry.register_function(
        "grep", slow_grep, "grep with per-line latency (complex-NFA stand-in)"
    )
    return registry


def _files():
    return {
        f"in{index}.txt": text.text_lines(LINES_PER_CHUNK, seed=index)
        for index in range(4)
    }


def _environment():
    return ExecutionEnvironment(
        filesystem=VirtualFileSystem(_files()), registry=_slow_grep_registry()
    )


def _run_baseline():
    environment = _environment()
    shell = ShellInterpreter(
        filesystem=environment.filesystem, registry=environment.registry
    )
    started = time.perf_counter()
    stdout = shell.run_script(LOOP_SCRIPT)
    return time.perf_counter() - started, stdout


def _run_jit():
    driver = JitDriver(
        config=PashConfig.paper_default(WIDTH, jit_inner_backend="parallel"),
        environment=_environment(),
    )
    started = time.perf_counter()
    result = driver.run(LOOP_SCRIPT)
    return time.perf_counter() - started, result


def _run_workload():
    baseline_seconds, baseline_stdout = _run_baseline()
    jit_seconds, jit_result = _run_jit()
    return baseline_seconds, baseline_stdout, jit_seconds, jit_result


def test_bench_jit_loop_speedup(benchmark, bench_record):
    baseline_seconds, baseline_stdout, jit_seconds, jit_result = benchmark.pedantic(
        _run_workload, rounds=1, iterations=1
    )
    speedup = baseline_seconds / jit_seconds
    report = jit_result.jit

    print_header("JIT — loop-heavy dynamic script, measured wall clock")
    print(f"{'mode':<22}{'seconds':<10}{'regions':<9}{'workers'}")
    print(f"{'interpreter':<22}{baseline_seconds:<10.3f}{'-':<9}{1}")
    print(
        f"{'jit (parallel)':<22}{jit_seconds:<10.3f}"
        f"{report.regions_seen:<9}{jit_result.metrics.worker_count}"
    )
    print(
        f"speedup: {speedup:.2f}x over {ROUNDS} iterations "
        f"({report.regions_compiled} compiled, {report.cache_hits} cache hits, "
        f"compile {report.compile_seconds * 1000:.1f} ms, "
        f"{jit_result.metrics.processes_reused} workers reused)"
    )

    bench_record(
        "jit_loop_heavy_script",
        width=WIDTH,
        rounds=ROUNDS,
        interpreter_seconds=round(baseline_seconds, 4),
        jit_seconds=round(jit_seconds, 4),
        speedup=round(speedup, 3),
        regions_seen=report.regions_seen,
        regions_compiled=report.regions_compiled,
        cache_hits=report.cache_hits,
        fallbacks=report.fallbacks,
        compile_seconds=round(report.compile_seconds, 4),
        processes_spawned=jit_result.metrics.processes_spawned,
        processes_reused=jit_result.metrics.processes_reused,
    )

    # Correctness first: byte-identical to the baseline interpreter.
    assert jit_result.stdout == baseline_stdout
    # The JIT must actually orchestrate: one compile, cache hits on 2+.
    assert report.regions_compiled >= 1
    assert report.cache_hits == ROUNDS - 1
    assert report.fallbacks == 0
    # Real OS-level concurrency underneath.
    assert jit_result.metrics.worker_count >= 2
    # The acceptance bar: ≥ 1.5x lower wall clock than the baseline
    # interpreter on this multi-iteration script (latency-bound, so core
    # count does not gate it).
    assert speedup >= 1.5
