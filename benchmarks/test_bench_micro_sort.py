"""EXP-SORT — §6.5: PaSh-parallelized sort vs `sort --parallel`."""

from conftest import print_header

from repro.evaluation.microbench import parallel_sort_comparison


def test_bench_micro_parallel_sort(benchmark):
    rows = benchmark.pedantic(
        lambda: parallel_sort_comparison(widths=(4, 8, 16, 32, 64), total_lines=100_000_000),
        rounds=1,
        iterations=1,
    )

    print_header("Micro-benchmark — parallel sort (§6.5)")
    print(f"{'width':<8}{'PaSh':<10}{'PaSh no-eager':<15}{'sort --parallel'}")
    for row in rows:
        print(f"{row['width']:<8}{row['pash']:<10}{row['pash_no_eager']:<15}{row['sort_parallel']}")

    final = rows[-1]
    # Paper's qualitative claims: no-eager PaSh is comparable to sort
    # --parallel, eager PaSh outperforms it, and GNU sort's own scalability
    # saturates.
    assert final["pash"] > final["pash_no_eager"]
    assert final["pash"] >= final["sort_parallel"]
    gnu_values = [row["sort_parallel"] for row in rows]
    assert max(gnu_values) - gnu_values[-1] < 2.0  # saturation
    pash_values = [row["pash"] for row in rows]
    assert all(later >= earlier for earlier, later in zip(pash_values, pash_values[1:]))
