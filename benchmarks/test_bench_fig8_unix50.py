"""EXP-F8 — Figure 8: Unix50 pipeline speedups at 16x parallelism."""

from conftest import print_header

from repro.evaluation.figures import figure8_series, figure8_summary

#: Paper: average 5.49, median 6.07, weighted average 5.75 at 16x.
PAPER_SUMMARY = {"average": 5.49, "median": 6.07, "weighted_average": 5.75}


def test_bench_fig8_unix50(benchmark):
    points = benchmark.pedantic(lambda: figure8_series(width=16), rounds=1, iterations=1)
    summary = figure8_summary(points)

    print_header("Figure 8 — Unix50 speedups at 16x (reproduced)")
    print(f"{'idx':<5}{'speedup':<10}{'seq (s)':<12}{'group':<12}description")
    for point in points:
        print(
            f"{point['index']:<5}{point['speedup']:<10}{point['sequential_seconds']:<12}"
            f"{point['expected_group']:<12}{point['description']}"
        )
    print()
    print(f"{'metric':<20}{'paper':<10}{'measured'}")
    for key, value in PAPER_SUMMARY.items():
        print(f"{key:<20}{value:<10}{summary[key]}")

    assert len(points) == 34
    # Group-level shape: most pipelines accelerate, the awk/sed group stays
    # around 1x, and the tiny head-bound group slows down.
    for point in points:
        if point["expected_group"] == "speedup":
            assert point["speedup"] > 1.5, point
        elif point["expected_group"] == "nospeedup":
            assert 0.7 <= point["speedup"] <= 1.3, point
        else:
            assert point["speedup"] < 1.0, point
    # Aggregate statistics land near the paper's.
    assert 3.0 <= summary["average"] <= 9.0
    assert 3.0 <= summary["median"] <= 9.0
