"""EXP-T2 — Table 2: one-liner summary (structure, node counts, compile time)."""

from conftest import print_header

from repro.evaluation.tables import format_table2, table2_rows
from repro.workloads.oneliners import PAPER_TABLE2


def test_bench_table2_oneliners(benchmark):
    rows = benchmark.pedantic(lambda: table2_rows(widths=(16, 64)), rounds=1, iterations=1)

    print_header("Table 2 — One-liner summary at widths 16 and 64 (reproduced)")
    print(format_table2(rows, widths=(16, 64)))
    print()
    print(f"{'script':<18}{'paper #nodes(16/64)':<24}{'measured #nodes(16/64)'}")
    for row in rows:
        paper = PAPER_TABLE2[row["script"]]
        print(
            f"{row['script']:<18}{paper['nodes_16']}/{paper['nodes_64']:<18}"
            f"{row['nodes_16']}/{row['nodes_64']}"
        )

    assert len(rows) == 12
    # Compilation stays in the milliseconds range reported by the paper.
    assert all(row["compile_time_64"] < 2.0 for row in rows)
    # Node counts grow roughly linearly with the parallelism width.
    assert all(row["nodes_64"] > 2 * row["nodes_16"] for row in rows)
