"""Setup shim for environments with an older setuptools (no PEP 660 wheel)."""

from setuptools import setup

if __name__ == "__main__":
    setup()
