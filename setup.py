"""Packaging for the PaSh reproduction.

Kept as an executable ``setup.py`` (rather than pure ``pyproject.toml``
metadata) so environments with an older setuptools — no PEP 660 editable
wheels — can still ``pip install -e .``.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))


def _readme() -> str:
    path = os.path.join(_HERE, "README.md")
    if os.path.exists(path):
        with open(path) as handle:
            return handle.read()
    return ""


def _version() -> str:
    with open(os.path.join(_HERE, "src", "repro", "__init__.py")) as handle:
        return re.search(r'__version__ = "([^"]+)"', handle.read()).group(1)


if __name__ == "__main__":
    setup(
        name="pash-repro",
        version=_version(),
        description=(
            "Reproduction of PaSh (EuroSys 2021): light-touch data-parallel "
            "shell processing, with a multiprocess dataflow execution engine"
        ),
        long_description=_readme(),
        long_description_content_type="text/markdown",
        author="paper-repo-growth",
        license="MIT",
        python_requires=">=3.8",
        packages=find_packages("src"),
        package_dir={"": "src"},
        entry_points={
            "console_scripts": [
                "pash-compile=repro.cli:main",
                "pash-repro=repro.cli:main",
                "pash-worker=repro.cluster.worker:main",
                "pash-serve=repro.service.daemon:main",
                "pash-client=repro.service.client:main",
                "pash-top=repro.service.top:main",
            ]
        },
        classifiers=[
            "Development Status :: 3 - Alpha",
            "Intended Audience :: Science/Research",
            "Programming Language :: Python :: 3",
            "Topic :: System :: Shells",
            "Topic :: System :: Distributed Computing",
        ],
    )
