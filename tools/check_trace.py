#!/usr/bin/env python3
"""Validate a Chrome ``trace_event`` JSON file produced by ``repro.obs``.

Checks, in order:

1. the file is JSON with a ``traceEvents`` list (or is itself that list);
2. every ``"ph": "X"`` event carries a name, integer ``pid``/``tid``,
   non-negative ``ts``/``dur``, and an ``args.span_id``;
3. span ids are unique;
4. parent containment: an event whose ``args.parent_id`` names another event
   in the file must sit inside its parent's ``[ts, ts + dur]`` window, up to
   a small epsilon (spans ship wall-clock starts from different processes,
   so scheduling jitter of a few milliseconds is tolerated);
5. per-``(pid, tid)`` stack discipline: events on one track either nest or
   are disjoint — partial overlap beyond the epsilon is a recording bug;
6. at least one ``X`` event exists (an empty trace is a broken pipeline).

Usable as a CLI (``python tools/check_trace.py out.json``; exit 0 = valid)
and as a module (``from check_trace import check_trace``), which the test
suite and CI both do.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Tuple

#: Containment/overlap slack in microseconds.  Parent/child timestamps are
#: wall-clock samples taken in different processes; durations are monotonic.
#: A few milliseconds of skew is expected; structural bugs are way larger.
EPSILON_US = 5_000


class TraceError(ValueError):
    """The trace file is structurally invalid; ``str()`` says why."""


def _events_of(document: Any) -> List[Dict[str, Any]]:
    if isinstance(document, list):
        return document
    if isinstance(document, dict) and isinstance(document.get("traceEvents"), list):
        return document["traceEvents"]
    raise TraceError("not a Chrome trace: expected a traceEvents list")


def _check_event(event: Dict[str, Any], index: int) -> None:
    where = f"event #{index}"
    if not isinstance(event.get("name"), str) or not event["name"]:
        raise TraceError(f"{where}: missing or empty name")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            raise TraceError(f"{where} ({event['name']}): {key} must be an integer")
    if event["pid"] <= 0:
        raise TraceError(f"{where} ({event['name']}): pid must be positive")
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise TraceError(f"{where} ({event['name']}): {key} must be >= 0")
    args = event.get("args")
    if not isinstance(args, dict) or not args.get("span_id"):
        raise TraceError(f"{where} ({event['name']}): args.span_id is required")


def _check_containment(spans: Dict[str, Dict[str, Any]]) -> None:
    for span_id, event in spans.items():
        parent_id = event["args"].get("parent_id")
        if parent_id is None or parent_id not in spans:
            continue  # roots, and parents outside the exported window
        parent = spans[parent_id]
        start, end = event["ts"], event["ts"] + event["dur"]
        parent_start = parent["ts"] - EPSILON_US
        parent_end = parent["ts"] + parent["dur"] + EPSILON_US
        if start < parent_start or end > parent_end:
            raise TraceError(
                f"span {span_id} ({event['name']}) [{start}, {end}] escapes its "
                f"parent {parent_id} ({parent['name']}) "
                f"[{parent['ts']}, {parent['ts'] + parent['dur']}]"
            )


def _check_stack_discipline(events: List[Dict[str, Any]]) -> None:
    """Events on one (pid, tid) track must nest or be disjoint."""
    tracks: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for event in events:
        tracks.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda event: (event["ts"], -event["dur"]))
        stack: List[Tuple[float, str]] = []  # (end, name)
        for event in track:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and stack[-1][0] <= start + EPSILON_US:
                stack.pop()
            if stack and end > stack[-1][0] + EPSILON_US:
                raise TraceError(
                    f"track pid={pid} tid={tid}: span {event['name']} "
                    f"[{start}, {end}] partially overlaps enclosing "
                    f"{stack[-1][1]} (ends {stack[-1][0]})"
                )
            stack.append((end, event["name"]))


def check_trace(document: Any) -> int:
    """Validate a loaded trace document (or events list); returns the number
    of ``X`` events.  Raises :class:`TraceError` on any violation."""
    events = _events_of(document)
    complete = [event for event in events if event.get("ph") == "X"]
    if not complete:
        raise TraceError("trace contains no complete ('ph': 'X') events")
    spans: Dict[str, Dict[str, Any]] = {}
    for index, event in enumerate(complete):
        _check_event(event, index)
        span_id = event["args"]["span_id"]
        if span_id in spans:
            raise TraceError(f"duplicate span_id {span_id}")
        spans[span_id] = event
    _check_containment(spans)
    _check_stack_discipline(complete)
    return len(complete)


def check_trace_file(path: str) -> int:
    """Load ``path`` and validate it; returns the number of ``X`` events."""
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: not valid JSON ({exc})") from exc
    return check_trace(document)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print("usage: check_trace.py TRACE.json", file=sys.stderr)
        return 2
    try:
        count = check_trace_file(argv[1])
    except TraceError as exc:
        print(f"check_trace: INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"check_trace: OK ({count} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
