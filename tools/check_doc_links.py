#!/usr/bin/env python3
"""Check that every intra-repo link in the Markdown docs resolves.

Scans the given Markdown files (default: README.md, docs/*.md, and the
repo-root *.md project files) for inline links and reference definitions,
skips external targets (http/https/mailto) and pure in-page anchors, and
verifies each remaining target exists relative to the file that links to
it.  Exits non-zero listing every dangling link, so CI fails when a rename
breaks the docs.

Usage: python tools/check_doc_links.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links `[text](target)` and reference definitions `[ref]: target`.
_LINK_PATTERNS = [
    re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)"),
    re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE),
]

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text: str):
    for pattern in _LINK_PATTERNS:
        for match in pattern.finditer(text):
            yield match.group(1)


def check_file(path: Path) -> list:
    """Return a list of (target, reason) problems for one Markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in iter_links(text):
        if target.startswith(_EXTERNAL):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append((target, f"missing: {resolved}"))
    return problems


def main(argv) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(name) for name in argv]
    else:
        files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    failures = 0
    for path in files:
        for target, reason in check_file(path):
            print(f"{path.relative_to(root)}: broken link {target!r} ({reason})")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"checked {len(files)} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
