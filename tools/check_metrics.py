#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file produced by ``repro.obs``.

Checks, in order:

1. every non-comment line parses as ``name[{labels}] value`` with a legal
   metric name, legal label names, and a float-parseable value;
2. every sample's base family has a ``# TYPE`` line *before* its first
   sample, and the type is one of ``counter``/``gauge``/``histogram``
   (``_bucket``/``_sum``/``_count`` suffixes resolve to their histogram);
3. ``# HELP``/``# TYPE`` appear at most once per family, and no duplicate
   sample (same name + labelset) appears;
4. counter sample values are non-negative and counter names end in
   ``_total``;
5. every histogram labelset has a ``le="+Inf"`` bucket, its bucket counts
   are cumulative (non-decreasing in ``le`` order), the ``+Inf`` count
   equals the labelset's ``_count``, and ``_sum``/``_count`` exist;
6. given a *second* file (an earlier scrape), every counter present in
   both is monotonic: its value never decreased.

Usable as a CLI (``python tools/check_metrics.py scrape.txt [earlier.txt]``;
exit 0 = valid) and as a module (``from check_metrics import lint_text``),
which the test suite and CI both do.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class MetricsError(ValueError):
    """The exposition is structurally invalid; ``str()`` says why."""


#: One parsed sample: (family, sample name, labels-without-le, le, value).
Sample = Tuple[str, str, Tuple[Tuple[str, str], ...], Optional[str], float]


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def _base_family(name: str, types: Dict[str, str]) -> str:
    """Resolve a sample name to its family (histogram suffixes collapse)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def parse_text(text: str) -> Tuple[Dict[str, str], List[Sample]]:
    """(family -> type, samples); raises :class:`MetricsError` on bad syntax."""
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Sample] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise MetricsError(f"line {line_number}: malformed TYPE line")
            _, _, name, kind = parts
            if not _NAME_RE.match(name):
                raise MetricsError(f"line {line_number}: illegal name {name!r}")
            if kind not in _VALID_TYPES:
                raise MetricsError(f"line {line_number}: unknown type {kind!r}")
            if name in types:
                raise MetricsError(f"line {line_number}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise MetricsError(f"line {line_number}: malformed HELP line")
            name = parts[2]
            if name in helps:
                raise MetricsError(f"line {line_number}: duplicate HELP for {name}")
            helps[name] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise MetricsError(f"line {line_number}: unparseable sample {line!r}")
        name = match.group("name")
        label_text = match.group("labels")
        labels: List[Tuple[str, str]] = []
        le: Optional[str] = None
        if label_text:
            consumed = _LABEL_PAIR_RE.findall(label_text)
            stripped = _LABEL_PAIR_RE.sub("", label_text).replace(",", "").strip()
            if stripped:
                raise MetricsError(
                    f"line {line_number}: unparseable labels {label_text!r}"
                )
            for key, value in consumed:
                if not _LABEL_RE.match(key) or key.startswith("__"):
                    raise MetricsError(
                        f"line {line_number}: illegal label name {key!r}"
                    )
                if key == "le":
                    le = value
                else:
                    labels.append((key, value))
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise MetricsError(
                f"line {line_number}: unparseable value {match.group('value')!r}"
            ) from None
        family = _base_family(name, types)
        if family not in types:
            raise MetricsError(
                f"line {line_number}: sample {name!r} has no preceding TYPE line"
            )
        samples.append((family, name, tuple(sorted(labels)), le, value))
    return types, samples


def lint_text(text: str) -> Tuple[Dict[str, str], List[Sample]]:
    """Full structural lint; returns the parse so callers can assert more."""
    types, samples = parse_text(text)
    seen = set()
    for family, name, labels, le, value in samples:
        key = (name, labels, le)
        if key in seen:
            raise MetricsError(f"duplicate sample {name}{dict(labels)} le={le}")
        seen.add(key)
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                raise MetricsError(f"counter {name!r} does not end in _total")
            if value < 0:
                raise MetricsError(f"counter {name} has negative value {value}")
        if kind == "histogram":
            if name == family:
                raise MetricsError(
                    f"histogram {family} has a bare sample; expected "
                    "_bucket/_sum/_count"
                )
            if name.endswith("_bucket") and le is None:
                raise MetricsError(f"{name} bucket sample is missing its le label")
    # Per-(histogram, labelset): cumulative buckets, +Inf present, counts agree.
    buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple], float] = {}
    sums: Dict[Tuple[str, Tuple], float] = {}
    for family, name, labels, le, value in samples:
        if types[family] != "histogram":
            continue
        key = (family, labels)
        if name.endswith("_bucket"):
            buckets.setdefault(key, []).append((_parse_value(le or "+Inf"), value))
        elif name.endswith("_count"):
            counts[key] = value
        elif name.endswith("_sum"):
            sums[key] = value
    for key, series in buckets.items():
        family, labels = key
        series.sort(key=lambda pair: pair[0])
        bounds = [bound for bound, _ in series]
        if not bounds or bounds[-1] != float("inf"):
            raise MetricsError(
                f'histogram {family}{dict(labels)} has no le="+Inf" bucket'
            )
        cumulative = [count for _, count in series]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            raise MetricsError(
                f"histogram {family}{dict(labels)} buckets are not cumulative"
            )
        if key not in counts or key not in sums:
            raise MetricsError(
                f"histogram {family}{dict(labels)} is missing _sum or _count"
            )
        if cumulative[-1] != counts[key]:
            raise MetricsError(
                f"histogram {family}{dict(labels)}: +Inf bucket "
                f"{cumulative[-1]} != _count {counts[key]}"
            )
    return types, samples


def check_monotonic(earlier_text: str, later_text: str) -> int:
    """Counters present in both scrapes must never decrease.

    Returns the number of counter series compared; raises
    :class:`MetricsError` on any regression.
    """
    earlier_types, earlier_samples = lint_text(earlier_text)
    later_types, later_samples = lint_text(later_text)
    earlier_values = {
        (name, labels, le): value
        for family, name, labels, le, value in earlier_samples
        if earlier_types[family] == "counter"
    }
    compared = 0
    for family, name, labels, le, value in later_samples:
        if later_types[family] != "counter":
            continue
        key = (name, labels, le)
        if key not in earlier_values:
            continue
        compared += 1
        if value < earlier_values[key]:
            raise MetricsError(
                f"counter {name}{dict(labels)} went backwards: "
                f"{earlier_values[key]} -> {value}"
            )
    return compared


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(
            "usage: check_metrics.py SCRAPE.txt [EARLIER_SCRAPE.txt]",
            file=sys.stderr,
        )
        return 2
    try:
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
        types, samples = lint_text(text)
        if len(argv) == 2:
            with open(argv[1], "r", encoding="utf-8") as handle:
                earlier = handle.read()
            compared = check_monotonic(earlier, text)
            print(f"check_metrics: {compared} counter series monotonic")
    except OSError as exc:
        print(f"check_metrics: cannot read input: {exc}", file=sys.stderr)
        return 2
    except MetricsError as exc:
        print(f"check_metrics: INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"check_metrics: OK — {len(types)} families, {len(samples)} samples"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
