"""The two split implementations (§5.2, "Splitting Challenges").

* ``general`` — usable with any stream: consume the whole input, count the
  lines, then divide them evenly.  Correct but introduces a pipeline barrier.
* ``input-aware`` — usable when the input size is known up front: emit
  fixed-size contiguous blocks without a counting pass, preserving
  task-based parallelism.

Executed in memory the two produce the same chunks; they differ in the
timing behaviour modelled by :mod:`repro.simulator` and in the shell code
emitted by the back-end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.commands.base import Stream


def split_stream(
    lines: Sequence[str],
    parts: int,
    strategy: str = "general",
    known_size: Optional[int] = None,
) -> List[Stream]:
    """Split ``lines`` into ``parts`` contiguous chunks.

    Chunks are balanced to within one line.  The final list always has
    exactly ``parts`` entries (later entries may be empty when there are
    fewer lines than parts), because the consumers of a split are created
    before its input size is known.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    data = list(lines)
    if strategy not in ("general", "input-aware"):
        raise ValueError(f"unknown split strategy {strategy!r}")

    total = known_size if (strategy == "input-aware" and known_size is not None) else len(data)
    base, remainder = divmod(total, parts)
    chunks: List[Stream] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        chunks.append(data[start : start + size])
        start += size
    # Any lines beyond a stale known_size still need a home: append them to
    # the last chunk so no data is lost.
    if start < len(data):
        chunks[-1].extend(data[start:])
    return chunks


def round_robin_split(lines: Sequence[str], parts: int) -> List[Stream]:
    """Round-robin splitting.

    Provided for comparison in the ablation benchmarks; PaSh does not use it
    because it breaks commands whose semantics depend on adjacency (``uniq``)
    and costs more when re-merging ordered output.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    chunks: List[Stream] = [[] for _ in range(parts)]
    for index, line in enumerate(lines):
        chunks[index % parts].append(line)
    return chunks
