"""In-memory streams and the virtual file system used by the executor."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional


def _read_framed(path: Path) -> List[str]:
    """Read a real file with the stream model's framing: lines end at ``\\n``.

    Every layer of this reproduction — encode/decode in the engine channels,
    the emitted shell scripts, the worker-side file streaming — treats a
    stream as newline-delimited UTF-8.  The VFS fallback must split the same
    way (not ``str.splitlines``, which also breaks on ``\\r``/``\\f``/…), or
    the interpreter oracle and the parallel engine would disagree on files
    containing those characters.
    """
    text = path.read_bytes().decode("utf-8")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


class VirtualFileSystem:
    """A tiny in-memory file namespace.

    The executor resolves FILE edges against this namespace so that whole
    benchmark scripts can run hermetically.  Files are stored as lists of
    lines (no trailing newlines).  When a name is missing from the namespace
    the VFS optionally falls back to the real filesystem, which lets the
    examples operate on files the user actually has on disk.
    """

    def __init__(
        self,
        files: Optional[Dict[str, Iterable[str]]] = None,
        allow_real_files: bool = False,
    ) -> None:
        self._files: Dict[str, List[str]] = {}
        self.allow_real_files = allow_real_files
        for name, lines in (files or {}).items():
            self.write(name, lines)

    # ------------------------------------------------------------------

    def write(self, name: str, lines: Iterable[str]) -> None:
        """Create or overwrite a file."""
        self._files[name] = [str(line) for line in lines]

    def append(self, name: str, lines: Iterable[str]) -> None:
        """Append lines to a (possibly missing) file.

        With the real-filesystem fallback enabled, appending to a file that
        exists only on disk first pulls its content in — matching ``>>``
        semantics, which never truncate.
        """
        if name not in self._files and self.allow_real_files:
            path = Path(name)
            if path.exists():
                self._files[name] = _read_framed(path)
        self._files.setdefault(name, []).extend(str(line) for line in lines)

    def read(self, name: str) -> List[str]:
        """Read a file's lines; falls back to disk when allowed."""
        if name in self._files:
            return list(self._files[name])
        if self.allow_real_files:
            path = Path(name)
            if path.exists():
                return _read_framed(path)
        raise FileNotFoundError(f"virtual file {name!r} does not exist")

    def real_path(self, name: str) -> Optional[str]:
        """On-disk path backing ``name``, when it is not an in-memory entry.

        Lets the parallel engine *stream* large real files chunk-by-chunk in
        the worker that consumes them instead of materializing every input
        line in the parent process.  Returns None for in-memory files and
        when the real-filesystem fallback is disabled or the path is absent.
        """
        if name in self._files or not self.allow_real_files:
            return None
        path = Path(name)
        if path.is_file():
            return str(path)
        return None

    def exists(self, name: str) -> bool:
        if name in self._files:
            return True
        return self.allow_real_files and Path(name).exists()

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._files)

    def glob(self, pattern: str) -> List[str]:
        """Names matching a glob pattern, for pathname expansion.

        In-memory names are matched with the shared POSIX pattern rule
        (:func:`repro.shell.expansion.pattern_matches`: case-sensitive,
        names starting with ``.`` require an explicit leading dot); with the
        real-filesystem fallback enabled, on-disk matches are merged in so
        CLI runs can loop over real files.
        """
        from repro.shell.expansion import pattern_matches

        matches = {name for name in self._files if pattern_matches(name, pattern)}
        if self.allow_real_files:
            import glob as _glob

            matches.update(
                path for path in _glob.glob(pattern) if Path(path).is_file()
            )
        return sorted(matches)

    def total_lines(self) -> int:
        """Total number of lines stored (used by workload accounting)."""
        return sum(len(lines) for lines in self._files.values())

    def copy(self) -> "VirtualFileSystem":
        return VirtualFileSystem(
            {name: list(lines) for name, lines in self._files.items()},
            allow_real_files=self.allow_real_files,
        )

    def __contains__(self, name: str) -> bool:
        return self.exists(name)

    def __len__(self) -> int:
        return len(self._files)
