"""A small interpreter for the supported shell subset.

The interpreter provides the *sequential baseline*: it executes whole
scripts (sequences, pipelines, loops) directly over the in-memory command
implementations, without building any dataflow graph.  PaSh's output is then
checked against it.

Deliberate simplifications, documented here because they bound what the
benchmark scripts may use:

* Commands do not produce exit codes; ``&&`` always continues and ``||``
  always skips its right-hand side.
* ``while``/``until`` loops and ``if`` conditions are not supported.
* Command substitution is not evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.model import CommandInvocation
from repro.commands import CommandRegistry, standard_registry
from repro.commands.base import Stream
from repro.runtime.streams import VirtualFileSystem
from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    Command,
    ForLoop,
    IfClause,
    Node,
    Pipeline,
    SequenceNode,
    Subshell,
    WhileLoop,
)
from repro.shell.expansion import ExpansionContext, ExpansionError, expand_word
from repro.shell.parser import parse


class InterpreterError(RuntimeError):
    """Raised when a script uses constructs the interpreter does not support."""


@dataclass
class InterpreterState:
    """Mutable state threaded through script execution."""

    variables: Dict[str, str] = field(default_factory=dict)
    filesystem: VirtualFileSystem = field(default_factory=VirtualFileSystem)
    stdout: Stream = field(default_factory=list)


class ShellInterpreter:
    """Executes ASTs of the supported shell subset sequentially."""

    def __init__(
        self,
        filesystem: Optional[VirtualFileSystem] = None,
        variables: Optional[Dict[str, str]] = None,
        registry: Optional[CommandRegistry] = None,
        library: Optional[AnnotationLibrary] = None,
    ) -> None:
        self.state = InterpreterState(
            variables=dict(variables or {}),
            filesystem=filesystem or VirtualFileSystem(),
        )
        self.registry = registry if registry is not None else standard_registry()
        self.library = library if library is not None else standard_library()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_script(self, source: str) -> Stream:
        """Parse and execute ``source``; returns everything written to stdout."""
        return self.run_node(parse(source))

    def run_node(self, node: Node, stdin: Optional[Stream] = None) -> Stream:
        """Execute a node; returns (and records) the lines it wrote to stdout."""
        output = self._execute(node, list(stdin or []))
        self.state.stdout.extend(output)
        return output

    # ------------------------------------------------------------------
    # Node dispatch — every method returns the node's stdout stream
    # ------------------------------------------------------------------

    def _execute(self, node: Node, stdin: Stream) -> Stream:
        if isinstance(node, Command):
            return self._execute_command(node, stdin)
        if isinstance(node, Pipeline):
            return self._execute_pipeline(node, stdin)
        if isinstance(node, SequenceNode):
            output: Stream = []
            for part in node.parts:
                output.extend(self._execute(part, []))
            return output
        if isinstance(node, AndOr):
            output = list(self._execute(node.parts[0], []))
            for operator, part in zip(node.operators, node.parts[1:]):
                if operator == "&&":
                    output.extend(self._execute(part, []))
                # `||`: the left side "succeeded", so the right side is skipped.
            return output
        if isinstance(node, BackgroundNode):
            return self._execute(node.body, stdin)
        if isinstance(node, (Subshell, BraceGroup)):
            return self._execute(node.body, stdin)
        if isinstance(node, ForLoop):
            return self._execute_for(node)
        if isinstance(node, (WhileLoop, IfClause)):
            raise InterpreterError(
                f"{type(node).__name__} is outside the supported sequential subset"
            )
        raise InterpreterError(f"cannot interpret node {type(node).__name__}")

    # ------------------------------------------------------------------

    def _execute_for(self, node: ForLoop) -> Stream:
        items: List[str] = []
        context = self._context()
        for word in node.items:
            try:
                items.extend(expand_word(word, context))
            except ExpansionError as exc:
                raise InterpreterError(str(exc)) from exc
        output: Stream = []
        for item in items:
            self.state.variables[node.variable] = item
            output.extend(self._execute(node.body, []))
        return output

    def _execute_pipeline(self, node: Pipeline, stdin: Stream) -> Stream:
        current = list(stdin)
        for element in node.commands:
            if not isinstance(element, (Command, Subshell, BraceGroup)):
                raise InterpreterError("pipelines may only contain simple commands")
            current = self._execute(element, current)
        return current

    def _execute_command(self, node: Command, stdin: Stream) -> Stream:
        context = self._context()

        # Pure assignments.
        if node.assignments and not node.words:
            for assignment in node.assignments:
                try:
                    value_fields = expand_word(assignment.value, context)
                except ExpansionError:
                    value_fields = [""]
                self.state.variables[assignment.name] = " ".join(value_fields)
            return []

        argv: List[str] = []
        for word in node.words:
            try:
                argv.extend(expand_word(word, context))
            except ExpansionError as exc:
                raise InterpreterError(str(exc)) from exc
        if not argv:
            return []
        name, arguments = argv[0], argv[1:]

        inputs, remaining_arguments = self._resolve_inputs(name, arguments, stdin, node)
        output = self.registry.run(name, remaining_arguments, inputs)

        # Output redirections swallow the stream.
        for redirection in node.redirections:
            if redirection.operator in (">", ">>") and redirection.target is not None:
                target = " ".join(expand_word(redirection.target, context))
                if redirection.operator == ">":
                    self.state.filesystem.write(target, output)
                else:
                    self.state.filesystem.append(target, output)
                return []
        return output

    # ------------------------------------------------------------------

    def _resolve_inputs(
        self, name: str, arguments: List[str], stdin: Stream, node: Command
    ):
        """Determine the command's input streams (files, redirection, stdin)."""
        context = self._context()
        record = self.library.lookup(name)
        invocation = (
            record.invocation(name, arguments)
            if record is not None
            else CommandInvocation(name, arguments)
        )

        operand_files: List[str] = []
        if record is not None:
            assignment = record.classify(invocation)
            for spec in assignment.inputs:
                if spec.kind in ("arg", "args"):
                    operand_files.extend(spec.resolve(invocation))

        input_redirect: Optional[str] = None
        for redirection in node.redirections:
            if redirection.operator == "<" and redirection.target is not None:
                input_redirect = " ".join(expand_word(redirection.target, context))

        if operand_files:
            inputs = [self._read_file(filename, stdin) for filename in operand_files]
            remaining = [arg for arg in arguments if arg not in operand_files]
            return inputs, remaining
        if input_redirect is not None:
            return [self._read_file(input_redirect, stdin)], arguments
        return [list(stdin)], arguments

    def _read_file(self, filename: str, stdin: Stream) -> Stream:
        if filename == "-":
            return list(stdin)
        try:
            return self.state.filesystem.read(filename)
        except FileNotFoundError as exc:
            raise InterpreterError(str(exc)) from exc

    def _context(self) -> ExpansionContext:
        return ExpansionContext(dict(self.state.variables), strict=False)
