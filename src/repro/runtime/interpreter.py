"""A small interpreter for the supported shell subset.

The interpreter provides the *sequential baseline*: it executes whole
scripts (sequences, pipelines, loops, conditionals) directly over the
in-memory command implementations, without building any dataflow graph.
PaSh's output is then checked against it, and the JIT driver
(:mod:`repro.jit`) inherits its control-flow semantics wholesale.

Semantics, documented here because they bound what the benchmark scripts
may use:

* Exit statuses exist, but only the control-flow builtins produce nonzero
  ones: ``true``/``:`` (0), ``false`` (1), and ``test``/``[`` (0/1/2).
  Registry commands always succeed with status 0 (their failures raise
  :class:`InterpreterError` instead), so ``&&``/``||``/``if``/``while``
  branch exactly the same way on every backend.
* ``while``/``until`` loops are bounded by ``max_loop_iterations``
  (default 100 000) — a runaway condition raises instead of hanging CI.
* Command substitution ``$(...)`` runs the inner script in a subshell-style
  child interpreter: it shares the virtual filesystem but variable
  assignments inside do not leak out.
* Unquoted words containing ``*``/``?``/``[`` undergo pathname expansion
  against the virtual filesystem (plus the real one, when the VFS allows
  real files); per POSIX an unmatched pattern stays literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.model import CommandInvocation
from repro.commands import CommandRegistry, standard_registry
from repro.commands.base import Stream
from repro.runtime.streams import VirtualFileSystem
from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    Command,
    ForLoop,
    IfClause,
    Node,
    Pipeline,
    SequenceNode,
    Subshell,
    WhileLoop,
    Word,
)
from repro.shell.expansion import (
    ExpansionContext,
    ExpansionError,
    expand_pathnames,
    expand_word,
)
from repro.shell.parser import parse


class InterpreterError(RuntimeError):
    """Raised when a script uses constructs the interpreter does not support."""


#: Control-flow builtins executed by the interpreter itself (not the command
#: registry).  They are the only sources of nonzero exit statuses, which
#: keeps `&&`/`if`/`while` branching identical across every backend.
BUILTIN_COMMANDS = frozenset({"true", "false", ":", "test", "["})


@dataclass
class InterpreterState:
    """Mutable state threaded through script execution."""

    variables: Dict[str, str] = field(default_factory=dict)
    filesystem: VirtualFileSystem = field(default_factory=VirtualFileSystem)
    stdout: Stream = field(default_factory=list)
    #: Exit status of the most recently executed command (``$?``).
    last_status: int = 0
    #: Positional parameters backing ``$1``…, ``$#``, ``$@``/``$*``.
    positional: List[str] = field(default_factory=list)


class ShellInterpreter:
    """Executes ASTs of the supported shell subset sequentially."""

    def __init__(
        self,
        filesystem: Optional[VirtualFileSystem] = None,
        variables: Optional[Dict[str, str]] = None,
        registry: Optional[CommandRegistry] = None,
        library: Optional[AnnotationLibrary] = None,
        positional: Optional[Sequence[str]] = None,
        max_loop_iterations: int = 100_000,
    ) -> None:
        self.state = InterpreterState(
            variables=dict(variables or {}),
            # Not `or`: an empty VirtualFileSystem is falsy (it has __len__).
            filesystem=filesystem if filesystem is not None else VirtualFileSystem(),
            positional=list(positional or []),
        )
        self.registry = registry if registry is not None else standard_registry()
        self.library = library if library is not None else standard_library()
        self.max_loop_iterations = max_loop_iterations

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_script(self, source: str) -> Stream:
        """Parse and execute ``source``; returns everything written to stdout."""
        return self.run_node(parse(source))

    def run_node(self, node: Node, stdin: Optional[Stream] = None) -> Stream:
        """Execute a node; returns (and records) the lines it wrote to stdout."""
        output = self._execute(node, list(stdin or []))
        self.state.stdout.extend(output)
        return output

    # ------------------------------------------------------------------
    # Node dispatch — every method returns the node's stdout stream and
    # records its exit status in ``state.last_status``
    # ------------------------------------------------------------------

    def _execute(self, node: Node, stdin: Stream) -> Stream:
        if isinstance(node, Command):
            return self._execute_command(node, stdin)
        if isinstance(node, Pipeline):
            return self._execute_pipeline(node, stdin)
        if isinstance(node, SequenceNode):
            output: Stream = []
            for part in node.parts:
                output.extend(self._execute(part, []))
            return output
        if isinstance(node, AndOr):
            output = list(self._execute(node.parts[0], []))
            for operator, part in zip(node.operators, node.parts[1:]):
                succeeded = self.state.last_status == 0
                if (operator == "&&") == succeeded:
                    output.extend(self._execute(part, []))
                # A skipped operand leaves $? at the deciding status.
            return output
        if isinstance(node, BackgroundNode):
            return self._execute(node.body, stdin)
        if isinstance(node, Subshell):
            # Subshells isolate variable state; filesystem effects persist.
            saved = dict(self.state.variables)
            try:
                return self._execute(node.body, stdin)
            finally:
                self.state.variables = saved
        if isinstance(node, BraceGroup):
            return self._execute(node.body, stdin)
        if isinstance(node, ForLoop):
            return self._execute_for(node)
        if isinstance(node, WhileLoop):
            return self._execute_while(node)
        if isinstance(node, IfClause):
            return self._execute_if(node)
        raise InterpreterError(f"cannot interpret node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _execute_for(self, node: ForLoop) -> Stream:
        items: List[str] = []
        context = self._context()
        for word in node.items:
            try:
                items.extend(self._expand_fields(word, context))
            except ExpansionError as exc:
                raise InterpreterError(str(exc)) from exc
        output: Stream = []
        self.state.last_status = 0
        for item in items:
            self.state.variables[node.variable] = item
            output.extend(self._execute(node.body, []))
        return output

    def _execute_while(self, node: WhileLoop) -> Stream:
        output: Stream = []
        iterations = 0
        self.state.last_status = 0
        status = 0
        while True:
            output.extend(self._execute(node.condition, []))
            condition_true = self.state.last_status == 0
            if node.until:
                condition_true = not condition_true
            if not condition_true:
                break
            iterations += 1
            if iterations > self.max_loop_iterations:
                raise InterpreterError(
                    f"while loop exceeded {self.max_loop_iterations} iterations"
                )
            output.extend(self._execute(node.body, []))
            status = self.state.last_status
        # The loop's status is the last body execution's (0 when none ran).
        self.state.last_status = status
        return output

    def _execute_if(self, node: IfClause) -> Stream:
        # Per POSIX the condition's stdout is script output too.
        output = list(self._execute(node.condition, []))
        if self.state.last_status == 0:
            output.extend(self._execute(node.then_body, []))
        elif node.else_body is not None:
            output.extend(self._execute(node.else_body, []))
        else:
            self.state.last_status = 0
        return output

    # ------------------------------------------------------------------
    # Pipelines and commands
    # ------------------------------------------------------------------

    def _execute_pipeline(self, node: Pipeline, stdin: Stream) -> Stream:
        current = list(stdin)
        for element in node.commands:
            if not isinstance(element, (Command, Subshell, BraceGroup)):
                raise InterpreterError("pipelines may only contain simple commands")
            current = self._execute(element, current)
        if node.negated:
            self.state.last_status = 0 if self.state.last_status != 0 else 1
        return current

    def _execute_command(self, node: Command, stdin: Stream) -> Stream:
        context = self._context()

        # Pure assignments.
        if node.assignments and not node.words:
            for assignment in node.assignments:
                try:
                    value_fields = expand_word(assignment.value, context)
                except ExpansionError:
                    value_fields = [""]
                self.state.variables[assignment.name] = " ".join(value_fields)
            self.state.last_status = 0
            return []

        argv: List[str] = []
        for word in node.words:
            try:
                argv.extend(self._expand_fields(word, context))
            except ExpansionError as exc:
                raise InterpreterError(str(exc)) from exc
        if not argv:
            self.state.last_status = 0
            return []
        name, arguments = argv[0], argv[1:]

        if name in BUILTIN_COMMANDS:
            self.state.last_status = self._run_builtin(name, arguments)
            return []

        inputs, remaining_arguments = self._resolve_inputs(name, arguments, stdin, node)
        output = self.registry.run(name, remaining_arguments, inputs)
        self.state.last_status = 0

        # Output redirections swallow the stream.
        for redirection in node.redirections:
            if redirection.operator in (">", ">>") and redirection.target is not None:
                target = " ".join(expand_word(redirection.target, context))
                if redirection.operator == ">":
                    self.state.filesystem.write(target, output)
                else:
                    self.state.filesystem.append(target, output)
                return []
        return output

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------

    def _run_builtin(self, name: str, arguments: List[str]) -> int:
        if name in ("true", ":"):
            return 0
        if name == "false":
            return 1
        if name == "[":
            if not arguments or arguments[-1] != "]":
                raise InterpreterError("[: missing closing ']'")
            arguments = arguments[:-1]
        return self._evaluate_test(arguments)

    def _evaluate_test(self, arguments: List[str]) -> int:
        """POSIX ``test``: 0 = true, 1 = false, 2 = usage error (raised)."""
        if arguments and arguments[0] == "!":
            inner = self._evaluate_test(arguments[1:])
            return 1 if inner == 0 else 0
        if not arguments:
            return 1
        if len(arguments) == 1:
            return 0 if arguments[0] != "" else 1
        if len(arguments) == 2:
            operator, operand = arguments
            if operator == "-n":
                return 0 if operand != "" else 1
            if operator == "-z":
                return 0 if operand == "" else 1
            if operator in ("-e", "-f", "-r"):
                return 0 if self.state.filesystem.exists(operand) else 1
            if operator == "-s":
                try:
                    return 0 if self.state.filesystem.read(operand) else 1
                except FileNotFoundError:
                    return 1
            raise InterpreterError(f"test: unknown unary operator {operator!r}")
        if len(arguments) == 3:
            left, operator, right = arguments
            if operator in ("=", "=="):
                return 0 if left == right else 1
            if operator == "!=":
                return 0 if left != right else 1
            if operator in ("-eq", "-ne", "-lt", "-le", "-gt", "-ge"):
                try:
                    lhs, rhs = int(left), int(right)
                except ValueError as exc:
                    raise InterpreterError(f"test: integer expected: {exc}") from exc
                return (
                    0
                    if {
                        "-eq": lhs == rhs,
                        "-ne": lhs != rhs,
                        "-lt": lhs < rhs,
                        "-le": lhs <= rhs,
                        "-gt": lhs > rhs,
                        "-ge": lhs >= rhs,
                    }[operator]
                    else 1
                )
            raise InterpreterError(f"test: unknown binary operator {operator!r}")
        raise InterpreterError(f"test: too many arguments: {arguments!r}")

    # ------------------------------------------------------------------
    # Expansion helpers
    # ------------------------------------------------------------------

    def _expand_fields(self, word: Word, context: ExpansionContext) -> List[str]:
        """Expand one word into fields, applying pathname expansion."""
        fields = expand_word(word, context)
        return expand_pathnames(word, fields, self.state.filesystem.glob)

    def _run_substitution(self, text: str) -> str:
        """Evaluate one ``$(...)`` body in a subshell-style child interpreter."""
        child = ShellInterpreter(
            filesystem=self.state.filesystem,
            variables=dict(self.state.variables),
            registry=self.registry,
            library=self.library,
            positional=self.state.positional,
            max_loop_iterations=self.max_loop_iterations,
        )
        child.state.last_status = self.state.last_status
        try:
            output = child.run_script(text)
        except InterpreterError as exc:
            raise ExpansionError(f"command substitution failed: {exc}") from exc
        return "\n".join(output)

    def _context(self) -> ExpansionContext:
        # The live variables dict is adopted by reference so ${VAR:=default}
        # assignments persist into interpreter state, as POSIX requires.
        return ExpansionContext(
            self.state.variables,
            strict=False,
            positional=self.state.positional,
            last_status=self.state.last_status,
            command_runner=self._run_substitution,
            complete=True,
        )

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def _resolve_inputs(
        self, name: str, arguments: List[str], stdin: Stream, node: Command
    ):
        """Determine the command's input streams (files, redirection, stdin)."""
        context = self._context()
        record = self.library.lookup(name)
        invocation = (
            record.invocation(name, arguments)
            if record is not None
            else CommandInvocation(name, arguments)
        )

        operand_files: List[str] = []
        if record is not None:
            assignment = record.classify(invocation)
            for spec in assignment.inputs:
                if spec.kind in ("arg", "args"):
                    operand_files.extend(spec.resolve(invocation))

        input_redirect: Optional[str] = None
        for redirection in node.redirections:
            if redirection.operator == "<" and redirection.target is not None:
                input_redirect = " ".join(expand_word(redirection.target, context))

        if operand_files:
            inputs = [self._read_file(filename, stdin) for filename in operand_files]
            remaining = [arg for arg in arguments if arg not in operand_files]
            return inputs, remaining
        if input_redirect is not None:
            return [self._read_file(input_redirect, stdin)], arguments
        return [list(stdin)], arguments

    def _read_file(self, filename: str, stdin: Stream) -> Stream:
        if filename == "-":
            return list(stdin)
        try:
            return self.state.filesystem.read(filename)
        except FileNotFoundError as exc:
            raise InterpreterError(str(exc)) from exc
