"""In-process evaluation of dataflow graphs.

The executor computes the streams carried by every edge of a DFG, in
topological order, using the pure-Python command implementations.  It is the
oracle behind the correctness claims: for every benchmark, the optimized
graph must produce exactly the same graph outputs as the unoptimized graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.annotations.classes import ParallelizabilityClass
from repro.commands import CommandRegistry, standard_registry
from repro.commands.base import Stream
from repro.dfg.edges import Edge, EdgeKind
from repro.dfg.graph import DataflowGraph
from repro.dfg.nodes import (
    AggregatorNode,
    CatNode,
    CommandNode,
    DFGNode,
    FusedStage,
    RelayNode,
    SplitNode,
)
from repro.runtime.aggregators import apply_aggregator
from repro.runtime.eager import relay
from repro.runtime.split import split_stream
from repro.runtime.streams import VirtualFileSystem


class ExecutionError(RuntimeError):
    """Raised when a graph cannot be executed."""


def evaluate_node(node: DFGNode, inputs: List[Stream], registry: CommandRegistry) -> List[Stream]:
    """Evaluate one node over its input streams.

    Returns one stream per output edge (at least one for nodes without
    outputs, whose stream the caller discards).  The returned streams are
    independent lists: multi-output command nodes replicate their output, and
    a downstream consumer mutating its copy must not corrupt sibling edges.

    This is the single node-semantics kernel shared by the in-process
    executor and the parallel engine's worker processes.
    """
    if isinstance(node, CommandNode):
        output = registry.run(node.name, node.arguments, inputs)
        count = max(1, len(node.outputs))
        return [list(output) for _ in range(count)]
    if isinstance(node, FusedStage):
        output = evaluate_stateless_batch(node, inputs[0] if inputs else [], registry)
        count = max(1, len(node.outputs))
        return [list(output) for _ in range(count)]
    if isinstance(node, AggregatorNode):
        output = apply_aggregator(node.aggregator, inputs, node.command_arguments)
        return [output]
    if isinstance(node, CatNode):
        combined: Stream = []
        for stream in inputs:
            combined.extend(stream)
        return [combined]
    if isinstance(node, SplitNode):
        if len(inputs) != 1:
            raise ExecutionError("split nodes take exactly one input")
        return split_stream(inputs[0], max(1, len(node.outputs)), strategy=node.strategy)
    if isinstance(node, RelayNode):
        if len(inputs) != 1:
            raise ExecutionError("relay nodes take exactly one input")
        mode = "blocking" if node.blocking else ("eager" if node.eager else "fifo")
        return [relay(inputs[0], mode=mode)]
    raise ExecutionError(f"cannot execute node of kind {node.kind!r}")


def evaluate_stateless_batch(node: DFGNode, batch: Stream, registry: CommandRegistry) -> Stream:
    """Evaluate one stateless node (or fused chain) over one line batch.

    The single evaluation kernel shared by the interpreter and the parallel
    engine's batch-mode workers: a :class:`~repro.dfg.nodes.FusedStage` runs
    its members as an in-process pipeline (each member's output feeds the
    next, no intermediate framing), a plain command runs once.
    """
    if isinstance(node, FusedStage):
        stream: Stream = batch
        for member in node.nodes:
            stream = registry.run(member.name, member.arguments, [stream])
        return stream
    assert isinstance(node, CommandNode)
    return registry.run(node.name, node.arguments, [batch])


def node_streams_statelessly(node: DFGNode) -> bool:
    """True when the node may be evaluated over line batches incrementally.

    This is the same property the parallelization transformation relies on:
    a *stateless* command ``f`` satisfies ``f(concat(xs)) == concat(map(f,
    xs))`` for any line-granular partition of its input, so evaluating it one
    batch at a time and concatenating the outputs is bit-identical to
    evaluating it over the whole materialized stream.  The gate reuses the
    annotation classification (Table 1) rather than guessing from the
    command name, and is restricted to the single-data-input shape where the
    batch order is unambiguous.

    The parallel engine's workers use this to process stateless commands
    chunk-by-chunk instead of list-at-once, which is what keeps the hot
    path's memory bounded for larger-than-RAM streams.
    """
    if isinstance(node, FusedStage):
        # Fused by construction from stateless single-input members.
        return len(node.inputs) == 1
    return (
        isinstance(node, CommandNode)
        and node.parallelizability_class is ParallelizabilityClass.STATELESS
        and len(node.data_inputs) == 1
        and not node.config_inputs
    )


@dataclass
class ExecutionEnvironment:
    """Everything a graph execution reads and writes."""

    filesystem: VirtualFileSystem = field(default_factory=VirtualFileSystem)
    stdin: Stream = field(default_factory=list)
    registry: CommandRegistry = field(default_factory=standard_registry)

    def copy(self) -> "ExecutionEnvironment":
        return ExecutionEnvironment(
            filesystem=self.filesystem.copy(),
            stdin=list(self.stdin),
            registry=self.registry,
        )


@dataclass
class ExecutionResult:
    """Output of one graph execution."""

    stdout: Stream = field(default_factory=list)
    files: Dict[str, Stream] = field(default_factory=dict)
    edge_values: Dict[int, Stream] = field(default_factory=dict)

    def output_of(self, name: str) -> Stream:
        """Stream written to the named output file."""
        return self.files.get(name, [])


class DFGExecutor:
    """Evaluates dataflow graphs over in-memory streams."""

    def __init__(self, environment: Optional[ExecutionEnvironment] = None) -> None:
        self.environment = environment or ExecutionEnvironment()

    # ------------------------------------------------------------------

    def execute(self, graph: DataflowGraph) -> ExecutionResult:
        """Execute ``graph`` and return its outputs.

        The environment's virtual filesystem is updated with any files the
        graph writes, so sequences of graphs (e.g. the regions of a larger
        script) can be executed back to back.
        """
        graph.validate()
        edge_values: Dict[int, Stream] = {}
        result = ExecutionResult(edge_values=edge_values)

        for node in graph.topological_order():
            inputs = [self._edge_value(graph.edge(edge_id), edge_values) for edge_id in node.inputs]
            outputs = self._run_node(node, inputs)
            if len(outputs) != len(node.outputs):
                raise ExecutionError(
                    f"node {node.label()} produced {len(outputs)} streams for "
                    f"{len(node.outputs)} output edges"
                )
            for edge_id, stream in zip(node.outputs, outputs):
                edge_values[edge_id] = stream

        for edge in graph.output_edges():
            stream = edge_values.get(edge.edge_id, self._edge_value(edge, edge_values))
            self._deliver_output(edge, stream, result)
        return result

    # ------------------------------------------------------------------

    def _edge_value(self, edge: Edge, edge_values: Dict[int, Stream]) -> Stream:
        if edge.edge_id in edge_values:
            return edge_values[edge.edge_id]
        if edge.source is not None:
            raise ExecutionError(f"edge {edge.edge_id} read before being produced")
        if edge.kind is EdgeKind.STDIN:
            return list(self.environment.stdin)
        if edge.kind is EdgeKind.FILE:
            try:
                return self.environment.filesystem.read(edge.name or "")
            except FileNotFoundError as exc:
                raise ExecutionError(str(exc)) from exc
        # A dangling pipe input (should not occur in valid graphs).
        return []

    def _run_node(self, node: DFGNode, inputs: List[Stream]) -> List[Stream]:
        return evaluate_node(node, inputs, self.environment.registry)

    def _deliver_output(self, edge: Edge, stream: Stream, result: ExecutionResult) -> None:
        deliver_output(edge, stream, result, self.environment.filesystem)


def deliver_output(
    edge: Edge, stream: Stream, result: ExecutionResult, filesystem: VirtualFileSystem
) -> None:
    """Route one graph-output stream to stdout or the filesystem.

    Shared by the in-process executor and the parallel engine so that every
    backend delivers outputs with identical semantics.
    """
    if edge.kind is EdgeKind.STDOUT or (edge.kind is EdgeKind.PIPE and edge.is_graph_output):
        result.stdout.extend(stream)
        return
    if edge.kind is EdgeKind.FILE:
        if edge.append:
            filesystem.append(edge.name or "", stream)
        else:
            filesystem.write(edge.name or "", stream)
        result.files[edge.name or ""] = filesystem.read(edge.name or "")
        return
    if edge.kind is EdgeKind.STDIN:
        # A graph whose only edge is stdin (degenerate); nothing to do.
        return
    result.stdout.extend(stream)


def execute_graph(
    graph: DataflowGraph, environment: Optional[ExecutionEnvironment] = None
) -> ExecutionResult:
    """Convenience wrapper: execute ``graph`` in ``environment``."""
    return DFGExecutor(environment).execute(graph)
