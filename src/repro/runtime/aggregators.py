"""The aggregator library (§5.2, "Aggregator Implementations").

Aggregators merge the partial outputs of the parallel copies of a pure
command so that the combined result equals running the command over the
whole input.  Each aggregator takes the list of partial output streams plus
the original command's argument vector (flags such as ``sort -rn`` or
``head -n 5`` change how merging must behave).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence

from repro.commands import misc, sorting
from repro.commands.base import Stream, concat_streams


class AggregatorError(ValueError):
    """Raised when an unknown aggregator is requested."""


def concat(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Concatenate partial outputs (the aggregator of stateless commands)."""
    return concat_streams(list(streams))


def merge_sort(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Merge sorted runs — equivalent to ``sort -m`` with the original flags."""
    merge_arguments = [arg for arg in arguments if arg != "-m"] + ["-m"]
    return sorting.sort_command(list(merge_arguments), [list(s) for s in streams])


_UNIQ_COUNT_RE = re.compile(r"^\s*(\d+) (.*)$", re.DOTALL)


def merge_uniq(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Merge ``uniq`` outputs by fixing up the chunk boundaries.

    Plain ``uniq`` partial outputs may repeat a line across a boundary; with
    ``-c`` the boundary counts must be summed.  Both cases only require
    looking at the last line of one chunk and the first line of the next.
    """
    counting = "-c" in arguments or any(
        arg.startswith("-") and not arg.startswith("--") and "c" in arg[1:] for arg in arguments
    )
    merged: Stream = []
    for stream in streams:
        for line in stream:
            if not merged:
                merged.append(line)
                continue
            if counting:
                previous_match = _UNIQ_COUNT_RE.match(merged[-1])
                current_match = _UNIQ_COUNT_RE.match(line)
                if (
                    previous_match
                    and current_match
                    and previous_match.group(2) == current_match.group(2)
                ):
                    total = int(previous_match.group(1)) + int(current_match.group(1))
                    merged[-1] = f"{total:7d} {previous_match.group(2)}"
                    continue
                merged.append(line)
            else:
                if line == merged[-1]:
                    continue
                merged.append(line)
    return merged


def merge_uniq_count(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Merge ``uniq -c`` outputs (exposed separately for clarity)."""
    merged_arguments = list(arguments)
    if "-c" not in merged_arguments:
        merged_arguments.append("-c")
    return merge_uniq(streams, merged_arguments)


def merge_wc(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Sum ``wc`` outputs column-wise (handles any of -l/-w/-c combinations)."""
    totals: List[int] = []
    for stream in streams:
        if not stream:
            continue
        fields = [int(field) for field in stream[-1].split()]
        if not totals:
            totals = fields
        else:
            if len(fields) != len(totals):
                raise AggregatorError("wc partial outputs have mismatched columns")
            totals = [a + b for a, b in zip(totals, fields)]
    return [" ".join(str(value) for value in totals)] if totals else []


def merge_tac(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Concatenate ``tac`` partial outputs in reverse stream order."""
    return concat_streams([list(stream) for stream in reversed(list(streams))])


def merge_head(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Apply ``head`` again over the concatenation of partial outputs."""
    return misc.head(list(arguments), [concat_streams(list(streams))])


def merge_tail(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Apply ``tail`` again over the concatenation of partial outputs."""
    return misc.tail(list(arguments), [concat_streams(list(streams))])


def merge_sum(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Sum single-number outputs (e.g. parallel ``grep -c`` copies)."""
    total = 0
    for stream in streams:
        for line in stream:
            if line.strip():
                total += int(line.strip())
    return [str(total)]


def merge_comm(streams: Sequence[Stream], arguments: Sequence[str]) -> Stream:
    """Concatenate comm outputs (valid when the second input is static)."""
    return concat_streams(list(streams))


AGGREGATORS: Dict[str, Callable[[Sequence[Stream], Sequence[str]], Stream]] = {
    "concat": concat,
    "merge_sort": merge_sort,
    "merge_uniq": merge_uniq,
    "merge_uniq_count": merge_uniq_count,
    "merge_wc": merge_wc,
    "merge_tac": merge_tac,
    "merge_head": merge_head,
    "merge_tail": merge_tail,
    "merge_comm": merge_comm,
    "sum": merge_sum,
}


def apply_aggregator(
    name: str, streams: Sequence[Stream], arguments: Sequence[str]
) -> Stream:
    """Apply the aggregator called ``name``."""
    try:
        aggregator = AGGREGATORS[name]
    except KeyError as exc:
        raise AggregatorError(f"unknown aggregator {name!r}") from exc
    return aggregator(streams, arguments)
