"""PaSh's runtime primitives and the in-process DFG executor (§5.2).

The real PaSh ships small C/Python helper programs (``eager``, ``split``, and
a library of aggregators) that the emitted shell script invokes.  This
package provides the same primitives as Python functions plus:

* :class:`~repro.runtime.streams.VirtualFileSystem` — an in-memory file
  namespace so scripts can be executed hermetically,
* :class:`~repro.runtime.executor.DFGExecutor` — evaluates a dataflow graph
  over line streams, used to check that optimized graphs produce output
  identical to their sequential counterparts, and
* :class:`~repro.runtime.interpreter.ShellInterpreter` — a small interpreter
  for the supported shell subset, used as the sequential baseline for whole
  scripts (loops, sequences) rather than single regions.
"""

from repro.runtime.aggregators import AGGREGATORS, AggregatorError, apply_aggregator
from repro.runtime.eager import EagerBuffer
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment, ExecutionError
from repro.runtime.interpreter import InterpreterError, ShellInterpreter
from repro.runtime.split import split_stream
from repro.runtime.streams import VirtualFileSystem

__all__ = [
    "AGGREGATORS",
    "AggregatorError",
    "DFGExecutor",
    "EagerBuffer",
    "ExecutionEnvironment",
    "ExecutionError",
    "InterpreterError",
    "ShellInterpreter",
    "VirtualFileSystem",
    "apply_aggregator",
    "split_stream",
]
