"""Command-line entry points for the runtime helpers.

The shell scripts produced by :mod:`repro.backend.shell_emitter` invoke this
module (``python3 -m repro.runtime.cli``) for the primitives that have no
coreutils equivalent:

* ``eager`` — the eager relay: drain stdin as fast as possible into memory,
  then write everything to stdout (``--mode blocking`` delays output until
  EOF, ``--mode fifo`` degenerates to plain pass-through).
* ``split`` — read stdin and distribute it across the given output files
  using the general (counting) or input-aware strategy.
* ``agg`` — apply a named aggregator to the given partial-output files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.runtime.aggregators import apply_aggregator
from repro.runtime.split import split_stream


def _read_lines(stream) -> List[str]:
    return stream.read().splitlines()


def _write_lines(stream, lines: List[str]) -> None:
    for line in lines:
        stream.write(line + "\n")


def run_eager(arguments: argparse.Namespace) -> int:
    lines = _read_lines(sys.stdin)
    # Both modes produce identical output when run to completion; the
    # difference is purely in buffering behaviour, which a standalone process
    # realizes by reading everything before writing (eager/blocking) or
    # passing through (fifo).  Reading stdin fully already provides the
    # eager behaviour, so the modes coincide here.
    _write_lines(sys.stdout, lines)
    return 0


def run_split(arguments: argparse.Namespace) -> int:
    lines = _read_lines(sys.stdin)
    chunks = split_stream(lines, len(arguments.outputs), strategy=arguments.strategy)
    for path, chunk in zip(arguments.outputs, chunks):
        with open(path, "w") as handle:
            _write_lines(handle, chunk)
    return 0


def run_agg(arguments: argparse.Namespace) -> int:
    # Everything after a literal "--" (see main) is the original command's
    # argument vector, passed verbatim — flag values such as `head -n 100`'s
    # count must not be mistaken for input paths.  Dash-prefixed tokens mixed
    # into the inputs are accepted as flags too, for hand-written invocations.
    paths = [token for token in arguments.inputs if not token.startswith("-") or token == "-"]
    flags = [
        token for token in arguments.inputs if token.startswith("-") and token != "-"
    ] + list(getattr(arguments, "command_flags", []))
    streams = []
    for path in paths:
        with open(path) as handle:
            streams.append(_read_lines(handle))
    output = apply_aggregator(arguments.name, streams, flags)
    _write_lines(sys.stdout, output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.runtime.cli", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    eager = subparsers.add_parser("eager", help="eager relay")
    eager.add_argument("--mode", choices=("eager", "blocking", "fifo"), default="eager")
    eager.set_defaults(handler=run_eager)

    split = subparsers.add_parser("split", help="split stdin across output files")
    split.add_argument("--strategy", choices=("general", "input-aware"), default="general")
    split.add_argument("outputs", nargs="+", help="output file paths")
    split.set_defaults(handler=run_split)

    agg = subparsers.add_parser("agg", help="apply a named aggregator")
    agg.add_argument("name", help="aggregator name (e.g. merge_uniq)")
    agg.add_argument(
        "inputs",
        nargs="+",
        help="partial-output files to merge; tokens after `--` are treated as "
        "flags of the original command",
    )
    agg.set_defaults(handler=run_agg)

    return parser


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Split at the first "--" ourselves: argparse drops the separator, which
    # would make flag values (e.g. `-n 100`) indistinguishable from paths.
    command_flags: List[str] = []
    if "--" in argv:
        separator = argv.index("--")
        argv, command_flags = argv[:separator], argv[separator + 1 :]
    parser = build_parser()
    arguments = parser.parse_args(argv)
    arguments.command_flags = command_flags
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
