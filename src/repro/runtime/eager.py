"""Eager relay buffers (§5.2, "Overcoming Laziness").

In the real system the eager relay is a small program with a tight
multi-threaded loop: it reads its input as fast as the producer can write,
buffering in memory (and spilling to disk), so that upstream commands are
never blocked on a consumer that is not yet reading.

For the in-process executor the relay is simply an identity buffer; its
scheduling effect — decoupling producer and consumer progress — is what the
discrete-event simulator models.  This module still implements the buffer as
a real data structure with the three designs of Fig. 6 so that unit tests can
exercise their observable differences (blocking vs. non-blocking writes,
drain-after-EOF behaviour).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional


class EagerBuffer:
    """An unbounded FIFO buffer decoupling a producer from a consumer.

    ``mode`` selects the design point:

    * ``"eager"`` — writes never block; reads drain the buffer and only
      signal exhaustion after the producer closed the stream.
    * ``"blocking"`` — writes are accepted but the consumer cannot read
      anything until the producer has closed the stream (the "Blocking
      Eager" configuration of Fig. 7).
    * ``"fifo"`` — models a plain named pipe with a bounded capacity; writes
      beyond the capacity report that the producer would block, which is the
      pathological behaviour eager relays remove.
    """

    def __init__(self, mode: str = "eager", capacity: int = 65536) -> None:
        if mode not in ("eager", "blocking", "fifo"):
            raise ValueError(f"unknown eager buffer mode {mode!r}")
        self.mode = mode
        self.capacity = capacity
        self._queue: Deque[str] = deque()
        self._closed = False
        self.total_buffered = 0
        self.blocked_writes = 0

    # -- producer side -------------------------------------------------------

    def write(self, line: str) -> bool:
        """Append a line; returns False when a plain FIFO would have blocked."""
        if self._closed:
            raise ValueError("cannot write to a closed buffer")
        would_block = self.mode == "fifo" and len(self._queue) >= self.capacity
        if would_block:
            self.blocked_writes += 1
        self._queue.append(line)
        self.total_buffered = max(self.total_buffered, len(self._queue))
        return not would_block

    def write_all(self, lines: Iterable[str]) -> int:
        """Write many lines; returns the number of would-block events."""
        blocked = 0
        for line in lines:
            if not self.write(line):
                blocked += 1
        return blocked

    def close(self) -> None:
        """Signal end-of-stream from the producer."""
        self._closed = True

    # -- consumer side -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def readable(self) -> bool:
        """True when the consumer can currently make progress."""
        if self.mode == "blocking":
            return self._closed and bool(self._queue)
        return bool(self._queue)

    def read(self) -> Optional[str]:
        """Pop one line, or None when nothing is currently readable."""
        if not self.readable():
            return None
        return self._queue.popleft()

    def drain(self) -> List[str]:
        """Read everything currently readable."""
        lines: List[str] = []
        while self.readable():
            lines.append(self._queue.popleft())
        return lines

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[str]:
        return iter(self.drain())


def relay(lines: Iterable[str], mode: str = "eager") -> List[str]:
    """Run a stream through a relay buffer and return it unchanged.

    The identity law (`relay(x) == list(x)`) is what makes relay insertion a
    semantics-preserving transformation; tests assert it property-based.
    """
    buffer = EagerBuffer(mode=mode if mode != "none" else "eager")
    buffer.write_all(lines)
    buffer.close()
    return buffer.drain()
