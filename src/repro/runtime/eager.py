"""Eager relay buffers (§5.2, "Overcoming Laziness").

In the real system the eager relay is a small program with a tight
multi-threaded loop: it reads its input as fast as the producer can write,
buffering in memory and — past a high-water mark — spilling to disk
(dgsh-tee behaviour), so that upstream commands are never blocked on a
consumer that is not yet reading and memory use stays bounded no matter how
large the stream grows.

For the in-process executor the relay is simply an identity buffer; its
scheduling effect — decoupling producer and consumer progress — is what the
discrete-event simulator models.  This module still implements the buffer as
a real data structure with the three designs of Fig. 6 so that unit tests can
exercise their observable differences (blocking vs. non-blocking writes,
drain-after-EOF behaviour), and with the same spill-to-disk bound the
parallel engine's :class:`repro.engine.channels.SpillBuffer` enforces, so
the bounded-memory property can be unit-tested without forking processes.
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Tuple, Union

#: A buffered line: plain text (no spill accounting), an in-memory
#: ("m", line, size) entry, or a ("d", offset, length) spill-file ref.
_Token = Union[str, Tuple[str, str, int], Tuple[str, int, int]]


class EagerBuffer:
    """A FIFO buffer decoupling a producer from a consumer.

    ``mode`` selects the design point:

    * ``"eager"`` — writes never block; reads drain the buffer and only
      signal exhaustion after the producer closed the stream.
    * ``"blocking"`` — writes are accepted but the consumer cannot read
      anything until the producer has closed the stream (the "Blocking
      Eager" configuration of Fig. 7).
    * ``"fifo"`` — models a plain named pipe with a bounded capacity; writes
      beyond the capacity report that the producer would block, which is the
      pathological behaviour eager relays remove.

    ``spill_threshold`` bounds the buffer's in-memory footprint in bytes:
    once exceeded, further lines spill to an unlinked temporary file and are
    restored transparently, in order, as the consumer catches up.  ``None``
    keeps the buffer fully in memory (the pre-spill behaviour).
    """

    def __init__(
        self,
        mode: str = "eager",
        capacity: int = 65536,
        spill_threshold: Optional[int] = None,
        spill_directory: Optional[str] = None,
    ) -> None:
        if mode not in ("eager", "blocking", "fifo"):
            raise ValueError(f"unknown eager buffer mode {mode!r}")
        self.mode = mode
        self.capacity = capacity
        self.spill_threshold = spill_threshold
        self.spill_directory = spill_directory
        self._queue: Deque[_Token] = deque()
        self._closed = False
        self._mem_bytes = 0
        self._file = None
        self._write_offset = 0
        self.total_buffered = 0
        self.blocked_writes = 0
        #: High-water mark actually reached by the in-memory window (bytes).
        self.peak_buffered_bytes = 0
        #: Total bytes written to the spill file.
        self.spilled_bytes = 0
        #: Number of lines that went through the spill file.
        self.spill_events = 0

    # -- producer side -------------------------------------------------------

    def write(self, line: str) -> bool:
        """Append a line; returns False when a plain FIFO would have blocked."""
        if self._closed:
            raise ValueError("cannot write to a closed buffer")
        would_block = self.mode == "fifo" and len(self._queue) >= self.capacity
        if would_block:
            self.blocked_writes += 1
        if self.spill_threshold is None:
            # Unbounded mode: no byte accounting, no encoding overhead.
            self._queue.append(line)
        else:
            encoded = line.encode("utf-8")
            size = len(encoded) + 1
            if self._mem_bytes + size > self.spill_threshold:
                self._spill(encoded)
            else:
                self._queue.append(("m", line, size))
                self._mem_bytes += size
                if self._mem_bytes > self.peak_buffered_bytes:
                    self.peak_buffered_bytes = self._mem_bytes
        self.total_buffered = max(self.total_buffered, len(self._queue))
        return not would_block

    def _spill(self, encoded: bytes) -> None:
        # No fault point here on purpose: the eager buffer serves the
        # sequential interpreter, which is the degradation ladder's landing
        # ground — injected spill faults must not chase a degraded run.
        try:
            if self._file is None:
                if self.spill_directory:
                    os.makedirs(self.spill_directory, exist_ok=True)
                self._file = tempfile.TemporaryFile(
                    prefix="pash-eager-spill-", dir=self.spill_directory
                )
            self._file.seek(self._write_offset)
            self._file.write(encoded)
        except OSError as exc:
            from repro.resilience.errors import wrap_capacity_error

            raise wrap_capacity_error(
                exc, "eager:spill-write", self.spill_directory, len(encoded)
            ) from exc
        self._queue.append(("d", self._write_offset, len(encoded)))
        self._write_offset += len(encoded)
        self.spilled_bytes += len(encoded)
        self.spill_events += 1

    def write_all(self, lines: Iterable[str]) -> int:
        """Write many lines; returns the number of would-block events."""
        blocked = 0
        for line in lines:
            if not self.write(line):
                blocked += 1
        return blocked

    def close(self) -> None:
        """Signal end-of-stream from the producer."""
        self._closed = True

    # -- consumer side -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def readable(self) -> bool:
        """True when the consumer can currently make progress."""
        if self.mode == "blocking":
            return self._closed and bool(self._queue)
        return bool(self._queue)

    def read(self) -> Optional[str]:
        """Pop one line, or None when nothing is currently readable."""
        if not self.readable():
            return None
        return self._pop()

    def _pop(self) -> str:
        token = self._queue.popleft()
        if isinstance(token, str):
            line = token  # unbounded mode: nothing to account
        elif token[0] == "d":
            _, offset, length = token
            self._file.seek(offset)
            line = self._file.read(length).decode("utf-8")
        else:
            _, line, size = token
            self._mem_bytes -= size
        if self._closed and not self._queue:
            self._release_file()
        return line

    def drain(self) -> List[str]:
        """Read everything currently readable."""
        lines: List[str] = []
        while self.readable():
            lines.append(self._pop())
        return lines

    def _release_file(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._file = None

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[str]:
        return iter(self.drain())


def relay(
    lines: Iterable[str],
    mode: str = "eager",
    spill_threshold: Optional[int] = None,
    spill_directory: Optional[str] = None,
) -> List[str]:
    """Run a stream through a relay buffer and return it unchanged.

    The identity law (`relay(x) == list(x)`) is what makes relay insertion a
    semantics-preserving transformation; tests assert it property-based —
    including with a ``spill_threshold``, where part of the stream round-trips
    through disk.
    """
    buffer = EagerBuffer(
        mode=mode if mode != "none" else "eager",
        spill_threshold=spill_threshold,
        spill_directory=spill_directory,
    )
    buffer.write_all(lines)
    buffer.close()
    return buffer.drain()
