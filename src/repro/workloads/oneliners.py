"""The twelve classic one-liners of §6.1 (Table 2 and Fig. 7).

Each benchmark reads its corpus from a set of input chunk files (``in0.txt``,
``in1.txt``, ...); the evaluation harness sizes the chunk set to the
parallelism width under test, mirroring how the original evaluation divides
its input data.  Scripts stick to the command and flag subset implemented by
:mod:`repro.commands` so that the correctness check (sequential output ==
parallel output) can run hermetically.

Deviations from the exact scripts used in the paper are deliberate and noted
per benchmark (e.g. Bi-grams-opt uses a per-line bigram helper instead of the
stream-shifting trick, and Shortest-scripts replaces ``file`` — which needs a
real filesystem — with equivalent stateless stages).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import text
from repro.workloads.base import BenchmarkScript


def _cat(chunks: List[str]) -> str:
    return "cat " + " ".join(chunks)


# ---------------------------------------------------------------------------
# Script builders
# ---------------------------------------------------------------------------


def _grep_script(chunks: List[str]) -> str:
    return _cat(chunks) + " | tr A-Z a-z | grep 'light.*dark' | grep -v signal > out.txt"


def _grep_light_script(chunks: List[str]) -> str:
    return _cat(chunks) + " | grep lights | cut -d ' ' -f 1 | grep -v kernel > out.txt"


def _sort_script(chunks: List[str]) -> str:
    return _cat(chunks) + " | tr A-Z a-z | sort > out.txt"


def _topn_script(chunks: List[str]) -> str:
    return (
        _cat(chunks)
        + " | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 100 > out.txt"
    )


def _wf_script(chunks: List[str]) -> str:
    return (
        _cat(chunks)
        + " | tr -cs A-Za-z '\\n' | tr A-Z a-z | tr -d '[:punct:]' | sort | uniq -c | sort -rn"
        + " > out.txt"
    )


def _spell_script(chunks: List[str]) -> str:
    return (
        _cat(chunks)
        + " | tr A-Z a-z | tr -d '[:punct:]' | tr ' ' '\\n' | sort | uniq"
        + " | comm -13 dict.txt - > out.txt"
    )


def _shortest_scripts_script(chunks: List[str]) -> str:
    return (
        _cat(chunks)
        + " | tr -s ' ' | cut -d ' ' -f 1 | grep -v '^$' | sed 's;^/usr;/opt;'"
        + " | sort | head -n 15 > out.txt"
    )


def _diff_script(chunks: List[str]) -> str:
    half = max(len(chunks) // 2, 1)
    first, second = chunks[:half], chunks[half:] or chunks[:1]
    return "\n".join(
        [
            _cat(first) + " | tr A-Z a-z | sort > sorted_a.txt",
            _cat(second) + " | tr A-Z a-z | sort > sorted_b.txt",
            "diff sorted_a.txt sorted_b.txt | wc -l > out.txt",
        ]
    )


def _set_diff_script(chunks: List[str]) -> str:
    half = max(len(chunks) // 2, 1)
    first, second = chunks[:half], chunks[half:] or chunks[:1]
    return "\n".join(
        [
            _cat(first) + " | tr A-Z a-z | sort > sorted_a.txt",
            _cat(second) + " | cut -d ' ' -f 1 | tr A-Z a-z | sort > sorted_b.txt",
            "comm -3 sorted_a.txt sorted_b.txt | wc -l > out.txt",
        ]
    )


def _bigrams_script(chunks: List[str]) -> str:
    return "\n".join(
        [
            _cat(chunks) + " | tr -cs A-Za-z '\\n' | tr A-Z a-z > words.txt",
            "tail -n +2 words.txt > next_words.txt",
            "paste words.txt next_words.txt | sort | uniq -c | sort -rn > out.txt",
        ]
    )


def _bigrams_opt_script(chunks: List[str]) -> str:
    # The optimized variant folds the stream shifting into a single annotated
    # helper so the whole pipeline parallelizes without a split barrier.
    return (
        _cat(chunks)
        + " | lowercase | strip-punct | bigrams | sort | uniq -c | sort -rn > out.txt"
    )


def _sort_sort_script(chunks: List[str]) -> str:
    return _cat(chunks) + " | tr A-Z a-z | sort | sort -r > out.txt"


# ---------------------------------------------------------------------------
# Corpus generators
# ---------------------------------------------------------------------------


def _english(count: int, seed: int) -> List[str]:
    return text.text_lines(count, seed=seed)


def _paths(count: int, seed: int) -> List[str]:
    return text.script_paths(count, seed=seed + 100)


def _dictionary() -> Dict[str, List[str]]:
    return {"dict.txt": text.dictionary_words()}


# ---------------------------------------------------------------------------
# Benchmark table
# ---------------------------------------------------------------------------

_GB = 12_000_000  # ~1 GB of ~80-byte lines

ONE_LINERS: List[BenchmarkScript] = [
    BenchmarkScript(
        name="grep",
        build_script=_grep_script,
        structure="3xS",
        simulated_total_lines=1 * _GB,
        paper_input="1 GB",
        paper_seq_time="79m35s",
        highlights="complex NFA regex",
        corpus_generator=_english,
        cost_overrides={"grep": {"seconds_per_line": 2.4e-4, "selectivity": 0.2}},
        paper_speedup_note="near-linear, up to ~60x",
    ),
    BenchmarkScript(
        name="sort",
        build_script=_sort_script,
        structure="S, P",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="21m46s",
        highlights="sorting",
        corpus_generator=_english,
        paper_speedup_note="caps around 8x (sort scalability)",
    ),
    BenchmarkScript(
        name="top-n",
        build_script=_topn_script,
        structure="2xS, 4xP",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="78m45s",
        highlights="double sort, uniq reduction",
        corpus_generator=_english,
        paper_speedup_note="~10x at high width",
    ),
    BenchmarkScript(
        name="wf",
        build_script=_wf_script,
        structure="3xS, 3xP",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="22m30s",
        highlights="double sort, uniq reduction",
        corpus_generator=_english,
        paper_speedup_note="~8x",
    ),
    BenchmarkScript(
        name="grep-light",
        build_script=_grep_light_script,
        structure="3xS",
        simulated_total_lines=100 * _GB,
        paper_input="100 GB",
        paper_seq_time="1m38s",
        highlights="IO-intensive, computation-light",
        corpus_generator=_english,
        cost_overrides={"grep": {"seconds_per_line": 4e-8, "selectivity": 0.15}},
        paper_speedup_note="1.5-2.5x (IO bound)",
    ),
    BenchmarkScript(
        name="spell",
        build_script=_spell_script,
        structure="4xS, 3xP",
        simulated_total_lines=3 * _GB,
        paper_input="3 GB",
        paper_seq_time="25m07s",
        highlights="comparisons (comm)",
        corpus_generator=_english,
        static_files=_dictionary,
        static_line_counts={"dict.txt": 400},
        paper_speedup_note="~8x",
    ),
    BenchmarkScript(
        name="shortest-scripts",
        build_script=_shortest_scripts_script,
        structure="5xS, 2xP",
        simulated_total_lines=1_000_000,
        paper_input="85 MB",
        paper_seq_time="28m45s",
        highlights="long stateless pipeline ending with P",
        corpus_generator=_paths,
        cost_overrides={"sed": {"seconds_per_line": 1.5e-3}},
        paper_speedup_note="~15x",
    ),
    BenchmarkScript(
        name="diff",
        build_script=_diff_script,
        structure="2xS, 3xP",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="25m49s",
        highlights="non-parallelizable diffing",
        corpus_generator=_english,
        paper_speedup_note="caps around 3x",
    ),
    BenchmarkScript(
        name="bi-grams",
        build_script=_bigrams_script,
        structure="3xS, 3xP",
        simulated_total_lines=3 * _GB,
        paper_input="3 GB",
        paper_seq_time="38m09s",
        highlights="stream shifting and merging",
        corpus_generator=_english,
        paper_speedup_note="needs split; up to ~30x",
    ),
    BenchmarkScript(
        name="bi-grams-opt",
        build_script=_bigrams_opt_script,
        structure="3xS, P",
        simulated_total_lines=3 * _GB,
        paper_input="3 GB",
        paper_seq_time="38m21s",
        highlights="optimized version of bigrams",
        corpus_generator=_english,
        paper_speedup_note="better than bi-grams",
    ),
    BenchmarkScript(
        name="set-diff",
        build_script=_set_diff_script,
        structure="5xS, 2xP",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="51m32s",
        highlights="two pipelines merging to a comm",
        corpus_generator=_english,
        paper_speedup_note="~15x",
    ),
    BenchmarkScript(
        name="sort-sort",
        build_script=_sort_sort_script,
        structure="S, 2xP",
        simulated_total_lines=10 * _GB,
        paper_input="10 GB",
        paper_seq_time="31m26s",
        highlights="parallelizable P after P",
        corpus_generator=_english,
        paper_speedup_note="~6x, degrades at high width",
    ),
]


def get_one_liner(name: str) -> BenchmarkScript:
    """Look up a one-liner benchmark by name."""
    for benchmark in ONE_LINERS:
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"unknown one-liner benchmark {name!r}")


#: Paper-reported Table 2 values for comparison in EXPERIMENTS.md.
PAPER_TABLE2 = {
    "grep": {"nodes_16": 49, "nodes_64": 193},
    "sort": {"nodes_16": 77, "nodes_64": 317},
    "top-n": {"nodes_16": 96, "nodes_64": 384},
    "wf": {"nodes_16": 96, "nodes_64": 384},
    "grep-light": {"nodes_16": 49, "nodes_64": 193},
    "spell": {"nodes_16": 193, "nodes_64": 769},
    "shortest-scripts": {"nodes_16": 142, "nodes_64": 574},
    "diff": {"nodes_16": 125, "nodes_64": 509},
    "bi-grams": {"nodes_16": 185, "nodes_64": 761},
    "bi-grams-opt": {"nodes_16": 63, "nodes_64": 255},
    "set-diff": {"nodes_16": 155, "nodes_64": 635},
    "sort-sort": {"nodes_16": 154, "nodes_64": 634},
}
