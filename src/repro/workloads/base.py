"""Shared benchmark-script machinery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simulator.costs import CostModel, default_cost_model


def chunk_names(count: int, prefix: str = "in") -> List[str]:
    """Names of the input chunk files for a given parallelism width."""
    return [f"{prefix}{index}.txt" for index in range(count)]


def chunked_line_counts(total_lines: int, chunks: int, prefix: str = "in") -> Dict[str, int]:
    """Line counts per chunk file, used by the performance simulator."""
    per_chunk, remainder = divmod(total_lines, chunks)
    return {
        f"{prefix}{index}.txt": per_chunk + (1 if index < remainder else 0)
        for index in range(chunks)
    }


@dataclass
class BenchmarkScript:
    """One benchmark script (a Table 2 row / Fig. 7 panel).

    ``build_script`` receives the list of input chunk file names and returns
    the shell text; ``small_inputs`` produces an in-memory dataset for
    correctness checks; ``simulated_total_lines`` sizes the performance
    simulation; ``cost_overrides`` adjust the per-command cost model (e.g.
    the expensive backtracking regex of the Grep benchmark).
    """

    name: str
    build_script: Callable[[List[str]], str]
    structure: str
    simulated_total_lines: int
    paper_input: str
    paper_seq_time: str
    highlights: str
    #: Generates ``count`` corpus lines with the given seed (for correctness runs).
    corpus_generator: Callable[[int, int], List[str]] = None  # type: ignore[assignment]
    cost_overrides: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Paper-reported best speedup range (used in EXPERIMENTS.md).
    paper_speedup_note: str = ""
    #: Extra files every run needs regardless of width (e.g. a dictionary).
    static_files: Callable[[], Dict[str, List[str]]] = None  # type: ignore[assignment]
    #: Approximate line count of each static file for the simulator.
    static_line_counts: Dict[str, int] = field(default_factory=dict)

    def script_for_width(self, width: int, prefix: str = "in") -> str:
        """Shell text when the input corpus is divided into ``width`` chunks."""
        return self.build_script(chunk_names(width, prefix))

    def input_line_counts(self, width: int, prefix: str = "in") -> Dict[str, int]:
        """Per-file line counts for the simulator at a given width."""
        counts = chunked_line_counts(self.simulated_total_lines, width, prefix)
        counts.update(self.static_line_counts)
        return counts

    def cost_model(self) -> CostModel:
        """The default cost model with this benchmark's overrides applied."""
        model = default_cost_model()
        for command, changes in self.cost_overrides.items():
            model = model.override(command, **changes)
        return model

    def correctness_dataset(
        self, width: int, lines: int = 1200, prefix: str = "in"
    ) -> Dict[str, List[str]]:
        """A small in-memory dataset for checking sequential vs parallel output."""
        files: Dict[str, List[str]] = {}
        if self.corpus_generator is not None:
            per_chunk, remainder = divmod(lines, width)
            for index, name in enumerate(chunk_names(width, prefix)):
                size = per_chunk + (1 if index < remainder else 0)
                files[name] = self.corpus_generator(size, index)
        if self.static_files is not None:
            files.update(self.static_files())
        return files
