"""The NOAA temperature-analysis use case (§6.3, Fig. 1).

The paper's script downloads yearly index files and compressed station
archives from NOAA's FTP server.  The network and the archive format are not
available offline, so this workload substitutes them with deterministic
synthetic equivalents that preserve the pipeline structure:

* ``index_lines(year)`` stands in for ``curl $base/$y`` — a directory listing
  whose lines contain station archive names (some ending in ``.gz``, some
  not, so the ``grep gz`` stage still filters),
* ``station_records(identifier)`` stands in for ``xargs curl | gunzip`` — the
  fixed-width daily records of one station for one year, where columns 88-92
  hold the air temperature (with occasional ``999`` sentinel values exactly
  like the real dataset).

The same functions back the ``fetch-station`` command registered in
:mod:`repro.commands`, so the full Fig. 1 pipeline runs hermetically.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.workloads.base import BenchmarkScript

#: Years covered by the use case (the paper uses 2015-2020).
YEARS = list(range(2015, 2021))

#: Stations per yearly index (the real dataset has thousands; the synthetic
#: default keeps correctness runs fast while remaining configurable).
DEFAULT_STATIONS_PER_YEAR = 24

#: Daily records per station-year.
RECORDS_PER_STATION = 365


def index_lines(year: int, stations: int = DEFAULT_STATIONS_PER_YEAR) -> List[str]:
    """A synthetic FTP directory listing for one year."""
    rng = random.Random(year)
    lines = []
    for station in range(stations):
        name = f"{710000 + station:06d}-{rng.randrange(99999):05d}-{year}"
        size = rng.randrange(2_000, 90_000)
        # Mimic an `ls -l`-style listing: several columns, file name in the
        # 9th whitespace-separated field (matching the `cut -d " " -f9` stage).
        lines.append(
            f"-rw-r--r--  1 ftp  ftp  {size:8d} Jan  1 00:00 {name}.gz"
        )
        if station % 11 == 0:
            lines.append(
                f"-rw-r--r--  1 ftp  ftp  {size:8d} Jan  1 00:00 {name}.txt"
            )
    return lines


def station_records(identifier: str, records: int = RECORDS_PER_STATION) -> List[str]:
    """Fixed-width records for one station archive.

    Column layout follows the slice used by Fig. 1: characters 88-92
    (1-based, inclusive) contain the temperature in tenths of a degree,
    occasionally the 999 sentinel for missing data.
    """
    rng = random.Random(hash(identifier) & 0xFFFFFFFF)
    lines = []
    for day in range(records):
        temperature = rng.randrange(0, 450)
        if rng.random() < 0.02:
            body = "0999"
        else:
            body = f"{temperature:04d}"
        prefix = f"{identifier:<60.60}day{day:04d}".ljust(87, "x")
        # Characters 88-91 hold the 4-character temperature field, 92 a flag.
        lines.append(prefix + body + "1" + "trailing-data")
    return lines


def yearly_dataset(
    years: List[int] = None, stations: int = DEFAULT_STATIONS_PER_YEAR
) -> Dict[str, List[str]]:
    """Materialize index files and station archives for the interpreter."""
    years = years or YEARS
    files: Dict[str, List[str]] = {}
    for year in years:
        listing = index_lines(year, stations)
        files[f"noaa/{year}.index"] = listing
        for line in listing:
            name = line.split()[-1]
            if not name.endswith(".gz"):
                continue
            archive = name[:-3]
            files[f"noaa/{year}/{archive}"] = station_records(f"{year}/{archive}")
    return files


def per_year_pipeline(year: int, stations: int = DEFAULT_STATIONS_PER_YEAR) -> str:
    """The body of Fig. 1's loop for a single year, on the synthetic data.

    ``curl``/``gunzip`` are replaced by ``fetch-station`` (annotated stateless)
    which expands an archive identifier into its records.
    """
    return (
        f"cat noaa/{year}.index | grep gz | tr -s ' ' | cut -d ' ' -f 9"
        f" | sed 's;^;{year}/;' | xargs -n 1 fetch-station"
        " | cut -c 88-92 | grep -iv 999 | sort -rn | head -n 1"
        f" | sed 's;^;Maximum temperature for {year} is: ;'"
    )


def full_script(years: List[int] = None) -> str:
    """The complete multi-year script (a sequence of per-year pipelines)."""
    years = years or YEARS
    return "\n".join(per_year_pipeline(year) for year in years)


def simulated_line_counts(years: List[int] = None, stations: int = 2000) -> Dict[str, int]:
    """Line counts approximating the real dataset's size (~82 GB over 5 years)."""
    years = years or YEARS
    counts: Dict[str, int] = {}
    for year in years:
        counts[f"noaa/{year}.index"] = stations
    return counts


#: Benchmark wrapper used by the evaluation harness for a single year.
def _noaa_builder(chunks: List[str]) -> str:
    # The NOAA pipeline reads the index file, not pre-chunked corpora; the
    # chunk list length is still used to communicate the parallelism width.
    return per_year_pipeline(YEARS[0])


NOAA_BENCHMARK = BenchmarkScript(
    name="noaa-weather",
    build_script=_noaa_builder,
    structure="8xS, 2xP",
    simulated_total_lines=2000 * RECORDS_PER_STATION,
    paper_input="82 GB (5 years)",
    paper_seq_time="44m02s",
    highlights="download, extract, preprocess, then max-temperature reduction",
    corpus_generator=None,
    static_line_counts={f"noaa/{YEARS[0]}.index": 2000},
)
