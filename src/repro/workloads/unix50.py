"""The Unix50 pipelines (§6.2, Fig. 8).

Bell Labs' Unix50 game poses small text-processing puzzles solved with UNIX
pipelines; the paper benchmarks 34 community solutions written by
non-experts.  The original puzzle inputs and the GitHub solutions are not
redistributable here, so this module recreates a 34-pipeline corpus with the
same character:

* written against the same command set (grep/sed/cut/sort/uniq/awk/...),
* 2-12 stages each (average ~5.6, matching the paper),
* a group of pipelines that PaSh cannot accelerate because they contain
  commands it refuses to parallelize (``awk``, ``sed -n``), and
* a group dominated by ``head`` on tiny inputs, where PaSh's constant setup
  cost causes a slowdown.

Indices are stable so figures reference pipelines the same way the paper
does ("pipeline 13 contains an awk stage", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.workloads import text
from repro.workloads.base import chunk_names, chunked_line_counts

_GB_LINES = 12_000_000
_DEFAULT_LINES = 10 * _GB_LINES  # inputs were grown to ~10 GB in the paper


def _cat(chunks: List[str]) -> str:
    return "cat " + " ".join(chunks)


@dataclass
class Unix50Pipeline:
    """One Unix50 pipeline."""

    index: int
    description: str
    build_script: Callable[[List[str]], str]
    #: "speedup", "nospeedup" (unparallelizable command), or "slowdown" (tiny).
    expected_group: str = "speedup"
    simulated_total_lines: int = _DEFAULT_LINES
    corpus: str = "text"

    def script_for_width(self, width: int, prefix: str = "in") -> str:
        return self.build_script(chunk_names(width, prefix))

    def input_line_counts(self, width: int, prefix: str = "in") -> Dict[str, int]:
        return chunked_line_counts(self.simulated_total_lines, width, prefix)

    def stage_count(self) -> int:
        """Number of pipeline stages (used to sanity-check the corpus shape)."""
        return self.build_script(["in0.txt"]).count("|") + 1

    def correctness_dataset(self, width: int, lines: int = 800) -> Dict[str, List[str]]:
        generator = text.numeric_lines if self.corpus == "numeric" else text.text_lines
        per_chunk, remainder = divmod(lines, width)
        files = {}
        for index, name in enumerate(chunk_names(width)):
            size = per_chunk + (1 if index < remainder else 0)
            files[name] = generator(size, seed=self.index * 101 + index)
        return files


def _pipeline(template: str) -> Callable[[List[str]], str]:
    def build(chunks: List[str]) -> str:
        return template.format(input=_cat(chunks))
    return build


_TINY = 2_000  # the "practically one line of work" group


UNIX50_PIPELINES: List[Unix50Pipeline] = [
    Unix50Pipeline(0, "word frequencies",
                   _pipeline("{input} | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn")),
    Unix50Pipeline(1, "most common first words",
                   _pipeline("{input} | cut -d ' ' -f 1 | sort | uniq -c | sort -rn | head -n 20")),
    Unix50Pipeline(2, "first matching line only",
                   _pipeline("{input} | grep light | head -n 1"),
                   expected_group="slowdown", simulated_total_lines=_TINY),
    Unix50Pipeline(3, "sorted unique lowercase lines",
                   _pipeline("{input} | tr A-Z a-z | sort -u")),
    Unix50Pipeline(4, "count marker lines",
                   _pipeline("{input} | grep lights | wc -l")),
    Unix50Pipeline(5, "strip punctuation then count words",
                   _pipeline("{input} | tr -d '[:punct:]' | tr ' ' '\\n' | grep -v '^$' | wc -l")),
    Unix50Pipeline(6, "longest lines by folding",
                   _pipeline("{input} | fold -w 30 | sort | uniq | wc -l")),
    Unix50Pipeline(7, "reverse every line then sort",
                   _pipeline("{input} | rev | sort | head -n 50")),
    Unix50Pipeline(8, "second field histogram",
                   _pipeline("{input} | tr -s ' ' | cut -d ' ' -f 2 | sort | uniq -c | sort -rn")),
    Unix50Pipeline(9, "deduplicate then count",
                   _pipeline("{input} | sort | uniq | wc -l")),
    Unix50Pipeline(10, "grep chain with negation",
                   _pipeline("{input} | grep light | grep -v dark | tr A-Z a-z | sort | uniq")),
    Unix50Pipeline(11, "numeric extremes",
                   _pipeline("{input} | grep -v 999 | sort -rn | head -n 5"), corpus="numeric"),
    Unix50Pipeline(12, "character histogram",
                   _pipeline("{input} | fold -w 1 | sort | uniq -c | sort -rn | head -n 26")),
    Unix50Pipeline(13, "awk column reorder then sort",
                   _pipeline("{input} | awk '{{print $2, $0}}' | sort -rn | head -n 10"),
                   expected_group="nospeedup"),
    Unix50Pipeline(14, "stemmed vocabulary",
                   _pipeline("{input} | lowercase | word-stem | tr ' ' '\\n' | sort -u | wc -l")),
    Unix50Pipeline(15, "bigram counts",
                   _pipeline("{input} | lowercase | bigrams | sort | uniq -c | sort -rn | head -n 30")),
    Unix50Pipeline(16, "sorted numeric column",
                   _pipeline("{input} | tr -s ' ' | cut -d ' ' -f 3 | sort -n | uniq -c"),
                   corpus="numeric"),
    Unix50Pipeline(17, "reverse complement-ish transform",
                   _pipeline("{input} | tr A-Za-z N-ZA-Mn-za-m | sort | head -n 40")),
    Unix50Pipeline(18, "longest words",
                   _pipeline("{input} | tr ' ' '\\n' | sort | uniq | rev | sort | rev | head -n 25")),
    Unix50Pipeline(19, "single header line",
                   _pipeline("{input} | head -n 1 | tr A-Z a-z"),
                   expected_group="slowdown", simulated_total_lines=_TINY),
    Unix50Pipeline(20, "sort by trailing field",
                   _pipeline("{input} | rev | sort | rev | uniq | wc -l")),
    Unix50Pipeline(21, "filter then squeeze",
                   _pipeline("{input} | grep -i unix | tr -s ' ' | cut -d ' ' -f 1 | sort | uniq -c")),
    Unix50Pipeline(22, "cheap filter over huge input",
                   _pipeline("{input} | grep -v the | wc -l")),
    Unix50Pipeline(23, "punctuation census",
                   _pipeline("{input} | tr -d A-Za-z0-9 | tr -d ' ' | fold -w 1 | sort | uniq -c")),
    Unix50Pipeline(24, "awk projection",
                   _pipeline("{input} | awk '{{print $1}}' | sort | uniq | wc -l"),
                   expected_group="nospeedup"),
    Unix50Pipeline(25, "line numbering with awk",
                   _pipeline("{input} | awk '{{print $0}}' | nl | tail -n 5"),
                   expected_group="nospeedup"),
    Unix50Pipeline(26, "positional selection",
                   _pipeline("{input} | nl | grep '5' | tail -n+2 | wc -l"),
                   expected_group="nospeedup"),
    Unix50Pipeline(27, "double sort pipeline",
                   _pipeline("{input} | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 100")),
    Unix50Pipeline(28, "repeated first words",
                   _pipeline("{input} | cut -d ' ' -f 1 | sort | uniq -d | wc -l")),
    Unix50Pipeline(29, "awk with separator",
                   _pipeline("{input} | awk -F ' ' '{{print $3}}' | sort -n | tail -n 3"),
                   expected_group="nospeedup"),
    Unix50Pipeline(30, "stream editor line selection",
                   _pipeline("{input} | sed -n 1p | wc -c"),
                   expected_group="nospeedup", simulated_total_lines=_GB_LINES),
    Unix50Pipeline(31, "tiny lookup",
                   _pipeline("{input} | grep -i maximum | head -n 2"),
                   expected_group="slowdown", simulated_total_lines=_TINY),
    Unix50Pipeline(32, "vocabulary growth",
                   _pipeline("{input} | tr -cs A-Za-z '\\n' | lowercase | sort -u | wc -l")),
    Unix50Pipeline(33, "frequency of long words",
                   _pipeline("{input} | tr ' ' '\\n' | grep '.{{7,}}' | sort | uniq -c | sort -rn")),
]


def get_pipeline(index: int) -> Unix50Pipeline:
    """Look up a Unix50 pipeline by its stable index."""
    for pipeline in UNIX50_PIPELINES:
        if pipeline.index == index:
            return pipeline
    raise KeyError(f"unknown Unix50 pipeline {index}")


def average_stage_count() -> float:
    """Average pipeline depth of the corpus (paper: 5.58)."""
    return sum(p.stage_count() for p in UNIX50_PIPELINES) / len(UNIX50_PIPELINES)
