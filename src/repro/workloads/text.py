"""Deterministic synthetic text corpora.

The paper's one-liners run over gigabytes of English text.  The reproduction
generates deterministic pseudo-English corpora: Zipf-ish word frequencies,
mixed capitalization and punctuation, and occasional marker words that give
``grep`` patterns something to match at a controllable rate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

_VOCABULARY = [
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
    "he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
    "unix", "shell", "pipeline", "stream", "process", "signal", "kernel",
    "buffer", "socket", "thread", "parallel", "data", "graph", "node",
    "edge", "merge", "split", "relay", "eager", "lazy", "light", "dark",
    "maximum", "minimum", "temperature", "weather", "station", "record",
    "apple", "banana", "cherry", "grape", "lemon", "melon", "orange",
    "system", "research", "paper", "figure", "table", "result", "speedup",
]

_PUNCTUATION = [",", ".", ";", ":", "!", "?", ""]


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def _zipf_choice(rng: random.Random, vocabulary: Sequence[str]) -> str:
    """Pick a word with a Zipf-like bias towards the front of the vocabulary."""
    rank = int(len(vocabulary) * (rng.random() ** 2.2))
    return vocabulary[min(rank, len(vocabulary) - 1)]


def text_lines(
    count: int,
    seed: int = 0,
    words_per_line: int = 8,
    marker: str = "lights",
    marker_rate: float = 0.12,
) -> List[str]:
    """Generate ``count`` lines of pseudo-English text.

    ``marker`` is injected into roughly ``marker_rate`` of the lines so grep
    benchmarks have a predictable selectivity.
    """
    rng = _rng(seed)
    lines: List[str] = []
    for _ in range(count):
        words = []
        for position in range(words_per_line):
            word = _zipf_choice(rng, _VOCABULARY)
            if rng.random() < 0.15:
                word = word.capitalize()
            if rng.random() < 0.08:
                word += rng.choice(_PUNCTUATION)
            words.append(word)
        if rng.random() < marker_rate:
            words[rng.randrange(len(words))] = marker
        lines.append(" ".join(words))
    return lines


def numeric_lines(count: int, seed: int = 0, maximum: int = 10_000) -> List[str]:
    """Lines holding a single integer (sorting and numeric benchmarks)."""
    rng = _rng(seed)
    return [str(rng.randrange(maximum)) for _ in range(count)]


def csv_lines(count: int, seed: int = 0, columns: int = 5) -> List[str]:
    """Comma-free whitespace-separated tabular data (cut/awk benchmarks)."""
    rng = _rng(seed)
    lines = []
    for index in range(count):
        fields = [f"row{index}"]
        fields.extend(str(rng.randrange(1000)) for _ in range(columns - 1))
        lines.append(" ".join(fields))
    return lines


def dictionary_words(count: int = 400, seed: int = 7) -> List[str]:
    """A sorted, lower-cased dictionary for the spell benchmark."""
    rng = _rng(seed)
    words = set(_VOCABULARY)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    while len(words) < count:
        length = rng.randrange(3, 9)
        words.add("".join(rng.choice(alphabet) for _ in range(length)))
    return sorted(words)


def chunked_corpus(
    total_lines: int,
    chunks: int,
    seed: int = 0,
    prefix: str = "in",
    generator=text_lines,
) -> Dict[str, List[str]]:
    """Split a freshly generated corpus into ``chunks`` named files."""
    per_chunk, remainder = divmod(total_lines, chunks)
    files: Dict[str, List[str]] = {}
    for index in range(chunks):
        size = per_chunk + (1 if index < remainder else 0)
        files[f"{prefix}{index}.txt"] = generator(size, seed=seed + index)
    return files


def script_paths(count: int, seed: int = 11) -> List[str]:
    """Colon-separated path-like lines for the shortest-scripts benchmark."""
    rng = _rng(seed)
    directories = ["/usr/bin", "/usr/local/bin", "/opt/tools", "/home/user/bin"]
    suffixes = ["sh", "py", "pl", "rb", ""]
    lines = []
    for index in range(count):
        directory = rng.choice(directories)
        suffix = rng.choice(suffixes)
        name = f"tool{index % 97}" + (f".{suffix}" if suffix else "")
        size = rng.randrange(10, 90_000)
        lines.append(f"{directory}/{name} {size} script executable text {index}")
    return lines
