"""Workload definitions: synthetic inputs plus the benchmark script corpus.

Every experiment in the paper's evaluation is backed by a workload defined
here:

* :mod:`repro.workloads.text` — deterministic synthetic text corpora,
* :mod:`repro.workloads.oneliners` — the twelve classic one-liners of §6.1
  (Table 2 / Fig. 7),
* :mod:`repro.workloads.unix50` — the 34 Unix50 pipelines of §6.2 (Fig. 8),
* :mod:`repro.workloads.noaa` — the temperature-analysis use case of §6.3,
* :mod:`repro.workloads.wikipedia` — the web-indexing use case of §6.4.
"""

from repro.workloads.base import BenchmarkScript, chunk_names, chunked_line_counts
from repro.workloads.oneliners import ONE_LINERS, get_one_liner
from repro.workloads.unix50 import UNIX50_PIPELINES, Unix50Pipeline
from repro.workloads import noaa, wikipedia

__all__ = [
    "BenchmarkScript",
    "ONE_LINERS",
    "UNIX50_PIPELINES",
    "Unix50Pipeline",
    "chunk_names",
    "chunked_line_counts",
    "get_one_liner",
    "noaa",
    "wikipedia",
]
