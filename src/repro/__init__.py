"""Reproduction of "PaSh: Light-touch Data-Parallel Shell Processing"
(EuroSys 2021).

The package exposes one front door — :mod:`repro.api` — plus the subsystems
it is built from:

* :mod:`repro.api` — ``Pash.compile(source, config) -> CompiledScript``:
  the library-first compilation API (config, pass pipeline, artifact),
* :mod:`repro.shell` — POSIX shell parser / expander / unparser,
* :mod:`repro.annotations` — parallelizability classes and the annotation DSL,
* :mod:`repro.dfg` — the dataflow-graph IR and the AST→DFG front-end,
* :mod:`repro.transform` — the named optimization passes and the pass manager,
* :mod:`repro.backend` — DFG→shell back-end,
* :mod:`repro.engine` — the multiprocess execution engine and backend registry,
* :mod:`repro.runtime` — eager relays, split, aggregators, and the in-process
  executor used for correctness checking,
* :mod:`repro.commands` — pure-Python UNIX command implementations,
* :mod:`repro.simulator` — the performance model behind the evaluation,
* :mod:`repro.workloads` and :mod:`repro.evaluation` — benchmark scripts,
  synthetic datasets, and the table/figure harnesses.

Quick start::

    from repro.api import Pash, PashConfig

    compiled = Pash.compile(
        "cat a.txt b.txt | grep error | sort | uniq -c",
        PashConfig.paper_default(width=8),
    )
    print(compiled.text)                       # the parallel shell script
    result = compiled.execute(backend="parallel")

``repro.compile_script`` and ``repro.ParallelizationConfig`` remain importable
for older code; ``compile_script`` emits a :class:`DeprecationWarning`.
"""

from repro.api import CompiledScript, Pash, PashConfig
from repro.backend.compiler import compile_script
from repro.transform.pipeline import EagerMode, ParallelizationConfig, SplitMode

__version__ = "0.11.0"

__all__ = [
    "CompiledScript",
    "EagerMode",
    "ParallelizationConfig",
    "Pash",
    "PashConfig",
    "SplitMode",
    "compile_script",
    "__version__",
]
