"""Reproduction of "PaSh: Light-touch Data-Parallel Shell Processing"
(EuroSys 2021).

The package exposes the end-to-end compiler plus the subsystems it is built
from:

* :mod:`repro.shell` — POSIX shell parser / expander / unparser,
* :mod:`repro.annotations` — parallelizability classes and the annotation DSL,
* :mod:`repro.dfg` — the dataflow-graph IR and the AST→DFG front-end,
* :mod:`repro.transform` — the parallelization and auxiliary transformations,
* :mod:`repro.backend` — DFG→shell back-end,
* :mod:`repro.runtime` — eager relays, split, aggregators, and the in-process
  executor used for correctness checking,
* :mod:`repro.commands` — pure-Python UNIX command implementations,
* :mod:`repro.simulator` — the performance model behind the evaluation,
* :mod:`repro.workloads` and :mod:`repro.evaluation` — benchmark scripts,
  synthetic datasets, and the table/figure harnesses.

Quick start::

    from repro import compile_script, ParallelizationConfig

    compiled = compile_script(
        "cat a.txt b.txt | grep error | sort | uniq -c",
        ParallelizationConfig.paper_default(width=8),
    )
    print(compiled.text)
"""

from repro.backend.compiler import CompiledScript, compile_script
from repro.transform.pipeline import EagerMode, ParallelizationConfig, SplitMode

__version__ = "0.2.0"

__all__ = [
    "CompiledScript",
    "EagerMode",
    "ParallelizationConfig",
    "SplitMode",
    "compile_script",
    "__version__",
]
