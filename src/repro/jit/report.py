"""``JitReport`` — what the JIT driver did to one script run.

Every region candidate the driver reaches is recorded: whether it was
compiled fresh, served from the plan cache, or fell back to the sequential
interpreter (and why).  The report is the observability surface the
acceptance tests and the CLI's ``--report`` read.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class RegionOutcome:
    """One region occurrence, in execution order."""

    #: Structural fingerprint (see :func:`repro.dfg.regions.region_fingerprint`).
    fingerprint: str
    #: The region's shell text (for diagnostics).
    text: str
    #: ``"compiled"`` | ``"cached"`` | ``"fallback"``.
    action: str
    #: Why the region fell back (empty for compiled/cached regions).
    reason: str = ""
    #: Wall time spent executing the region (any path).
    elapsed_seconds: float = 0.0
    #: Wall time spent inside the compiler for this occurrence (0 on hits).
    compile_seconds: float = 0.0
    #: True when the fallback decision itself came from the negative cache.
    cached_failure: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Stable flat-JSON schema: exactly the dataclass fields."""
        return {
            outcome_field.name: getattr(self, outcome_field.name)
            for outcome_field in dataclasses.fields(self)
        }


@dataclass
class JitReport:
    """Aggregate outcome of one JIT-driven script run."""

    outcomes: List[RegionOutcome] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def regions_seen(self) -> int:
        """Region occurrences reached at runtime (loop bodies count per iteration)."""
        return len(self.outcomes)

    @property
    def regions_compiled(self) -> int:
        """Occurrences that triggered a fresh compilation."""
        return sum(1 for outcome in self.outcomes if outcome.action == "compiled")

    @property
    def cache_hits(self) -> int:
        """Occurrences served straight from the plan cache."""
        return sum(1 for outcome in self.outcomes if outcome.action == "cached")

    @property
    def fallbacks(self) -> int:
        """Occurrences executed by the sequential interpreter instead."""
        return sum(1 for outcome in self.outcomes if outcome.action == "fallback")

    @property
    def compile_seconds(self) -> float:
        """Total wall time spent compiling across the run."""
        return sum(outcome.compile_seconds for outcome in self.outcomes)

    def fallback_reasons(self) -> Dict[str, int]:
        """Histogram of why regions fell back (reason -> occurrences)."""
        return dict(
            Counter(
                outcome.reason
                for outcome in self.outcomes
                if outcome.action == "fallback"
            )
        )

    def record(self, outcome: RegionOutcome) -> None:
        self.outcomes.append(outcome)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON schema: per-occurrence rows plus the derived aggregates."""
        return {
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "regions_seen": self.regions_seen,
            "regions_compiled": self.regions_compiled,
            "cache_hits": self.cache_hits,
            "fallbacks": self.fallbacks,
            "compile_seconds": self.compile_seconds,
            "fallback_reasons": self.fallback_reasons(),
        }

    def summary(self) -> str:
        """One-line digest (used by the CLI's ``--report``)."""
        digest = (
            f"jit: {self.regions_seen} regions seen, "
            f"{self.regions_compiled} compiled, "
            f"{self.cache_hits} cache hits, "
            f"{self.fallbacks} fell back"
        )
        if self.compile_seconds:
            digest += f" (compile {self.compile_seconds * 1000:.1f} ms)"
        reasons = self.fallback_reasons()
        if reasons:
            top = sorted(reasons.items(), key=lambda item: -item[1])[:3]
            digest += "; top fallback reasons: " + ", ".join(
                f"{reason!r} x{count}" for reason, count in top
            )
        return digest
