"""``PlanCache`` — compiled dataflow plans keyed on runtime state.

A plan is reusable exactly when three things match:

1. the region's structural **fingerprint** (its shell text),
2. the **values of every parameter the region references** at the moment it
   is reached (a loop body that does not mention the loop variable hashes
   identically on every iteration; one that does recompiles whenever the
   value changes), and
3. the **configuration digest** (width, passes, streaming knobs… — anything
   that changes what the pass pipeline produces).

Compilation *failures* are cached too (negative entries), so a loop body the
compiler refuses once is refused from the cache on later iterations instead
of re-walking the builder every time.  Regions whose expansion depends on
state outside the key — command substitutions, glob patterns — are never
cached; the driver marks them uncacheable.

Two cache classes share this keying:

* :class:`PlanCache` — the in-memory bounded LRU every :class:`JitDriver`
  owns by default.  Thread-safe: the service daemon shares one instance
  across executor threads.
* :class:`DiskPlanCache` — the LRU plus a **persistent disk tier**: every
  successfully compiled plan is also pickled to a cache directory, so a
  popular one-liner compiles once per fleet, not once per process.  Disk
  entries carry :func:`cache_version`; a version mismatch (new release, new
  plan format) invalidates the file on first touch.  Corrupt or truncated
  files are never fatal: the lookup falls back to a fresh compile and the
  bad file is removed (and negative-cached in memory if removal fails), so
  one crashed writer cannot poison the fleet.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple, Union

from repro.obs.metrics import counter_inc

#: (fingerprint, referenced-binding values, config digest)
PlanKey = Tuple[str, Tuple[Tuple[str, Optional[str]], ...], str]

#: Bumped on any incompatible change to the pickled disk-entry layout.
PLAN_FORMAT_VERSION = 1


def cache_version() -> str:
    """The disk tier's compatibility stamp.

    Combines the package version with the on-disk format version: plans
    compiled by any other release (whose passes may produce different
    graphs) or written in any other layout are stale on arrival.
    """
    from repro import __version__

    return f"{__version__}+plan{PLAN_FORMAT_VERSION}"


@dataclass
class CompiledPlan:
    """A successfully compiled (and optimized) region, ready to re-execute."""

    graph: Any  # DataflowGraph (kept untyped to avoid an import cycle)
    report: Any  # OptimizationReport
    fingerprint: str
    compile_seconds: float = 0.0
    #: How many times this plan has been executed (1 = compile run only).
    executions: int = 0


@dataclass
class FailedPlan:
    """A cached compilation refusal (the negative entry)."""

    reason: str
    fingerprint: str


PlanEntry = Union[CompiledPlan, FailedPlan]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    evictions: int = 0
    #: Disk-tier counters (all zero on a purely in-memory cache).
    disk_hits: int = 0
    disk_writes: int = 0
    #: Files discarded for a cache-version mismatch.
    disk_stale: int = 0
    #: Files discarded as corrupt/truncated/unreadable (read side), plus
    #: entries that could not be pickled or written (write side).
    disk_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_stale": self.disk_stale,
            "disk_errors": self.disk_errors,
        }


class PlanCache:
    """A bounded LRU cache of compiled region plans (thread-safe)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, PlanEntry]" = OrderedDict()
        #: Reentrant: DiskPlanCache holds it across a lookup-then-promote.
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: PlanKey) -> Optional[PlanEntry]:
        """Look up a plan; records a hit/miss and refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                counter_inc(
                    "pash_plan_cache_requests_total",
                    1,
                    "Plan-cache lookups by outcome.",
                    result="miss",
                )
                return None
            self._entries.move_to_end(key)
            if isinstance(entry, FailedPlan):
                self.stats.negative_hits += 1
                result = "negative_hit"
            else:
                self.stats.hits += 1
                result = "hit"
            counter_inc(
                "pash_plan_cache_requests_total",
                1,
                "Plan-cache lookups by outcome.",
                result=result,
            )
            return entry

    def put(self, key: PlanKey, entry: PlanEntry) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                counter_inc(
                    "pash_plan_cache_evictions_total",
                    1,
                    "Plans evicted from the in-memory LRU tier.",
                )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskPlanCache(PlanCache):
    """The in-memory LRU backed by a persistent on-disk tier.

    ``directory`` holds one pickled file per plan, named by a hash of the
    full :data:`PlanKey`; the payload stores the key itself, so a hash
    collision reads as a miss, never as a wrong plan.  Only successful
    compilations persist — negative entries (compiler refusals) stay
    memory-only, since refusal is cheap to rediscover and may be
    version-specific in ways the digest cannot see.

    Failure policy (exercised by ``tests/service/test_plan_cache_faults.py``):
    any unreadable, truncated, stale-versioned, or wrong-keyed file is
    treated as a miss, deleted best-effort, and — if deletion fails —
    remembered in an in-memory poison set so the broken file is read at
    most once per process.  The caller then compiles fresh and ``put``
    rewrites the entry atomically (temp file + ``os.replace``).
    """

    def __init__(
        self,
        directory: str,
        capacity: int = 256,
        version: Optional[str] = None,
    ) -> None:
        super().__init__(capacity=capacity)
        self.directory = directory
        self.version = version or cache_version()
        self._poisoned: Set[str] = set()
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, key: PlanKey) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:40]
        return os.path.join(self.directory, f"{digest}.plan")

    def _discard(self, path: str) -> None:
        """Remove a bad file; poison the path in memory if removal fails."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        except OSError:
            self._poisoned.add(path)

    def get(self, key: PlanKey) -> Optional[PlanEntry]:
        with self._lock:
            entry = super().get(key)
            if entry is not None:
                return entry
            path = self._path(key)
            if path in self._poisoned:
                return None
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                return None
            except Exception:
                # Corrupt, truncated, or unreadable: fall back to a fresh
                # compile; drop the file so it is not re-parsed forever.
                self.stats.disk_errors += 1
                counter_inc(
                    "pash_plan_cache_disk_total",
                    1,
                    "Disk plan-cache tier events.",
                    event="error",
                )
                self._discard(path)
                return None
            if not isinstance(payload, dict) or payload.get("version") != self.version:
                self.stats.disk_stale += 1
                counter_inc(
                    "pash_plan_cache_disk_total",
                    1,
                    "Disk plan-cache tier events.",
                    event="stale",
                )
                self._discard(path)
                return None
            if payload.get("key") != key or not isinstance(
                payload.get("entry"), CompiledPlan
            ):
                # A filename-hash collision or a foreign payload shape:
                # miss, and leave collision files for their real owner.
                if not isinstance(payload.get("entry"), CompiledPlan):
                    self.stats.disk_errors += 1
                    counter_inc(
                        "pash_plan_cache_disk_total",
                        1,
                        "Disk plan-cache tier events.",
                        event="error",
                    )
                    self._discard(path)
                return None
            entry = payload["entry"]
            self.stats.disk_hits += 1
            counter_inc(
                "pash_plan_cache_disk_total",
                1,
                "Disk plan-cache tier events.",
                event="hit",
            )
            PlanCache.put(self, key, entry)  # promote; no disk re-write
            return entry

    def put(self, key: PlanKey, entry: PlanEntry) -> None:
        super().put(key, entry)
        if not isinstance(entry, CompiledPlan):
            return  # negative entries stay memory-only
        path = self._path(key)
        payload = {"version": self.version, "key": key, "entry": entry}
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, staging = tempfile.mkstemp(
                prefix=".plan-", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(staging, path)  # atomic: readers never see a torn file
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
                raise
        except Exception:
            # Unpicklable graph or unwritable directory: the memory tier
            # still serves this process; persistence just degrades.
            self.stats.disk_errors += 1
            counter_inc(
                "pash_plan_cache_disk_total",
                1,
                "Disk plan-cache tier events.",
                event="error",
            )
            return
        self._poisoned.discard(path)
        self.stats.disk_writes += 1
        counter_inc(
            "pash_plan_cache_disk_total",
            1,
            "Disk plan-cache tier events.",
            event="write",
        )


#: Config fields that never change what the pass pipeline produces — they
#: steer *how a run executes or is observed*, so including them would only
#: fragment the (disk-persistent) plan cache across daemons and jobs:
#: ``tracing`` toggles span recording, ``report_timeout_seconds`` bounds a
#: wait, ``jobs`` sizes the worker pool, ``streaming.spill_directory`` names
#: where a run spills (the service daemon makes it unique per job), and
#: ``resilience`` only retries/degrades what the same compiled plan produced,
#: and ``obs`` only samples/retains what an enabled tracer records.
_RUNTIME_ONLY_FIELDS = ("tracing", "report_timeout_seconds", "jobs", "resilience", "obs")


def config_digest(config: Any) -> str:
    """A stable digest of a :class:`~repro.api.config.PashConfig`.

    Uses the config's round-trippable dict form, so any field that changes
    compilation output changes the digest (and therefore the cache key) —
    minus the runtime-only fields listed in :data:`_RUNTIME_ONLY_FIELDS`,
    which must *not* defeat plan sharing (a traced daemon and an untraced
    one compile identical graphs).
    """
    snapshot = config.to_dict()
    for field_name in _RUNTIME_ONLY_FIELDS:
        snapshot.pop(field_name, None)
    streaming = snapshot.get("streaming")
    if isinstance(streaming, dict):
        streaming.pop("spill_directory", None)
    payload = json.dumps(snapshot, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
