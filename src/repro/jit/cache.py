"""``PlanCache`` — compiled dataflow plans keyed on runtime state.

A plan is reusable exactly when three things match:

1. the region's structural **fingerprint** (its shell text),
2. the **values of every parameter the region references** at the moment it
   is reached (a loop body that does not mention the loop variable hashes
   identically on every iteration; one that does recompiles whenever the
   value changes), and
3. the **configuration digest** (width, passes, streaming knobs… — anything
   that changes what the pass pipeline produces).

Compilation *failures* are cached too (negative entries), so a loop body the
compiler refuses once is refused from the cache on later iterations instead
of re-walking the builder every time.  Regions whose expansion depends on
state outside the key — command substitutions, glob patterns — are never
cached; the driver marks them uncacheable.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

#: (fingerprint, referenced-binding values, config digest)
PlanKey = Tuple[str, Tuple[Tuple[str, Optional[str]], ...], str]


@dataclass
class CompiledPlan:
    """A successfully compiled (and optimized) region, ready to re-execute."""

    graph: Any  # DataflowGraph (kept untyped to avoid an import cycle)
    report: Any  # OptimizationReport
    fingerprint: str
    compile_seconds: float = 0.0
    #: How many times this plan has been executed (1 = compile run only).
    executions: int = 0


@dataclass
class FailedPlan:
    """A cached compilation refusal (the negative entry)."""

    reason: str
    fingerprint: str


PlanEntry = Union[CompiledPlan, FailedPlan]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "evictions": self.evictions,
        }


class PlanCache:
    """A bounded LRU cache of compiled region plans."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, PlanEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: PlanKey) -> Optional[PlanEntry]:
        """Look up a plan; records a hit/miss and refreshes LRU order."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        if isinstance(entry, FailedPlan):
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, key: PlanKey, entry: PlanEntry) -> None:
        """Insert (or refresh) a plan, evicting the least recently used."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


def config_digest(config: Any) -> str:
    """A stable digest of a :class:`~repro.api.config.PashConfig`.

    Uses the config's round-trippable dict form, so any field that changes
    compilation output changes the digest (and therefore the cache key).
    """
    payload = json.dumps(config.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
