"""``JitDriver`` — the stateful script driver that compiles regions at runtime.

PaSh's AOT compiler (§5.1) refuses any region whose words it cannot resolve
statically: an unknown ``$VAR``, a command substitution, a loop-carried
binding.  The JIT driver removes the "statically": it *is* the shell for the
control-flow skeleton — it walks the AST node by node, maintaining concrete
shell state (variable bindings, ``$?``, positional parameters, the virtual
filesystem) by inheriting the sequential interpreter's semantics wholesale —
and at each region candidate (a pipeline or simple command) it invokes the
compiler **with the current bindings**.  A region that compiles executes on
an engine backend (the multiprocess parallel scheduler by default, reusing
the persistent worker pool across regions); a region that still refuses
falls back to the inherited interpreter path, per region, never for the
whole script.

Compiled plans land in a :class:`~repro.jit.cache.PlanCache` keyed on
(region fingerprint, referenced-binding values, config digest), so a loop
body whose referenced bindings do not change compiles once and re-executes
from the cache on every later iteration.  Every decision is recorded in a
:class:`~repro.jit.report.JitReport`.

Semantics notes (beyond the interpreter's, which the driver inherits):

* Compiled regions with a bare-stdin input read the execution environment's
  stdin (engine semantics); fallback regions read empty stdin (interpreter
  semantics).  Scripts mixing bare-stdin regions with dynamic state should
  name their inputs.
* Command substitutions are evaluated by the sequential interpreter (never
  JIT'd), and their results are memoized for the duration of one region
  occurrence so a region that expands ``$(...)`` during compilation and then
  falls back does not run the substitution twice.
* Regions containing command substitutions or glob patterns are compiled
  fresh on every occurrence (their expansion depends on state outside the
  cache key).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.api.config import PashConfig
from repro.dfg.builder import DFGBuilder, UntranslatableRegion
from repro.dfg.regions import referenced_parameters, region_fingerprint
from repro.engine.api import EngineResult, ExecutionBackend, create_backend
from repro.engine.metrics import EngineMetrics
from repro.jit.cache import (
    CompiledPlan,
    FailedPlan,
    PlanCache,
    PlanKey,
    config_digest,
)
from repro.jit.report import JitReport, RegionOutcome
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.supervisor import Supervisor
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import BUILTIN_COMMANDS, ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.shell.ast_nodes import Command, Node, Pipeline
from repro.shell.expansion import ExpansionContext, ExpansionError
from repro.shell.parser import parse
from repro.shell.unparser import unparse


@dataclass
class JitResult(EngineResult):
    """An :class:`~repro.engine.api.EngineResult` plus the JIT report."""

    jit: JitReport = field(default_factory=JitReport)


class _RecordingFileSystem(VirtualFileSystem):
    """A view over an existing VFS that records which names were written.

    Shares the wrapped filesystem's storage (every layer — interpreter
    fallbacks, engine backends, shell read-back — sees one namespace) and
    collects the set of written names so the driver can report the script's
    file outputs like every other backend does.
    """

    def __init__(self, inner: VirtualFileSystem) -> None:
        self._files = inner._files  # shared storage, deliberately
        self.allow_real_files = inner.allow_real_files
        self.written: Set[str] = set()

    def write(self, name: str, lines) -> None:  # type: ignore[override]
        super().write(name, lines)
        self.written.add(name)

    def append(self, name: str, lines) -> None:  # type: ignore[override]
        super().append(name, lines)
        self.written.add(name)


class JitDriver(ShellInterpreter):
    """Runs whole scripts, JIT-compiling dataflow regions as they are reached.

    ``environment`` supplies the filesystem/stdin/registry shared by every
    region (compiled or fallback); ``inner_backend`` picks the engine that
    executes compiled plans (default: the config's ``jit_inner_backend``,
    normally ``parallel``); ``pool`` pins parallel execution to a specific
    persistent :class:`~repro.engine.pool.WorkerPool` (a ``with Pash(...)``
    session passes its private pool); ``cache`` shares a
    :class:`PlanCache` across drivers.
    """

    def __init__(
        self,
        config: Optional[Any] = None,
        environment: Optional[ExecutionEnvironment] = None,
        library: Optional[Any] = None,
        inner_backend: Optional[str] = None,
        pool: Optional[Any] = None,
        cache: Optional[PlanCache] = None,
        max_loop_iterations: int = 100_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        base = environment or ExecutionEnvironment()
        self._fs = _RecordingFileSystem(base.filesystem)
        self.environment = ExecutionEnvironment(
            filesystem=self._fs, stdin=list(base.stdin), registry=base.registry
        )
        super().__init__(
            filesystem=self._fs,
            registry=base.registry,
            library=library,
            max_loop_iterations=max_loop_iterations,
        )
        self.config = PashConfig.coerce(config)
        if tracer is None:
            tracer = Tracer() if self.config.tracing else NULL_TRACER
        self.tracer = tracer
        self.inner_backend = inner_backend or self.config.jit_inner_backend
        self.pool = pool
        self.cache = cache if cache is not None else PlanCache()
        self.report = JitReport()
        self.metrics = EngineMetrics(backend="jit")
        self._config_digest = config_digest(self.config)
        self._pipeline = self.config.pipeline()
        self._parallelization = self.config.parallelization()
        self._engine: Optional[ExecutionBackend] = None
        self._in_region = False
        self._active_memo: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, source_or_ast) -> JitResult:
        """Execute a whole script; returns stdout, files, metrics, and report.

        The driver's shell state and plan cache persist across calls, so a
        sequence of ``run`` invocations behaves like one long-lived shell
        session with a warm cache; the report and metrics are per-call.
        """
        ast = parse(source_or_ast) if isinstance(source_or_ast, str) else source_or_ast
        self.report = JitReport()
        self.metrics = EngineMetrics(backend="jit")
        self._fs.written = set()  # files are reported per call, like the report
        mark = self.tracer.mark()
        started = time.perf_counter()
        with self.tracer.span("jit:script", "jit"):
            stdout = self.run_node(ast)
        elapsed = time.perf_counter() - started
        files = {
            name: self._fs.read(name)
            for name in sorted(self._fs.written)
            if self._fs.exists(name)
        }
        return JitResult(
            backend="jit",
            stdout=list(stdout),
            files=files,
            elapsed_seconds=elapsed,
            metrics=self.metrics,
            jit=self.report,
            spans=self.tracer.since(mark),
        )

    # ------------------------------------------------------------------
    # Region interception
    # ------------------------------------------------------------------

    def _execute(self, node: Node, stdin):
        if (
            not self._in_region
            and not stdin
            and isinstance(node, (Pipeline, Command))
            and self._is_region(node)
        ):
            previous_memo = self._active_memo
            self._active_memo = {}
            try:
                handled, output = self._try_jit(node)
                if handled:
                    return output
                self._in_region = True
                try:
                    return super()._execute(node, stdin)
                finally:
                    self._in_region = False
            finally:
                self._active_memo = previous_memo
        return super()._execute(node, stdin)

    @staticmethod
    def _is_region(node: Node) -> bool:
        """Pipelines and non-builtin, non-assignment commands are regions."""
        if isinstance(node, Pipeline):
            return True
        if node.assignments and not node.words:
            return False
        return node.name not in BUILTIN_COMMANDS

    # ------------------------------------------------------------------
    # The JIT hot path
    # ------------------------------------------------------------------

    def _try_jit(self, node: Node) -> Tuple[bool, Optional[List[str]]]:
        """Compile-or-cache the region and execute it on the inner engine.

        Returns ``(True, stdout)`` when the region ran as a dataflow graph,
        ``(False, None)`` when the caller must fall back to the interpreter.
        """
        fingerprint = region_fingerprint(node)
        names, has_substitution = referenced_parameters(node)
        key: PlanKey = (fingerprint, self._bindings_for(names), self._config_digest)
        cacheable = not has_substitution

        entry = self.cache.get(key) if cacheable else None
        if isinstance(entry, FailedPlan):
            with self.tracer.span(
                "jit:fallback", "jit", fingerprint=fingerprint, cached_failure=True
            ) as span:
                span.set(reason=entry.reason)
            self._record(node, fingerprint, "fallback", entry.reason, cached_failure=True)
            return False, None

        compile_seconds = 0.0
        action = "cached"
        if entry is None:
            compile_started = time.perf_counter()
            compile_span = self.tracer.span("jit:compile", "jit", fingerprint=fingerprint)
            try:
                with compile_span as span:
                    graph, opt_report, saw_glob = self._compile(node)
                    span.set(nodes=len(graph.nodes))
            except (UntranslatableRegion, ExpansionError) as exc:
                reason = str(exc)
                if cacheable:
                    self.cache.put(key, FailedPlan(reason=reason, fingerprint=fingerprint))
                with self.tracer.span(
                    "jit:fallback", "jit", fingerprint=fingerprint
                ) as span:
                    span.set(reason=reason)
                self._record(node, fingerprint, "fallback", reason)
                return False, None
            compile_seconds = time.perf_counter() - compile_started
            entry = CompiledPlan(
                graph=graph,
                report=opt_report,
                fingerprint=fingerprint,
                compile_seconds=compile_seconds,
            )
            # Glob-dependent plans resolve against filesystem state that is
            # not part of the key, so they are compiled fresh every time.
            if cacheable and not saw_glob:
                self.cache.put(key, entry)
            action = "compiled"
        else:
            with self.tracer.span(
                "jit:cache-hit", "jit", fingerprint=fingerprint
            ) as span:
                span.set(executions=entry.executions)

        started = time.perf_counter()

        def run_region() -> EngineResult:
            with self.tracer.span(
                "jit:region-execute", "jit", fingerprint=fingerprint, action=action
            ):
                return self._engine_backend().execute(entry.graph, self.environment)

        resilience = self.config.resilience
        if resilience.active and self.inner_backend != "interpreter":
            # Retry-then-degrade ladder around the inner engine.  The
            # degrade rung returns ``(False, None)`` so the region re-runs
            # on the driver's inherited interpreter path — the same
            # per-region fallback a compilation refusal takes, and
            # byte-identical by the paper's correctness contract.
            supervisor = Supervisor(resilience, self.tracer)
            outcome = supervisor.run(
                f"jit-region:{fingerprint[:32]}",
                run_region,
                degrade=(lambda: None) if resilience.degrade else None,
            )
            self.metrics.runs_retried += supervisor.runs_retried
            self.metrics.degraded_runs += supervisor.degraded_runs
            if outcome is None:
                reason = "degraded to interpreter after retries"
                self._record(node, fingerprint, "fallback", reason)
                return False, None
            result = outcome
        else:
            result = run_region()
        elapsed = time.perf_counter() - started
        entry.executions += 1
        self.metrics.merge(result.metrics)
        self.state.last_status = 0
        self._record(
            node,
            fingerprint,
            action,
            elapsed_seconds=elapsed,
            compile_seconds=compile_seconds,
        )
        return True, list(result.stdout)

    def _compile(self, node: Node):
        """Run the existing pass pipeline over the region, with live bindings.

        The context is ``strict`` (anything unresolvable refuses, per PaSh)
        but ``complete``: the driver's state holds *every* set variable, so
        a missing name is genuinely unset and ``${VAR:-default}`` forms are
        decidable.  The live dict is adopted by reference so ``:=``
        assignments persist into driver state like on the fallback path.
        """
        context = ExpansionContext(
            self.state.variables,
            strict=True,
            positional=self.state.positional,
            last_status=self.state.last_status,
            command_runner=self._run_substitution,
            complete=True,
        )
        builder = DFGBuilder(self.library, context=context, filesystem=self._fs)
        graph = builder.build_from_node(node)
        graph.validate()
        opt_report = self._pipeline.run(graph, self._parallelization, tracer=self.tracer)
        return graph, opt_report, builder.saw_glob

    def _bindings_for(self, names) -> Tuple[Tuple[str, Optional[str]], ...]:
        """The referenced parameters' current values (the cache key's state part)."""
        entries: List[Tuple[str, Optional[str]]] = []
        for name in sorted(names):
            if name == "?":
                value: Optional[str] = str(self.state.last_status)
            elif name == "#":
                value = str(len(self.state.positional))
            elif name in ("@", "*"):
                value = "\x1f".join(self.state.positional)
            elif name.isdigit():
                index = int(name)
                if index == 0:
                    value = self.state.variables.get("0")
                elif index <= len(self.state.positional):
                    value = self.state.positional[index - 1]
                else:
                    value = None
            else:
                value = self.state.variables.get(name)
            entries.append((name, value))
        return tuple(entries)

    def _engine_backend(self) -> ExecutionBackend:
        """The inner engine backend, created once and reused across regions."""
        if self._engine is None:
            options = dict(self.config.backend_options(self.inner_backend))
            if self.inner_backend == "parallel":
                if self.pool is not None:
                    options["pool"] = self.pool
                options["tracer"] = self.tracer
            self._engine = create_backend(self.inner_backend, **options)
        return self._engine

    def _record(
        self,
        node: Node,
        fingerprint: str,
        action: str,
        reason: str = "",
        elapsed_seconds: float = 0.0,
        compile_seconds: float = 0.0,
        cached_failure: bool = False,
    ) -> None:
        self.report.record(
            RegionOutcome(
                fingerprint=fingerprint,
                text=unparse(node),
                action=action,
                reason=reason,
                elapsed_seconds=elapsed_seconds,
                compile_seconds=compile_seconds,
                cached_failure=cached_failure,
            )
        )

    # ------------------------------------------------------------------
    # Interpreter hooks
    # ------------------------------------------------------------------

    def _run_substitution(self, text: str) -> str:
        """Memoize substitution results for the current region occurrence.

        The memo prevents a ``$(...)`` from running twice when a region
        expands it during a compilation attempt and then falls back to the
        interpreter (which would expand it again).
        """
        if self._active_memo is not None and text in self._active_memo:
            return self._active_memo[text]
        value = ShellInterpreter._run_substitution(self, text)
        if self._active_memo is not None:
            self._active_memo[text] = value
        return value


class JitBackend(ExecutionBackend):
    """The engine-registry face of the JIT subsystem.

    A single pre-built dataflow graph carries no dynamic shell state left to
    orchestrate, so at graph granularity the backend simply delegates to its
    inner engine (the parallel scheduler by default) — the registry entry
    exists so ``--list-backends`` advertises ``jit`` and graph-level callers
    compose.  Script-level entry points (``repro.api.run``,
    ``CompiledScript.execute``, the CLI) route ``backend="jit"`` to a full
    :class:`JitDriver` instead.
    """

    name = "jit"

    def __init__(
        self,
        config: Optional[Any] = None,
        inner_backend: Optional[str] = None,
        pool: Optional[Any] = None,
        **inner_options: Any,
    ) -> None:
        self.config = PashConfig.coerce(config)
        self.inner_backend = inner_backend or self.config.jit_inner_backend
        self.pool = pool
        self.inner_options = inner_options

    def execute(self, graph, environment) -> EngineResult:
        options = dict(self.config.backend_options(self.inner_backend))
        options.update(self.inner_options)
        if self.inner_backend == "parallel" and self.pool is not None:
            options["pool"] = self.pool
        result = create_backend(self.inner_backend, **options).execute(graph, environment)
        result.backend = self.name
        result.metrics.backend = self.name
        return result


def run_script(
    source: str,
    config: Optional[Any] = None,
    environment: Optional[ExecutionEnvironment] = None,
    **driver_options: Any,
) -> JitResult:
    """One-call convenience: drive ``source`` through a fresh :class:`JitDriver`."""
    driver = JitDriver(config=config, environment=environment, **driver_options)
    return driver.run(source)
