"""JIT orchestration: a stateful script driver compiling regions at runtime.

The AOT pipeline (``repro.api.Pash.compile``) resolves what it can
statically and leaves everything else sequential.  This package holds the
runtime counterpart:

* :class:`~repro.jit.driver.JitDriver` — walks the script AST maintaining
  concrete shell state and JIT-compiles each dataflow region with the
  bindings in force when it is reached;
* :class:`~repro.jit.cache.PlanCache` — compiled plans keyed on (region
  fingerprint, referenced-binding values, config digest), so loop bodies
  compile once;
* :class:`~repro.jit.report.JitReport` — per-run observability: regions
  seen / compiled / cached / fell back, with reasons.

Select it like any other backend: ``repro.api.run(src, backend="jit")``,
``Pash.run_script(src, backend="jit")``, or ``pash-repro --execute jit``.
"""

from repro.jit.cache import CacheStats, CompiledPlan, FailedPlan, PlanCache, config_digest
from repro.jit.driver import JitBackend, JitDriver, JitResult, run_script
from repro.jit.report import JitReport, RegionOutcome

__all__ = [
    "CacheStats",
    "CompiledPlan",
    "FailedPlan",
    "JitBackend",
    "JitDriver",
    "JitReport",
    "JitResult",
    "PlanCache",
    "RegionOutcome",
    "config_digest",
    "run_script",
]
