"""Job records for the service daemon.

A :class:`Job` is one admitted submission, from queue to terminal state.
State transitions are guarded by a per-job lock (the connection handler, an
executor thread, and a cancelling client may race), and every terminal
transition sets ``finished`` — the event the blocking ``submit``/``result``
protocol paths wait on, always with a bounded timeout.

State machine::

    queued ──► running ──► done | failed
       │                      ▲
       └──► cancelled         │  (daemon shutdown fails still-running jobs
                              ┘   cleanly rather than abandoning waiters)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class JobState:
    """String constants (the wire form) of the job state machine."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One admitted submission and everything the daemon knows about it."""

    job_id: int
    tenant: str
    script: str
    backend: str
    config: Any  # PashConfig
    files: Dict[str, List[str]] = field(default_factory=dict)
    stdin: List[str] = field(default_factory=list)

    state: str = JobState.QUEUED
    stdout: List[str] = field(default_factory=list)
    out_files: Dict[str, List[str]] = field(default_factory=dict)
    #: ``RunReport.to_dict()`` of the run (populated on ``done``).
    report: Optional[Dict[str, Any]] = None
    error: str = ""
    error_code: str = ""
    cancel_requested: bool = False
    elapsed_seconds: float = 0.0
    submitted_at: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.finished = threading.Event()
        #: Admission slots release exactly once per job, whichever of the
        #: executor / cancel / shutdown paths gets there first.
        self._released = False

    # -- transitions ---------------------------------------------------

    def try_start(self) -> bool:
        """queued → running; False when the job was cancelled first."""
        with self._lock:
            if self.state != JobState.QUEUED:
                return False
            self.state = JobState.RUNNING
            return True

    def complete(
        self,
        stdout: List[str],
        out_files: Dict[str, List[str]],
        report: Optional[Dict[str, Any]],
        elapsed_seconds: float,
    ) -> bool:
        """running → done; False when the job already turned terminal.

        Terminal states are terminal: an executor that finishes a job the
        shutdown path already failed must not flip ``failed`` back to
        ``done`` (or double-count it in the daemon's counters).
        """
        with self._lock:
            if self.state in JobState.TERMINAL:
                return False
            self.stdout = list(stdout)
            self.out_files = dict(out_files)
            self.report = report
            self.elapsed_seconds = elapsed_seconds
            self.state = JobState.DONE
        self.finished.set()
        return True

    def fail(self, message: str, code: str = "execution") -> bool:
        """→ failed; False when the job already turned terminal."""
        with self._lock:
            if self.state in JobState.TERMINAL:
                return False
            self.error = message
            self.error_code = code
            self.state = JobState.FAILED
        self.finished.set()
        return True

    def cancel(self) -> bool:
        """Cancel if still queued; mark the wish otherwise.

        Returns True when the job transitioned to ``cancelled`` here.  A
        *running* job cannot be interrupted mid-region (the engine owns the
        processes); ``cancel_requested`` is still recorded so clients see
        the wish in the payload.
        """
        with self._lock:
            self.cancel_requested = True
            if self.state != JobState.QUEUED:
                return False
            self.state = JobState.CANCELLED
            self.error = "cancelled before execution started"
            self.error_code = "cancelled"
        self.finished.set()
        return True

    def first_release(self) -> bool:
        """True exactly once per job (guards the admission release)."""
        with self._lock:
            if self._released:
                return False
            self._released = True
            return True

    # -- wire form -----------------------------------------------------

    def payload(self, include_output: bool = True) -> Dict[str, Any]:
        """The client-visible snapshot of this job."""
        with self._lock:
            snapshot: Dict[str, Any] = {
                "job_id": self.job_id,
                "tenant": self.tenant,
                "backend": self.backend,
                "state": self.state,
                "cancel_requested": self.cancel_requested,
                "elapsed_seconds": self.elapsed_seconds,
            }
            if self.error:
                snapshot["error"] = self.error
                snapshot["error_code"] = self.error_code
            if include_output and self.state == JobState.DONE:
                snapshot["stdout"] = list(self.stdout)
                snapshot["files"] = {
                    name: list(lines) for name, lines in self.out_files.items()
                }
                snapshot["report"] = self.report
            return snapshot


class JobTable:
    """Thread-safe id → :class:`Job` map with bounded retention.

    Finished jobs stay queryable until ``retain`` newer jobs have finished,
    so a long-lived daemon's memory does not grow with its request count.
    Jobs still in flight are never dropped.
    """

    def __init__(self, retain: int = 256) -> None:
        self.retain = max(1, retain)
        self._lock = threading.Lock()
        self._jobs: Dict[int, Job] = {}
        self._next_id = 1

    def create(self, **kwargs: Any) -> Job:
        with self._lock:
            job = Job(job_id=self._next_id, **kwargs)
            self._next_id += 1
            self._jobs[job.job_id] = job
            self._trim()
            return job

    def get(self, job_id: int) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def all(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def _trim(self) -> None:
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in JobState.TERMINAL
        ]
        for job_id in finished[: max(0, len(finished) - self.retain)]:
            del self._jobs[job_id]
