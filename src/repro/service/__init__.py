"""``repro.service`` — pash-as-a-service: the multi-tenant daemon tier.

One warm ``pash-serve`` process serves many tenants over a local socket:
submissions pass admission control (bounded queue, per-tenant quotas — a
full daemon rejects with :class:`ServiceBusy`, it never hangs), execute on
the shared session machinery (one persistent worker pool, one persistent
disk-backed plan cache), and return results plus ``RunReport`` documents.
See ``docs/SERVICE.md`` for the guided tour.

Public surface::

    PashServiceDaemon(ServiceOptions(...)).start()   # the daemon
    ServiceClient("127.0.0.1:7070").submit("...")    # the API client
    pash-serve / pash-client                          # the console scripts
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionStats,
    ServiceBusy,
    ServiceError,
)
from repro.service.client import ServiceClient
from repro.service.daemon import PashServiceDaemon, ServiceOptions
from repro.service.jobs import Job, JobState, JobTable
from repro.service.protocol import SERVICE_PROTOCOL_VERSION

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "Job",
    "JobState",
    "JobTable",
    "PashServiceDaemon",
    "SERVICE_PROTOCOL_VERSION",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceOptions",
]
