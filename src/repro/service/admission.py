"""Admission control for the service daemon.

The daemon's contract is *reject cleanly, never hang*: a submission either
enters the bounded run queue immediately or is refused with a typed
:class:`ServiceBusy` before any work starts.  Two independent limits apply,
checked atomically under one lock:

* ``queue_limit`` — total jobs in flight (queued + running) across every
  tenant.  This bounds the daemon's memory and keeps queueing delay
  proportional to the limit, not to the arrival rate.
* ``tenant_quota`` — jobs in flight per tenant, so one chatty tenant cannot
  occupy the whole queue and starve the rest (the multi-tenant half of the
  ROADMAP's service item).

Both rejections are *admission* outcomes, not errors inside a job: nothing
was compiled, nothing ran, and the client can simply retry later.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional


class ServiceError(RuntimeError):
    """Any service-layer failure surfaced to a client (typed by ``code``)."""

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class ServiceBusy(ServiceError):
    """Admission refused: the queue is full (``busy``) or the tenant is at
    quota (``quota``).  Raised synchronously — the submission never queues."""

    def __init__(self, message: str, code: str = "busy") -> None:
        super().__init__(message, code=code)


@dataclass
class AdmissionStats:
    """Counters for one controller's lifetime."""

    admitted: int = 0
    rejected_queue_full: int = 0
    rejected_quota: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
        }


@dataclass
class AdmissionController:
    """Atomic admit/release bookkeeping over the two limits."""

    #: Max jobs in flight (queued + running) across all tenants.
    queue_limit: int = 16
    #: Max jobs in flight per tenant.
    tenant_quota: int = 4
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        self._lock = threading.Lock()
        self._inflight: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Claim one slot for ``tenant`` or raise :class:`ServiceBusy`."""
        with self._lock:
            total = sum(self._inflight.values())
            if total >= self.queue_limit:
                self.stats.rejected_queue_full += 1
                raise ServiceBusy(
                    f"run queue is full ({total}/{self.queue_limit} jobs in flight)",
                    code="busy",
                )
            held = self._inflight.get(tenant, 0)
            if held >= self.tenant_quota:
                self.stats.rejected_quota += 1
                raise ServiceBusy(
                    f"tenant {tenant!r} is at quota "
                    f"({held}/{self.tenant_quota} jobs in flight)",
                    code="quota",
                )
            self._inflight[tenant] = held + 1
            self.stats.admitted += 1

    def release(self, tenant: str) -> None:
        """Return ``tenant``'s slot (idempotence is the caller's job)."""
        with self._lock:
            held = self._inflight.get(tenant, 0)
            if held <= 1:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = held - 1

    def inflight(self, tenant: Optional[str] = None) -> int:
        """Jobs currently holding slots (for one tenant, or in total)."""
        with self._lock:
            if tenant is not None:
                return self._inflight.get(tenant, 0)
            return sum(self._inflight.values())

    def to_dict(self) -> Dict[str, int]:
        snapshot = self.stats.to_dict()
        snapshot["inflight"] = self.inflight()
        return snapshot
