"""``ServiceClient`` / ``pash-client`` — talk to a running ``pash-serve``.

The Python API is a thin typed wrapper over the one-shot request protocol:
every method is one connect/send/recv/close round trip, raises
:class:`~repro.service.admission.ServiceBusy` on admission rejections and
:class:`~repro.service.admission.ServiceError` on everything else, and
never blocks past its timeout.  The CLI (``pash-client submit | status |
result | cancel | stats | metrics | ping | shutdown``) maps those calls onto
exit codes: 0 success, 1 job failed, 2 unreachable/usage, 3 rejected busy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.resilience.retry import RetryPolicy, retry_call
from repro.service import protocol
from repro.service.admission import ServiceBusy, ServiceError
from repro.service.protocol import Address


class ServiceClient:
    """A handle on one daemon address (no persistent connection)."""

    def __init__(
        self,
        address: Address,
        timeout: float = 30.0,
        retry_seconds: float = 0.0,
    ) -> None:
        self.address = address
        self.timeout = timeout
        #: Retry window for *unreachable* daemons (connection refused while
        #: pash-serve is still starting) — the same idiom as pash-worker's
        #: ``--retry-seconds``.  Only the ``unreachable`` code is retried:
        #: protocol.request reserves it for failures of the TCP connect
        #: itself, so a retried request provably never reached the daemon
        #: (a retried SUBMIT is not idempotent).  ``connection-lost`` and
        #: admission rejections are never retried.
        self.retry_seconds = retry_seconds

    # ------------------------------------------------------------------

    def _request(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        def once() -> Dict[str, Any]:
            response = protocol.request(
                self.address, message, timeout=timeout or self.timeout
            )
            return protocol.raise_for_error(response)

        if self.retry_seconds <= 0:
            return once()
        # Exponential backoff + jitter via the shared RetryPolicy: many
        # clients waiting out one daemon restart spread their reconnects
        # instead of hammering every 200 ms in lockstep.  Only the
        # pre-send ``unreachable`` failures are retried (see __init__).
        policy = RetryPolicy(
            max_retries=None,
            base_seconds=0.1,
            max_seconds=2.0,
            deadline_seconds=self.retry_seconds,
        )
        return retry_call(
            once,
            policy,
            retryable=lambda error: (
                isinstance(error, ServiceError)
                and error.code == protocol.ERR_UNREACHABLE
            ),
        )

    # ------------------------------------------------------------------

    def submit(
        self,
        script: str,
        tenant: str = "default",
        files: Optional[Dict[str, List[str]]] = None,
        stdin: Optional[List[str]] = None,
        backend: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a script; returns the job payload.

        With ``wait=True`` (default) the payload is terminal — ``state`` is
        ``done``/``failed``/``cancelled`` and carries ``stdout``/``files``/
        ``report`` on success.  With ``wait=False`` it is the queued
        snapshot; poll with :meth:`result`.
        """
        message: Dict[str, Any] = {
            "type": protocol.MSG_SUBMIT,
            "script": script,
            "tenant": tenant,
            "wait": wait,
        }
        if files:
            message["files"] = files
        if stdin:
            message["stdin"] = stdin
        if backend:
            message["backend"] = backend
        if config:
            message["config"] = config
        # The server must never wait longer than the client socket stays
        # open: with no explicit timeout the daemon would block up to its
        # own max_wait_seconds while the socket died much earlier, turning
        # a slow job into a bogus connection error.  Always send the
        # effective wait so both sides agree, and keep the socket open
        # 15s past it so a timely server answer (including the typed
        # timeout error) always gets through.
        if wait:
            effective = self.timeout if timeout is None else timeout
            message["timeout"] = effective
            socket_timeout = effective + 15.0
        else:
            socket_timeout = self.timeout
        return self._request(message, timeout=socket_timeout)["job"]

    def status(self, job_id: int) -> Dict[str, Any]:
        """The job's current snapshot (non-blocking)."""
        return self._request({"type": protocol.MSG_STATUS, "job_id": job_id})["job"]

    def result(self, job_id: int, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block (bounded) until the job is terminal; its final payload."""
        message: Dict[str, Any] = {"type": protocol.MSG_RESULT, "job_id": job_id}
        # Same server/socket agreement as submit(wait=True).
        effective = self.timeout if timeout is None else timeout
        message["timeout"] = effective
        return self._request(message, timeout=effective + 15.0)["job"]

    def cancel(self, job_id: int) -> Dict[str, Any]:
        """Cancel a queued job (running jobs record the wish only)."""
        return self._request({"type": protocol.MSG_CANCEL, "job_id": job_id})["job"]

    def stats(self) -> Dict[str, Any]:
        return self._request({"type": protocol.MSG_STATS})["stats"]

    def metrics(self) -> Dict[str, Any]:
        """The daemon's telemetry: ``{"exposition": <Prometheus text>,
        "snapshot": <registry snapshot>}`` (protocol >= 3)."""
        response = self._request({"type": protocol.MSG_METRICS})
        return {
            "exposition": response.get("exposition", ""),
            "snapshot": response.get("snapshot", {}),
        }

    def ping(self) -> Dict[str, Any]:
        return self._request({"type": protocol.MSG_PING})

    def shutdown(self) -> None:
        self._request({"type": protocol.MSG_SHUTDOWN})


# ---------------------------------------------------------------------------
# The pash-client entry point
# ---------------------------------------------------------------------------


def _read_lines(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-client", description="Submit scripts to a running pash-serve daemon."
    )
    parser.add_argument(
        "--connect", default="127.0.0.1:7070", help="daemon address (HOST:PORT)"
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="round-trip timeout in seconds"
    )
    parser.add_argument(
        "--retry-seconds",
        type=float,
        default=10.0,
        help="keep retrying an unreachable daemon for this long",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", help="run a script on the daemon")
    submit.add_argument("script", help="script file to submit")
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="PATH",
        help="upload a local file into the job's virtual filesystem (repeatable)",
    )
    submit.add_argument("--backend", default=None, help="override the daemon default")
    submit.add_argument(
        "--no-wait", action="store_true", help="enqueue and print the job id only"
    )
    submit.add_argument(
        "--write-files",
        action="store_true",
        help="write the job's output files into the current directory",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the whole job payload as JSON"
    )

    for name, help_text in (
        ("status", "print a job's current state"),
        ("result", "wait for a job and print its output"),
        ("cancel", "cancel a queued job"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("job_id", type=int)

    commands.add_parser("stats", help="print daemon statistics as JSON")
    metrics = commands.add_parser(
        "metrics", help="print the daemon's Prometheus exposition"
    )
    metrics.add_argument(
        "--json", action="store_true", help="print the registry snapshot as JSON"
    )
    commands.add_parser("ping", help="check the daemon is alive")
    commands.add_parser("shutdown", help="ask the daemon to shut down")
    return parser


def _print_job(job: Dict[str, Any], arguments: Any) -> int:
    if getattr(arguments, "json", False):
        print(json.dumps(job, indent=2, sort_keys=True))
        return 0 if job.get("state") == "done" else 1
    state = job.get("state")
    if state == "done":
        for line in job.get("stdout", []):
            print(line)
        if getattr(arguments, "write_files", False):
            for name, lines in (job.get("files") or {}).items():
                with open(name, "w", encoding="utf-8") as handle:
                    for line in lines:
                        handle.write(line + "\n")
        return 0
    print(
        f"pash-client: job {job.get('job_id')} {state}: "
        f"{job.get('error', '(no error recorded)')}",
        file=sys.stderr,
    )
    return 1


def main(argv: Optional[list] = None) -> int:
    arguments = build_parser().parse_args(argv)
    client = ServiceClient(
        arguments.connect,
        timeout=arguments.timeout,
        retry_seconds=arguments.retry_seconds,
    )
    try:
        if arguments.command == "submit":
            try:
                source = _read_lines(arguments.script)
            except OSError as exc:
                print(f"pash-client: cannot read script: {exc}", file=sys.stderr)
                return 2
            files = {}
            for path in arguments.input:
                try:
                    files[path] = _read_lines(path)
                except OSError as exc:
                    print(f"pash-client: cannot read input: {exc}", file=sys.stderr)
                    return 2
            job = client.submit(
                "\n".join(source),
                tenant=arguments.tenant,
                files=files or None,
                backend=arguments.backend,
                wait=not arguments.no_wait,
                timeout=arguments.timeout,
            )
            if arguments.no_wait:
                print(job["job_id"])
                return 0
            return _print_job(job, arguments)
        if arguments.command == "status":
            job = client.status(arguments.job_id)
            print(json.dumps(job, indent=2, sort_keys=True))
            return 0
        if arguments.command == "result":
            return _print_job(
                client.result(arguments.job_id, timeout=arguments.timeout), arguments
            )
        if arguments.command == "cancel":
            job = client.cancel(arguments.job_id)
            print(f"pash-client: job {job['job_id']} is now {job['state']}")
            return 0
        if arguments.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if arguments.command == "metrics":
            payload = client.metrics()
            if arguments.json:
                print(json.dumps(payload["snapshot"], indent=2, sort_keys=True))
            else:
                sys.stdout.write(payload["exposition"])
            return 0
        if arguments.command == "ping":
            pong = client.ping()
            print(f"pash-serve {pong['version']} (pid {pong['pid']}) is alive")
            return 0
        if arguments.command == "shutdown":
            client.shutdown()
            print("pash-client: daemon acknowledged shutdown")
            return 0
        return 2
    except ServiceBusy as busy:
        print(f"pash-client: rejected ({busy.code}): {busy}", file=sys.stderr)
        return 3
    except ServiceError as error:
        print(f"pash-client: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
