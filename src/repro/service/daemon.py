"""``pash-serve`` — the long-running multi-tenant service daemon.

One warm process serves many tenants: scripts arrive over a local socket
(length-prefixed JSON frames — see :mod:`repro.service.protocol` for why a
tenant-facing boundary must never unpickle client bytes), pass an
:class:`~repro.service.admission.AdmissionController` (bounded queue,
per-tenant quotas — reject cleanly, never hang), and execute on the shared
session machinery — one persistent :class:`~repro.engine.pool.WorkerPool`
for every parallel region, one :class:`~repro.jit.cache.DiskPlanCache` so a
popular one-liner compiles once per fleet rather than once per submission,
and one :class:`~repro.obs.tracer.Tracer` whose per-job ``service:job``
spans make an 8-tenant burst one coherent timeline.

Isolation model (what *shared* means here):

* **Filesystem** — every job runs against its own
  :class:`~repro.runtime.streams.VirtualFileSystem` built from the files it
  submitted (``allow_real_files`` stays off: tenants cannot read the
  daemon's host filesystem).
* **Shell state** — JIT jobs get a fresh :class:`~repro.jit.driver.JitDriver`
  per job; variables, ``$?``, and cwd never leak between tenants.
* **Spill files** — each job spills under its own unique subdirectory of
  the configured spill directory, created before and removed after the run,
  so concurrent jobs sharing one ``spill_directory`` cannot collide.
* **Worker processes and compiled plans** — deliberately shared; that is
  the point of the daemon.  The pool's ``run_lock`` serializes scheduler
  runs (bounding process count at the pool's high-water mark) and the plan
  cache is keyed on (fingerprint, bindings, config digest), so sharing is
  correctness-neutral by construction.
"""

from __future__ import annotations

import argparse
import os
import queue
import shutil
import socket
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.api.config import PashConfig, StreamingConfig
from repro.api.pash import Pash
from repro.obs import metrics as obs_metrics
from repro.obs.export import export_chrome_trace
from repro.obs.expose import NULL_EVENTS, EventLog, MetricsServer, prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport
from repro.obs.sampler import TraceSampler
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience import fault as fault_injection
from repro.resilience.supervisor import Supervisor
from repro.runtime.executor import ExecutionEnvironment, ExecutionError
from repro.runtime.streams import VirtualFileSystem
from repro.service import protocol
from repro.service.protocol import ProtocolError, recv_json_message, send_json_message
from repro.service.admission import AdmissionController, ServiceBusy, ServiceError
from repro.service.jobs import Job, JobState, JobTable
from repro.shell.expansion import ExpansionError


@dataclass
class ServiceOptions:
    """Every knob of one daemon instance."""

    #: ``HOST:PORT`` to listen on (port 0 = ephemeral, for tests).
    listen: str = "127.0.0.1:0"
    #: The protocol has no authentication: any client that can connect can
    #: submit work, so :meth:`PashServiceDaemon.start` refuses a
    #: non-loopback listen address unless this is set (``--allow-remote``).
    allow_remote: bool = False
    #: Executor threads pulling jobs off the run queue.  ``0`` is the
    #: admission-only mode tests use: jobs queue but never start, which
    #: makes queue-full/quota/cancel paths deterministic.
    executors: int = 4
    #: Max jobs in flight (queued + running) across all tenants.
    queue_limit: int = 16
    #: Max jobs in flight per tenant.
    tenant_quota: int = 4
    #: Directory for the persistent plan cache (None = memory-only).
    cache_directory: Optional[str] = None
    cache_capacity: int = 256
    #: Server-side ceiling for any blocking wait (submit/result).
    max_wait_seconds: float = 300.0
    #: How long shutdown waits for running jobs before failing them.
    shutdown_grace_seconds: float = 10.0
    #: Finished jobs kept queryable (older ones are dropped).
    retain_jobs: int = 256
    #: Compilation/execution defaults; per-job ``config`` overrides merge
    #: on top.  The default backend is ``jit`` — the only tier that runs
    #: arbitrary scripts (loops, variables) instead of refusing them.
    config: PashConfig = field(default_factory=lambda: PashConfig(backend="jit"))
    #: Chrome-trace destination written at shutdown (enables tracing).
    trace_path: Optional[str] = None
    #: Serve Prometheus text on this port (``--metrics-port``; None = off).
    #: Binds the daemon's listen host, so the same loopback/--allow-remote
    #: trust model applies to the scrape endpoint.
    metrics_port: Optional[int] = None
    #: JSONL telemetry event log (``--events``; None = off).
    events_path: Optional[str] = None


class PashServiceDaemon:
    """The pash-as-a-service daemon (see module docstring)."""

    def __init__(
        self, options: Optional[ServiceOptions] = None, tracer: Optional[Tracer] = None
    ) -> None:
        self.options = options or ServiceOptions()
        self.config = self.options.config
        if tracer is None:
            tracing = self.config.tracing or bool(self.options.trace_path)
            retention = self.config.obs.span_retention or None
            tracer = Tracer(max_spans=retention) if tracing else NULL_TRACER
        self.tracer = tracer
        #: Per-job sampling decision: which jobs' spans the tracer records.
        self.sampler = TraceSampler.from_config(self.config.obs)
        #: Always-enabled: the job counters below must count whether or not
        #: anything scrapes them.  ``--metrics-port`` only gates exposition.
        self.metrics = MetricsRegistry()
        self._jobs_completed = self.metrics.counter(
            "pash_jobs_completed_total", "Jobs that finished successfully."
        )
        self._jobs_failed = self.metrics.counter(
            "pash_jobs_failed_total", "Jobs that turned terminal with an error."
        )
        self._jobs_cancelled = self.metrics.counter(
            "pash_jobs_cancelled_total", "Jobs cancelled before completion."
        )
        self._admissions = self.metrics.counter(
            "pash_admissions_total", "Submissions that passed admission control."
        )
        self._rejections = self.metrics.counter(
            "pash_rejections_total",
            "Submissions refused by admission control, by reason.",
            labels=("reason",),
        )
        self._job_seconds = self.metrics.histogram(
            "pash_job_seconds",
            "Per-tenant job wall-clock duration (queue to terminal).",
            labels=("tenant",),
        )
        self.metrics.gauge(
            "pash_queue_depth", "Jobs queued awaiting an executor."
        ).set_function(lambda: self.run_queue.qsize())
        self.metrics.gauge(
            "pash_uptime_seconds", "Seconds since the daemon started serving."
        ).set_function(
            lambda: time.time() - self.started_at if self.started_at else 0.0
        )
        self.events = (
            EventLog(self.options.events_path)
            if self.options.events_path
            else NULL_EVENTS
        )
        self.metrics_server: Optional[MetricsServer] = None
        self._previous_registry: Optional[MetricsRegistry] = None
        self.admission = AdmissionController(
            queue_limit=self.options.queue_limit,
            tenant_quota=self.options.tenant_quota,
        )
        self.jobs = JobTable(retain=self.options.retain_jobs)
        self.run_queue: "queue.Queue[Job]" = queue.Queue()
        from repro.jit.cache import DiskPlanCache, PlanCache

        if self.options.cache_directory:
            self.plan_cache: PlanCache = DiskPlanCache(
                self.options.cache_directory, capacity=self.options.cache_capacity
            )
        else:
            self.plan_cache = PlanCache(capacity=self.options.cache_capacity)
        self.pool: Optional[Any] = None
        self.address: Optional[Tuple[str, int]] = None
        self.started_at = 0.0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._executors: list = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """The ``HOST:PORT`` clients connect to (known after :meth:`start`)."""
        if self.address is None:
            raise RuntimeError("daemon is not started")
        return f"{self.address[0]}:{self.address[1]}"

    # -- job counters ---------------------------------------------------
    #
    # Backed by the registry's lock-guarded CounterChild: the old plain-int
    # ``+= 1`` from N executor threads could lose increments (the GIL can
    # switch between the load and the store).  The int-returning properties
    # keep every existing reader working unchanged.

    @property
    def jobs_completed(self) -> int:
        return int(self._jobs_completed.value)

    @property
    def jobs_failed(self) -> int:
        return int(self._jobs_failed.value)

    @property
    def jobs_cancelled(self) -> int:
        return int(self._jobs_cancelled.value)

    def start(self) -> None:
        """Bind the socket, warm the pool, and start serving."""
        host, port = protocol.resolve_address(self.options.listen)
        if not protocol.is_loopback_host(host) and not self.options.allow_remote:
            raise ServiceError(
                f"refusing to listen on non-loopback address {host!r}: the "
                "service protocol is unauthenticated, so every client that "
                "can connect can submit work; pass --allow-remote "
                "(allow_remote=True) only on a trusted network"
            )
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.25)
        self.address = self._listener.getsockname()[:2]
        self.started_at = time.time()
        # Every instrumented layer underneath (pool, plan cache, scheduler,
        # supervisor, cluster) reports into this daemon's registry for the
        # daemon's lifetime; shutdown restores whatever was installed before.
        self._previous_registry = obs_metrics.install(self.metrics)
        if self.options.metrics_port is not None:
            server = MetricsServer(
                self.metrics,
                host=host,
                port=self.options.metrics_port,
                allow_remote=self.options.allow_remote,
            )
            try:
                server.start()
            except (ValueError, OSError) as exc:
                self._listener.close()
                obs_metrics.install(self._previous_registry)
                raise ServiceError(f"cannot serve metrics: {exc}") from exc
            self.metrics_server = server
        self.events.emit(
            "daemon-started",
            endpoint=self.endpoint,
            executors=self.options.executors,
            pid=os.getpid(),
        )
        scheduler = self.config.scheduler_options()
        if getattr(scheduler, "use_pool", True):
            from repro.engine.pool import WorkerPool

            self.pool = WorkerPool(
                start_method=getattr(scheduler, "start_method", "fork"),
                size=getattr(scheduler, "pool_size", None),
            )
        for index in range(max(0, self.options.executors)):
            thread = threading.Thread(
                target=self._executor_loop, name=f"pash-serve-exec-{index}", daemon=True
            )
            thread.start()
            self._executors.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pash-serve-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (Ctrl-C shuts down)."""
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, cancel queued jobs, drain running ones (bounded).

        Idempotent and bounded: queued jobs are cancelled immediately (their
        waiters wake with a clean terminal state), running jobs get
        ``shutdown_grace_seconds`` to finish and are then *failed* — every
        client blocked on a result gets an answer, never a hang.
        """
        with self._shutdown_lock:
            already = self._shutdown_started
            self._shutdown_started = True
            self._stopping.set()
        if already:
            self._stopped.wait()
            return
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        while True:
            try:
                job = self.run_queue.get_nowait()
            except queue.Empty:
                break
            if job.cancel():
                job.error = "daemon shutting down"
                job.error_code = protocol.ERR_SHUTTING_DOWN
                self._jobs_cancelled.inc()
                self.events.emit(
                    "job-cancelled", job_id=job.job_id, tenant=job.tenant,
                    reason="shutdown",
                )
            self._release(job)
        deadline = time.time() + self.options.shutdown_grace_seconds
        for thread in self._executors:
            thread.join(timeout=max(0.1, deadline - time.time()))
        for job in self.jobs.all():
            if job.state in (JobState.RUNNING, JobState.QUEUED):
                if job.fail(
                    "daemon shut down before the job finished",
                    code=protocol.ERR_SHUTTING_DOWN,
                ):
                    self._jobs_failed.inc()
                self._release(job)
        if self.pool is not None:
            self.pool.shutdown()
        if self.options.trace_path and self.tracer.enabled:
            export_chrome_trace(self.tracer.spans, self.options.trace_path)
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        self.events.emit(
            "daemon-stopped",
            jobs_completed=self.jobs_completed,
            jobs_failed=self.jobs_failed,
            jobs_cancelled=self.jobs_cancelled,
        )
        self.events.close()
        # Restore only if we are still the installed registry — a daemon
        # started after us (tests run several) owns the slot now.
        if obs_metrics.active() is self.metrics:
            obs_metrics.install(self._previous_registry)
        self._previous_registry = None
        self._stopped.set()

    # ------------------------------------------------------------------
    # Socket plane
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="pash-serve-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        """One request, one response, close — errors answered, never raised."""
        shutdown_after = False
        try:
            connection.settimeout(self.options.max_wait_seconds + 10.0)
            try:
                message = recv_json_message(connection)
            except ProtocolError as exc:
                message = None
                response: Optional[Dict[str, Any]] = protocol.error_response(
                    protocol.ERR_BAD_REQUEST, str(exc)
                )
            else:
                response = None
            if message is not None:
                response, shutdown_after = self._handle(message)
            if response is not None:
                send_json_message(connection, response)
        except (OSError, ProtocolError):
            pass  # the client vanished; its job (if any) keeps running
        finally:
            try:
                connection.close()
            except OSError:
                pass
        if shutdown_after:
            self.shutdown()

    def _handle(self, message: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Dispatch one request; returns (response, shutdown-after-reply)."""
        kind = message.get("type")
        try:
            if kind == protocol.MSG_SUBMIT:
                return self._handle_submit(message), False
            if kind == protocol.MSG_STATUS:
                return self._job_response(message, wait=False), False
            if kind == protocol.MSG_RESULT:
                return self._job_response(message, wait=True), False
            if kind == protocol.MSG_CANCEL:
                return self._handle_cancel(message), False
            if kind == protocol.MSG_STATS:
                return {"type": protocol.MSG_STATS_REPLY, "stats": self.stats()}, False
            if kind == protocol.MSG_METRICS:
                return {
                    "type": protocol.MSG_METRICS_REPLY,
                    "exposition": prometheus_text(self.metrics),
                    "snapshot": self.metrics.snapshot(),
                }, False
            if kind == protocol.MSG_PING:
                from repro import __version__

                return {
                    "type": protocol.MSG_PONG,
                    "version": __version__,
                    "protocol": protocol.SERVICE_PROTOCOL_VERSION,
                    "pid": os.getpid(),
                }, False
            if kind == protocol.MSG_SHUTDOWN:
                self._stopping.set()  # refuse new work before the reply lands
                return {"type": protocol.MSG_OK}, True
            return (
                protocol.error_response(
                    protocol.ERR_BAD_REQUEST, f"unknown request type {kind!r}"
                ),
                False,
            )
        except ServiceBusy as busy:
            return protocol.error_response(busy.code, str(busy)), False
        except ServiceError as error:
            return protocol.error_response(error.code, str(error)), False
        except Exception as exc:  # noqa: BLE001 - the reply IS the error path
            return (
                protocol.error_response(
                    protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                ),
                False,
            )

    # -- request handlers ----------------------------------------------

    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._stopping.is_set():
            raise ServiceError(
                "daemon is shutting down", code=protocol.ERR_SHUTTING_DOWN
            )
        script = message.get("script")
        if not isinstance(script, str) or not script.strip():
            raise ServiceError(
                "submit requires a non-empty 'script' string",
                code=protocol.ERR_BAD_REQUEST,
            )
        tenant = str(message.get("tenant") or "default")
        config = self._job_config(message.get("config"))
        backend = str(message.get("backend") or config.backend)
        files = {
            str(name): [str(line) for line in lines]
            for name, lines in (message.get("files") or {}).items()
        }
        stdin = [str(line) for line in (message.get("stdin") or [])]
        # Validate before admission: a malformed request must not claim a
        # quota slot or enqueue a job it then answers bad-request for.
        timeout = self._validated_timeout(message.get("timeout"))
        try:
            self.admission.admit(tenant)
        except ServiceBusy as busy:
            self._rejections.labels(reason=busy.code).inc()
            self.events.emit("job-rejected", tenant=tenant, reason=busy.code)
            raise
        self._admissions.inc()
        job = self.jobs.create(
            tenant=tenant,
            script=script,
            backend=backend,
            config=config,
            files=files,
            stdin=stdin,
        )
        self.events.emit(
            "job-admitted", job_id=job.job_id, tenant=tenant, backend=backend
        )
        self.run_queue.put(job)
        if message.get("wait", True):
            return self._wait_for(job, timeout)
        return {"type": protocol.MSG_JOB, "job": job.payload(include_output=False)}

    def _job_config(self, overrides: Any) -> PashConfig:
        """The daemon's config with a submission's overrides merged on top."""
        if not overrides:
            return self.config
        if not isinstance(overrides, dict):
            raise ServiceError(
                "'config' must be a dict of PashConfig fields",
                code=protocol.ERR_BAD_REQUEST,
            )
        merged = self.config.to_dict()
        merged.update(overrides)
        try:
            return PashConfig.from_dict(merged)
        except (ValueError, TypeError) as exc:
            raise ServiceError(str(exc), code=protocol.ERR_BAD_REQUEST) from exc

    def _find_job(self, message: Dict[str, Any]) -> Job:
        raw = message.get("job_id")
        try:
            job_id = int(raw)
        except (TypeError, ValueError):
            raise ServiceError(
                f"'job_id' must be an integer, got {raw!r}",
                code=protocol.ERR_BAD_REQUEST,
            ) from None
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"unknown job id {raw!r}", code=protocol.ERR_UNKNOWN_JOB
            )
        return job

    def _job_response(self, message: Dict[str, Any], wait: bool) -> Dict[str, Any]:
        job = self._find_job(message)
        if wait:
            return self._wait_for(job, message.get("timeout"))
        return {"type": protocol.MSG_JOB, "job": job.payload()}

    @staticmethod
    def _validated_timeout(value: Any) -> Optional[float]:
        """A client-supplied ``timeout`` as a float (bad-request otherwise)."""
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ServiceError(
                f"'timeout' must be a number, got {value!r}",
                code=protocol.ERR_BAD_REQUEST,
            ) from None

    def _wait_for(self, job: Job, timeout: Any) -> Dict[str, Any]:
        """Bounded wait for a terminal state; a timeout is a typed error."""
        ceiling = self.options.max_wait_seconds
        timeout = self._validated_timeout(timeout)
        wait_seconds = ceiling if timeout is None else min(timeout, ceiling)
        if job.finished.wait(timeout=max(0.0, wait_seconds)):
            return {"type": protocol.MSG_JOB, "job": job.payload()}
        return protocol.error_response(
            protocol.ERR_TIMEOUT,
            f"job {job.job_id} still {job.state} after {wait_seconds:.1f}s",
            job=job.payload(include_output=False),
        )

    def _handle_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self._find_job(message)
        if job.cancel():
            self._jobs_cancelled.inc()
            self.events.emit(
                "job-cancelled", job_id=job.job_id, tenant=job.tenant,
                reason="client",
            )
            self._release(job)
        return {"type": protocol.MSG_JOB, "job": job.payload()}

    # ------------------------------------------------------------------
    # Execution plane
    # ------------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            try:
                job = self.run_queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            self._run_job(job)

    def _release(self, job: Job) -> None:
        if job.first_release():
            self.admission.release(job.tenant)

    def _run_job(self, job: Job) -> None:
        if not job.try_start():  # cancelled while queued
            self._release(job)
            return
        started = time.perf_counter()
        # The sampler decides per job whether spans are recorded; a skipped
        # job runs against the shared null tracer (one attribute check per
        # would-be span) but still counts in every metric below.
        tracer = (
            self.tracer
            if self.tracer.enabled and self.sampler.should_sample(job.tenant)
            else NULL_TRACER
        )
        spill_dir: Optional[str] = None
        status = "completed"
        try:
            try:
                config, spill_dir = self._job_spill_directory(job)
                with tracer.span(
                    "service:job",
                    "service",
                    job_id=job.job_id,
                    tenant=job.tenant,
                    backend=job.backend,
                ):
                    result, compiled = self._execute_supervised(job, config, tracer)
                report = RunReport.from_run(result, compiled).to_dict()
            finally:
                # Before the job turns terminal: a waiter that observes
                # "done" must never still see the job's spill directory.
                if spill_dir is not None:
                    shutil.rmtree(spill_dir, ignore_errors=True)
            # complete() is False when the job already turned terminal
            # (failed by the shutdown path past its grace period) — terminal
            # states stay terminal and the counters stay consistent.
            if job.complete(
                stdout=result.stdout,
                out_files=result.files,
                report=report,
                elapsed_seconds=time.perf_counter() - started,
            ):
                self._jobs_completed.inc()
        except (ExecutionError, ExpansionError, OSError, ValueError, KeyError) as exc:
            # OSError covers the resilience tier's typed failures (injected
            # faults, ResourceExhausted) escaping a no-degrade ladder: the
            # tenant gets a clean execution error, never an internal one.
            status = "failed"
            if job.fail(str(exc) or type(exc).__name__, code=protocol.ERR_EXECUTION):
                self._jobs_failed.inc()
        except Exception as exc:  # noqa: BLE001 - a tenant bug must not kill the daemon
            status = "failed"
            if job.fail(f"{type(exc).__name__}: {exc}", code=protocol.ERR_INTERNAL):
                self._jobs_failed.inc()
        finally:
            elapsed = time.perf_counter() - started
            self._job_seconds.labels(tenant=job.tenant).observe(elapsed)
            self.events.emit(
                "job-finished",
                job_id=job.job_id,
                tenant=job.tenant,
                backend=job.backend,
                status=status,
                elapsed_seconds=round(elapsed, 6),
            )
            self._release(job)

    def _job_spill_directory(self, job: Job) -> Tuple[PashConfig, Optional[str]]:
        """A per-job unique spill subdirectory (when one is configured).

        Concurrent jobs must never share a flat spill directory: the run
        directory is created fresh per job (``mkdtemp``) and removed after,
        so no two jobs can ever see each other's spill files.  The cache
        digest ignores ``spill_directory``, so this does not fragment the
        plan cache.
        """
        base = job.config.streaming.spill_directory
        if base is None:
            return job.config, None
        os.makedirs(base, exist_ok=True)
        spill_dir = tempfile.mkdtemp(prefix=f"pash-job-{job.job_id}-", dir=base)
        streaming = StreamingConfig(
            chunk_size=job.config.streaming.chunk_size,
            spill_threshold=job.config.streaming.spill_threshold,
            spill_directory=spill_dir,
        )
        return job.config.replace(streaming=streaming), spill_dir

    def _fresh_environment(self, job: Job) -> ExecutionEnvironment:
        """A pristine environment for one attempt (stdin is consumable)."""
        return ExecutionEnvironment(
            filesystem=VirtualFileSystem(job.files), stdin=list(job.stdin)
        )

    def _execute_supervised(
        self, job: Job, config: PashConfig, tracer: Optional[Tracer] = None
    ):
        """Run the job under the config's retry-then-degrade ladder.

        Each attempt (and the degraded run) gets a *fresh* execution
        environment, so a half-consumed stdin or partially written virtual
        file from a failed attempt never leaks into the next one.  The
        job-level fault plan installs once around the whole ladder — not per
        attempt — so ``max_fires`` counts injections per job, and a retried
        attempt sees the plan's advanced state (that is what lets
        retry-then-succeed happen at all).
        """
        resilience = config.resilience
        tracer = tracer if tracer is not None else self.tracer

        def attempt():
            return self._execute(job, config, self._fresh_environment(job), tracer)

        if not resilience.active or job.backend == "interpreter":
            return attempt()

        def degrade():
            return self._execute_degraded(
                job, config, self._fresh_environment(job), tracer
            )

        supervisor = Supervisor(resilience, tracer)
        plan = resilience.fault_plan()
        previous_plan = fault_injection.active()
        if plan is not None:
            fault_injection.install(plan)
        try:
            result, compiled = supervisor.run(f"job:{job.job_id}", attempt, degrade)
        finally:
            if plan is not None:
                fault_injection.install(previous_plan)
        result.metrics.runs_retried += supervisor.runs_retried
        result.metrics.degraded_runs += supervisor.degraded_runs
        if supervisor.degraded_runs:
            self.events.emit(
                "job-degraded",
                job_id=job.job_id,
                tenant=job.tenant,
                retries=supervisor.runs_retried,
            )
        return result, compiled

    def _execute_degraded(
        self,
        job: Job,
        config: PashConfig,
        environment: ExecutionEnvironment,
        tracer: Optional[Tracer] = None,
    ):
        """The ladder's last rung: the job on the sequential interpreter.

        Byte-identical to the parallel plan by the paper's correctness
        contract; JIT jobs keep the driver (control flow still needs a
        shell) but force its inner backend to the interpreter.
        """
        tracer = tracer if tracer is not None else self.tracer
        if job.backend == "jit":
            from repro.jit.driver import JitDriver

            driver = JitDriver(
                config=config,
                environment=environment,
                cache=self.plan_cache,
                tracer=tracer,
                inner_backend="interpreter",
            )
            return driver.run(job.script), None
        compiled = Pash(config, tracer=tracer).compile(job.script)
        result = compiled.execute(backend="interpreter", environment=environment)
        return result, compiled

    def _execute(
        self,
        job: Job,
        config: PashConfig,
        environment: ExecutionEnvironment,
        tracer: Optional[Tracer] = None,
    ):
        """Run one job on its backend, sharing the daemon's pool and cache."""
        tracer = tracer if tracer is not None else self.tracer
        fault_injection.fire(fault_injection.SERVICE_EXECUTOR)
        if job.backend == "jit":
            from repro.jit.driver import JitDriver

            options: Dict[str, Any] = {
                "cache": self.plan_cache,
                "tracer": tracer,
                "inner_backend": config.jit_inner_backend,
            }
            if self.pool is not None and config.jit_inner_backend == "parallel":
                options["pool"] = self.pool
            driver = JitDriver(config=config, environment=environment, **options)
            return driver.run(job.script), None
        compiled = Pash(config, tracer=tracer).compile(job.script)
        options = {}
        if job.backend == "parallel" and self.pool is not None:
            options["pool"] = self.pool
        result = compiled.execute(
            backend=job.backend, environment=environment, **options
        )
        return result, compiled

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    #: Version of the :meth:`stats` payload shape.  2 added ``schema``
    #: itself, an always-present ``pool`` key (None when poolless), and the
    #: ``sampler``/``trace`` sections.
    STATS_SCHEMA = 2

    def stats(self) -> Dict[str, Any]:
        """The STATS payload: admission, queue, cache, and pool counters."""
        snapshot: Dict[str, Any] = {
            "schema": self.STATS_SCHEMA,
            "endpoint": self.endpoint if self.address else None,
            "uptime_seconds": time.time() - self.started_at if self.started_at else 0.0,
            "executors": len(self._executors),
            "queue_depth": self.run_queue.qsize(),
            "admission": self.admission.to_dict(),
            "jobs": {
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "cancelled": self.jobs_cancelled,
            },
            "plan_cache": dict(
                self.plan_cache.stats.to_dict(), entries=len(self.plan_cache)
            ),
            "pool": self.pool.stats() if self.pool is not None else None,
            "sampler": {
                "ratio": self.sampler.ratio,
                "sampled": self.sampler.sampled,
                "skipped": self.sampler.skipped,
            },
            "trace": {
                "enabled": self.tracer.enabled,
                "spans": len(self.tracer.spans),
                "dropped_spans": self.tracer.dropped_spans,
            },
        }
        return snapshot


# ---------------------------------------------------------------------------
# The pash-serve entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-serve",
        description="Long-running PaSh service daemon: submit scripts with pash-client.",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:7070", help="HOST:PORT to listen on (port 0 = ephemeral)"
    )
    parser.add_argument(
        "--allow-remote",
        action="store_true",
        help="allow a non-loopback --listen address (the protocol is "
        "unauthenticated: anyone who can connect can submit work)",
    )
    parser.add_argument("--executors", type=int, default=4, help="executor threads")
    parser.add_argument(
        "--queue-limit", type=int, default=16, help="max jobs in flight, all tenants"
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=4, help="max jobs in flight per tenant"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent plan-cache directory"
    )
    parser.add_argument("--cache-capacity", type=int, default=256)
    parser.add_argument("--width", type=int, default=2, help="parallelism width")
    parser.add_argument(
        "--execute",
        default="jit",
        help="default backend for submissions (jit | parallel | interpreter | ...)",
    )
    parser.add_argument(
        "--jit-backend", default="parallel", help="engine behind JIT-compiled regions"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="pre-warm the worker pool to N processes"
    )
    parser.add_argument("--spill-dir", default=None, help="base spill directory")
    parser.add_argument("--max-wait-seconds", type=float, default=300.0)
    parser.add_argument(
        "--trace", default=None, help="write a Chrome trace of every job at shutdown"
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus text on this port (binds the --listen host; "
        "0 = ephemeral)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="FILE.jsonl",
        help="append schema-stable JSONL telemetry events (admissions, "
        "rejections, job outcomes, lifecycle)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATIO",
        help="record spans for this fraction of jobs (default 1.0; "
        "deterministic under --trace-sample-seed)",
    )
    parser.add_argument(
        "--trace-sample-seed", type=int, default=0, help="sampling sequence seed"
    )
    parser.add_argument(
        "--sample-tenant",
        action="append",
        default=None,
        metavar="TENANT",
        help="always trace this tenant regardless of --trace-sample "
        "(repeatable)",
    )
    parser.add_argument(
        "--span-retention",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N spans in memory, evicting the oldest "
        "(0 = unbounded)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry a failed job this many times before degrading (arms the "
        "resilience ladder; see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail a job after retries instead of re-running it on the "
        "sequential interpreter",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE.json",
        help="inject a deterministic fault plan into every job (chaos testing)",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    arguments = build_parser().parse_args(argv)
    from repro.api.config import ObsConfig, ResilienceConfig

    config = PashConfig.paper_default(
        arguments.width,
        backend=arguments.execute,
        jobs=arguments.jobs,
        jit_inner_backend=arguments.jit_backend,
        tracing=bool(arguments.trace),
        streaming=StreamingConfig(spill_directory=arguments.spill_dir),
        resilience=ResilienceConfig.from_cli_args(arguments),
        obs=ObsConfig.from_cli_args(arguments),
    )
    options = ServiceOptions(
        listen=arguments.listen,
        allow_remote=arguments.allow_remote,
        executors=arguments.executors,
        queue_limit=arguments.queue_limit,
        tenant_quota=arguments.tenant_quota,
        cache_directory=arguments.cache_dir,
        cache_capacity=arguments.cache_capacity,
        max_wait_seconds=arguments.max_wait_seconds,
        config=config,
        trace_path=arguments.trace,
        metrics_port=arguments.metrics_port,
        events_path=arguments.events,
    )
    daemon = PashServiceDaemon(options)
    try:
        daemon.start()
    except (OSError, ServiceError) as exc:
        print(f"pash-serve: cannot listen on {arguments.listen}: {exc}", file=sys.stderr)
        return 2
    print(
        f"pash-serve: listening on {daemon.endpoint} "
        f"(executors={arguments.executors}, backend={arguments.execute})",
        file=sys.stderr,
        flush=True,
    )
    if daemon.metrics_server is not None:
        print(
            f"pash-serve: metrics on http://{daemon.address[0]}:"
            f"{daemon.metrics_server.port}/metrics",
            file=sys.stderr,
            flush=True,
        )
    daemon.serve_forever()
    print("pash-serve: shut down cleanly", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
