"""The client/daemon wire protocol of the service tier.

Framing shares the *shape* of :mod:`repro.cluster.protocol` — a 4-byte
big-endian length prefix and one frame — but the body is **UTF-8 JSON, not
pickle**.  The cluster tier can justify pickle because both endpoints are
the same codebase started by the same user (an internal process boundary);
``pash-serve`` is a *tenant-facing* service with an advertised isolation
model, and unpickling client bytes would hand any connecting client
arbitrary code execution in the daemon.  Every payload here is a dict of
strings, numbers, and lists, so JSON loses nothing and a malicious frame
can at worst be a parse error — answered as ``bad-request``, never
executed.  On top of the framing the service speaks a one-shot
request/response shape (one connection per request, HTTP-like), which keeps
the daemon's concurrency model trivial: every accepted connection is read
once, answered once, and closed, so a stalled client can never wedge
another tenant's traffic.

Requests::

    SUBMIT   {script, tenant, files?, stdin?, backend?, config?, wait?, timeout?}
    STATUS   {job_id}
    RESULT   {job_id, timeout?}          # blocks (bounded) until terminal
    CANCEL   {job_id}
    STATS    {}
    PING     {}
    SHUTDOWN {}

Responses::

    JOB   {job: {job_id, state, stdout?, files?, report?, ...}}
    ERROR {code, message, job?}          # codes below; `job` on timeouts
    STATS {stats: {...}}
    PONG  {version, protocol, pid}
    OK    {}

Every blocking path is bounded server-side by the daemon's
``max_wait_seconds`` — a client that asks to wait forever still gets a
typed ``timeout`` error (carrying the job snapshot) instead of a hang.
"""

from __future__ import annotations

import ipaddress
import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple, Union

from repro.cluster.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    parse_address,
)
from repro.service.admission import ServiceBusy, ServiceError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "SERVICE_PROTOCOL_VERSION",
    "recv_json_message",
    "request",
    "raise_for_error",
    "send_json_message",
]

#: Bumped on any incompatible message-shape change; reported by PING.
#: Version 2: the frame body switched from pickle to JSON.
#: Version 3: added the ``metrics`` request (Prometheus exposition +
#: registry snapshot) and a versioned ``schema`` field in STATS payloads.
SERVICE_PROTOCOL_VERSION = 3

# -- request types -----------------------------------------------------------
MSG_SUBMIT = "submit"
MSG_STATUS = "status"
MSG_RESULT = "result"
MSG_CANCEL = "cancel"
MSG_STATS = "stats"
MSG_METRICS = "metrics"
MSG_PING = "ping"
MSG_SHUTDOWN = "shutdown"

# -- response types ----------------------------------------------------------
MSG_JOB = "job"
MSG_ERROR = "error"
MSG_STATS_REPLY = "stats-reply"
MSG_METRICS_REPLY = "metrics-reply"
MSG_PONG = "pong"
MSG_OK = "ok"

# -- error codes -------------------------------------------------------------
ERR_BUSY = "busy"  # run queue full (admission)
ERR_QUOTA = "quota"  # tenant at quota (admission)
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_JOB = "unknown-job"
ERR_TIMEOUT = "timeout"  # bounded wait elapsed; job still in flight
ERR_SHUTTING_DOWN = "shutting-down"
ERR_EXECUTION = "execution"  # the script itself failed
ERR_INTERNAL = "internal"

# Client-side codes (never sent by the daemon).  The distinction matters
# for retries: an ``unreachable`` failure is provably pre-send (the TCP
# connect itself failed), so resubmitting is safe; ``connection-lost``
# means the request may already have reached the daemon and executed, so a
# blind retry could run a submission twice.
ERR_UNREACHABLE = "unreachable"
ERR_CONNECTION_LOST = "connection-lost"

#: Admission codes map back to :class:`ServiceBusy` client-side.
BUSY_CODES = frozenset({ERR_BUSY, ERR_QUOTA})

Address = Union[str, Tuple[str, int]]

_HEADER = struct.Struct(">I")


def resolve_address(address: Address) -> Tuple[str, int]:
    """Accept ``"HOST:PORT"`` or an ``(host, port)`` pair."""
    if isinstance(address, str):
        return parse_address(address)
    host, port = address
    return host, int(port)


def is_loopback_host(host: str) -> bool:
    """True when ``host`` can only be reached from this machine.

    An empty host binds every interface, so it is *not* loopback.
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


# ---------------------------------------------------------------------------
# JSON framing
# ---------------------------------------------------------------------------


def send_json_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed UTF-8 JSON message."""
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on EOF before the first byte."""
    pieces = []
    remaining = count
    while remaining:
        piece = sock.recv(remaining)
        if not piece:
            if remaining == count:
                return None  # clean EOF at a frame boundary
            raise ProtocolError("connection closed mid-frame")
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def recv_json_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message; None on clean EOF (the peer closed the connection).

    The body is parsed as JSON only — a frame that is not valid JSON (for
    example a pickle, or random bytes) raises :class:`ProtocolError` and is
    never evaluated.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"malformed message: {type(message).__name__}")
    return message


# ---------------------------------------------------------------------------
# One-shot requests
# ---------------------------------------------------------------------------


def request(
    address: Address,
    message: Dict[str, Any],
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """One round trip: connect, send ``message``, read one response, close.

    Raises :class:`ServiceError` with code ``unreachable`` only when the
    *connect* itself fails (the request provably never left this process —
    safe to retry), and ``connection-lost`` when the connection dies after
    that (the daemon may have executed the request — not safe to retry
    blindly).  Never returns ``None`` and never blocks past ``timeout``.
    """
    host, port = resolve_address(address)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServiceError(
            f"cannot reach pash-serve at {host}:{port}: {exc}",
            code=ERR_UNREACHABLE,
        ) from exc
    try:
        with sock:
            sock.settimeout(timeout)
            send_json_message(sock, message)
            response = recv_json_message(sock)
    except ProtocolError as exc:
        raise ServiceError(f"malformed response from {host}:{port}: {exc}") from exc
    except OSError as exc:
        raise ServiceError(
            f"connection to pash-serve at {host}:{port} lost mid-request: {exc}",
            code=ERR_CONNECTION_LOST,
        ) from exc
    if response is None:
        raise ServiceError(
            f"pash-serve at {host}:{port} closed the connection without replying",
            code=ERR_CONNECTION_LOST,
        )
    return response


def error_response(
    code: str, message: str, job: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"type": MSG_ERROR, "code": code, "message": message}
    if job is not None:
        response["job"] = job
    return response


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Map an ERROR response to the matching typed exception; pass the rest."""
    if response.get("type") != MSG_ERROR:
        return response
    code = response.get("code", "error")
    message = response.get("message", "service error")
    if code in BUSY_CODES:
        raise ServiceBusy(message, code=code)
    raise ServiceError(message, code=code)
