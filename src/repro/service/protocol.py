"""The client/daemon wire protocol of the service tier.

Framing is exactly :mod:`repro.cluster.protocol` — a 4-byte big-endian
length prefix and one pickled dict — reused rather than reinvented.  On top
of it the service speaks a one-shot request/response shape (one connection
per request, HTTP-like), which keeps the daemon's concurrency model trivial:
every accepted connection is read once, answered once, and closed, so a
stalled client can never wedge another tenant's traffic.

Requests::

    SUBMIT   {script, tenant, files?, stdin?, backend?, config?, wait?, timeout?}
    STATUS   {job_id}
    RESULT   {job_id, timeout?}          # blocks (bounded) until terminal
    CANCEL   {job_id}
    STATS    {}
    PING     {}
    SHUTDOWN {}

Responses::

    JOB   {job: {job_id, state, stdout?, files?, report?, ...}}
    ERROR {code, message, job?}          # codes below; `job` on timeouts
    STATS {stats: {...}}
    PONG  {version, protocol, pid}
    OK    {}

Every blocking path is bounded server-side by the daemon's
``max_wait_seconds`` — a client that asks to wait forever still gets a
typed ``timeout`` error (carrying the job snapshot) instead of a hang.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple, Union

from repro.cluster.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)
from repro.service.admission import ServiceBusy, ServiceError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "SERVICE_PROTOCOL_VERSION",
    "request",
    "raise_for_error",
]

#: Bumped on any incompatible message-shape change; reported by PING.
SERVICE_PROTOCOL_VERSION = 1

# -- request types -----------------------------------------------------------
MSG_SUBMIT = "submit"
MSG_STATUS = "status"
MSG_RESULT = "result"
MSG_CANCEL = "cancel"
MSG_STATS = "stats"
MSG_PING = "ping"
MSG_SHUTDOWN = "shutdown"

# -- response types ----------------------------------------------------------
MSG_JOB = "job"
MSG_ERROR = "error"
MSG_STATS_REPLY = "stats-reply"
MSG_PONG = "pong"
MSG_OK = "ok"

# -- error codes -------------------------------------------------------------
ERR_BUSY = "busy"  # run queue full (admission)
ERR_QUOTA = "quota"  # tenant at quota (admission)
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_JOB = "unknown-job"
ERR_TIMEOUT = "timeout"  # bounded wait elapsed; job still in flight
ERR_SHUTTING_DOWN = "shutting-down"
ERR_EXECUTION = "execution"  # the script itself failed
ERR_INTERNAL = "internal"

#: Admission codes map back to :class:`ServiceBusy` client-side.
BUSY_CODES = frozenset({ERR_BUSY, ERR_QUOTA})

Address = Union[str, Tuple[str, int]]


def resolve_address(address: Address) -> Tuple[str, int]:
    """Accept ``"HOST:PORT"`` or an ``(host, port)`` pair."""
    if isinstance(address, str):
        return parse_address(address)
    host, port = address
    return host, int(port)


def request(
    address: Address,
    message: Dict[str, Any],
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """One round trip: connect, send ``message``, read one response, close.

    Raises :class:`ServiceError` (code ``unreachable``) when the daemon
    cannot be reached and on a connection dropped before the response —
    never returns ``None`` and never blocks past ``timeout``.
    """
    host, port = resolve_address(address)
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_message(sock, message)
            response = recv_message(sock)
    except (ConnectionError, socket.timeout, TimeoutError, OSError) as exc:
        raise ServiceError(
            f"cannot reach pash-serve at {host}:{port}: {exc}", code="unreachable"
        ) from exc
    except ProtocolError as exc:
        raise ServiceError(f"malformed response from {host}:{port}: {exc}") from exc
    if response is None:
        raise ServiceError(
            f"pash-serve at {host}:{port} closed the connection without replying"
        )
    return response


def error_response(
    code: str, message: str, job: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"type": MSG_ERROR, "code": code, "message": message}
    if job is not None:
        response["job"] = job
    return response


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Map an ERROR response to the matching typed exception; pass the rest."""
    if response.get("type") != MSG_ERROR:
        return response
    code = response.get("code", "error")
    message = response.get("message", "service error")
    if code in BUSY_CODES:
        raise ServiceBusy(message, code=code)
    raise ServiceError(message, code=code)
