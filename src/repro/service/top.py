"""``pash-top`` — a live terminal view of a running ``pash-serve``.

Polls the daemon over the ordinary service protocol (one STATS and one
METRICS request per refresh — no privileged channel, no HTTP dependency)
and renders the operator's dashboard: queue depth, executor count, job
counters, plan-cache hit rate, pool occupancy, and a per-tenant table of
job counts, throughput (from count deltas between refreshes), and
p50/p99 latency estimated from the ``pash_job_seconds`` histogram.

Rendering is a pure function (:func:`render_frame`) from two protocol
payloads to a string, so tests assert on content without a terminal; the
CLI loop just clears the screen and reprints.  ``--once`` prints a single
frame and exits — the CI smoke job's mode.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional

from repro.service.admission import ServiceError
from repro.service.client import ServiceClient

#: ANSI: clear screen + home.  Written only in the interactive loop.
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_uptime(seconds: float) -> str:
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"


def _metric_values(snapshot: Dict[str, Any], name: str) -> List[Dict[str, Any]]:
    family = snapshot.get(name) or {}
    return list(family.get("values") or [])


def _metric_value(snapshot: Dict[str, Any], name: str) -> float:
    for entry in _metric_values(snapshot, name):
        if not entry.get("labels"):
            return float(entry.get("value", 0.0))
    return 0.0


def tenant_rows(
    snapshot: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    interval: float = 2.0,
) -> List[Dict[str, Any]]:
    """Per-tenant rows from the ``pash_job_seconds`` histogram entries.

    Throughput is the count delta against ``previous`` (the last refresh's
    snapshot) divided by the refresh interval; 0.0 on the first frame.
    """
    earlier: Dict[str, float] = {}
    for entry in _metric_values(previous or {}, "pash_job_seconds"):
        earlier[entry.get("labels", {}).get("tenant", "")] = float(
            entry.get("count", 0)
        )
    rows = []
    for entry in _metric_values(snapshot, "pash_job_seconds"):
        tenant = entry.get("labels", {}).get("tenant", "")
        count = float(entry.get("count", 0))
        delta = max(0.0, count - earlier.get(tenant, 0.0))
        rows.append(
            {
                "tenant": tenant,
                "jobs": int(count),
                "rate": delta / interval if interval > 0 else 0.0,
                "p50": float(entry.get("p50", 0.0)),
                "p99": float(entry.get("p99", 0.0)),
            }
        )
    rows.sort(key=lambda row: (-row["jobs"], row["tenant"]))
    return rows


def render_frame(
    stats: Dict[str, Any],
    snapshot: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    interval: float = 2.0,
) -> str:
    """One dashboard frame from a STATS payload and a registry snapshot."""
    jobs = stats.get("jobs") or {}
    cache = stats.get("plan_cache") or {}
    lookups = cache.get("hits", 0) + cache.get("misses", 0) + cache.get(
        "negative_hits", 0
    )
    hit_rate = (
        100.0 * (cache.get("hits", 0) + cache.get("negative_hits", 0)) / lookups
        if lookups
        else 0.0
    )
    lines = [
        f"pash-top — {stats.get('endpoint') or '(not started)'}   "
        f"up {_fmt_uptime(stats.get('uptime_seconds', 0.0))}",
        "",
        f"queue depth {stats.get('queue_depth', 0)}   "
        f"executors {stats.get('executors', 0)}   "
        f"jobs: {jobs.get('completed', 0)} done / "
        f"{jobs.get('failed', 0)} failed / "
        f"{jobs.get('cancelled', 0)} cancelled",
        f"plan cache: {cache.get('hits', 0)} hits, "
        f"{cache.get('misses', 0)} misses "
        f"({hit_rate:.0f}% hit rate, {cache.get('entries', 0)} entries, "
        f"{cache.get('disk_hits', 0)} disk hits)",
    ]
    pool = stats.get("pool")
    if pool:
        lines.append(
            f"pool: {pool.get('workers', 0)} workers "
            f"({pool.get('idle', 0)} idle / {pool.get('busy', 0)} busy), "
            f"{pool.get('processes_spawned', 0)} spawned, "
            f"{pool.get('tasks_reused', 0)} reuses, "
            f"{pool.get('workers_replaced', 0)} replaced"
        )
    sampler = stats.get("sampler")
    if sampler:
        lines.append(
            f"tracing: ratio {sampler.get('ratio', 1.0):g} "
            f"({sampler.get('sampled', 0)} sampled / "
            f"{sampler.get('skipped', 0)} skipped), "
            f"{(stats.get('trace') or {}).get('spans', 0)} spans retained"
        )
    rows = tenant_rows(snapshot, previous, interval)
    lines.append("")
    lines.append(
        f"{'TENANT':<16} {'JOBS':>6} {'JOBS/S':>8} {'P50':>10} {'P99':>10}"
    )
    if rows:
        for row in rows:
            lines.append(
                f"{row['tenant']:<16.16} {row['jobs']:>6d} "
                f"{row['rate']:>8.2f} {_fmt_seconds(row['p50']):>10} "
                f"{_fmt_seconds(row['p99']):>10}"
            )
    else:
        lines.append("(no jobs observed yet)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The pash-top entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pash-top", description="Live terminal view of a running pash-serve."
    )
    parser.add_argument(
        "--connect", default="127.0.0.1:7070", help="daemon address (HOST:PORT)"
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh every N seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit (no ANSI)"
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    arguments = build_parser().parse_args(argv)
    client = ServiceClient(arguments.connect, timeout=10.0)
    previous: Optional[Dict[str, Any]] = None
    try:
        while True:
            try:
                stats = client.stats()
                snapshot = client.metrics()["snapshot"]
            except ServiceError as error:
                print(f"pash-top: {error}", file=sys.stderr)
                return 2
            frame = render_frame(
                stats, snapshot, previous, interval=arguments.interval
            )
            if arguments.once:
                sys.stdout.write(frame)
                return 0
            sys.stdout.write(_CLEAR + frame)
            sys.stdout.flush()
            previous = snapshot
            time.sleep(max(0.1, arguments.interval))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    sys.exit(main())
