"""Seedable fault injection: named points, a deterministic plan, one injector.

Every layer that can fail in production exposes a **named fault point**:

==================== =======================================================
``pool:worker-exec`` start of a pool/cluster worker's task execution
``spill:write``      an engine-side spill write (SpillBuffer, ReportSink,
                     cluster edge store) — *not* the interpreter's eager
                     buffer, so degraded runs always land on clean ground
``cluster:heartbeat`` a cluster worker's periodic heartbeat send
``service:executor`` start of a service-daemon job execution attempt
``channel:read``     each chunk read off an engine channel (byte-counted)
==================== =======================================================

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus a seed.
Specs are frozen dataclasses so they can live inside the (hashable)
``PashConfig``.  The plan is deterministic under its seed: per-spec byte and
fire counters advance in call order, and probabilistic specs draw from
``random.Random(seed)``, so a chaos run replays exactly.

The plan travels three ways:

* **in-process** sites consult the module-global injector
  (:func:`install` / :func:`fire`);
* **pool workers** receive it as the picklable ``faults`` field of their
  ``WorkerPlan`` (unpickling resets counters — fault state is per-process);
* **cluster workers** (separate executables) read the ``PASH_FAULTS``
  environment variable at startup (:func:`install_from_environ`).

This replaces the ad-hoc SIGKILL / corrupt-file rigs from the scheduler and
cluster test suites with one shared, reproducible harness.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

POOL_WORKER_EXEC = "pool:worker-exec"
SPILL_WRITE = "spill:write"
CLUSTER_HEARTBEAT = "cluster:heartbeat"
SERVICE_EXECUTOR = "service:executor"
CHANNEL_READ = "channel:read"

FAULT_POINTS = (
    POOL_WORKER_EXEC,
    SPILL_WRITE,
    CLUSTER_HEARTBEAT,
    SERVICE_EXECUTOR,
    CHANNEL_READ,
)

MODE_KILL = "kill"  # SIGKILL the current process (worker crash)
MODE_ERROR = "error"  # raise OSError(errno_name) at the point
MODE_DELAY = "delay"  # sleep delay_seconds (slow disk / slow peer)
MODE_DROP = "drop"  # tell the site to skip its action (lost frame)

FAULT_MODES = (MODE_KILL, MODE_ERROR, MODE_DELAY, MODE_DROP)

#: Environment variable carrying a JSON fault plan into exec'd workers.
ENV_FAULTS = "PASH_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, how, and when it triggers."""

    point: str
    mode: str = MODE_ERROR
    #: Fire only once this many bytes have passed the point (kill-after-N).
    after_bytes: int = 0
    #: How many times this spec may fire; 0 means unlimited.
    max_fires: int = 1
    #: Seeded-random chance of firing per eligible passage.
    probability: float = 1.0
    #: For ``mode="error"``: which errno the injected OSError carries.
    errno_name: str = "ENOSPC"
    #: For ``mode="delay"``: how long the point stalls.
    delay_seconds: float = 0.01

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected one of {FAULT_POINTS}"
            )
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        if not hasattr(_errno, self.errno_name):
            raise ValueError(f"unknown errno name {self.errno_name!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("FaultSpec probability must be within [0, 1]")
        if self.after_bytes < 0 or self.max_fires < 0 or self.delay_seconds < 0:
            raise ValueError("FaultSpec counters must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "mode": self.mode,
            "after_bytes": self.after_bytes,
            "max_fires": self.max_fires,
            "probability": self.probability,
            "errno_name": self.errno_name,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(values, Mapping):
            raise ValueError(f"a fault spec must be a mapping, got {type(values).__name__}")
        known = {field.name for field in dataclass_fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**dict(values))


class _SpecState:
    __slots__ = ("bytes_seen", "fires")

    def __init__(self) -> None:
        self.bytes_seen = 0
        self.fires = 0


class FaultPlan:
    """A seeded, deterministic set of faults plus per-spec live counters."""

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.faults: Tuple[FaultSpec, ...] = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in faults
        )
        self.seed = seed
        #: Total hook passages while this plan was installed (all points).
        self.hits = 0
        #: Total faults actually triggered.
        self.fired = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._states = [_SpecState() for _ in self.faults]
        self._by_point: Dict[str, List[int]] = {}
        for index, spec in enumerate(self.faults):
            self._by_point.setdefault(spec.point, []).append(index)

    def __reduce__(self):
        # A worker's copy starts pristine: fault state is per-process, so a
        # plan that already fired in the parent re-arms on every dispatch.
        return (FaultPlan, (self.faults, self.seed))

    # ------------------------------------------------------------------

    def fire(self, point: str, nbytes: int = 0) -> bool:
        """Advance counters at ``point``; acts out any fault that triggers.

        Returns ``True`` when a ``drop``-mode fault fired — the caller must
        then skip its action (e.g. swallow the heartbeat).  ``error``-mode
        faults raise ``OSError`` here; ``kill`` never returns.
        """
        self.hits += 1
        indexes = self._by_point.get(point)
        if not indexes:
            return False
        drop = False
        delay = 0.0
        with self._lock:
            for index in indexes:
                spec = self.faults[index]
                state = self._states[index]
                state.bytes_seen += nbytes
                if spec.max_fires and state.fires >= spec.max_fires:
                    continue
                if state.bytes_seen < spec.after_bytes:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                state.fires += 1
                self.fired += 1
                if spec.mode == MODE_KILL:
                    os.kill(os.getpid(), signal.SIGKILL)
                elif spec.mode == MODE_ERROR:
                    code = getattr(_errno, spec.errno_name)
                    raise OSError(code, f"injected fault at {point}")
                elif spec.mode == MODE_DELAY:
                    delay += spec.delay_seconds
                else:
                    drop = True
        if delay:
            time.sleep(delay)
        return drop

    def fires_at(self, point: str) -> int:
        """How many times faults at ``point`` have triggered so far."""
        with self._lock:
            return sum(
                self._states[index].fires
                for index in self._by_point.get(point, ())
            )

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(values, Mapping):
            raise ValueError(f"a fault plan must be a mapping, got {type(values).__name__}")
        unknown = set(values) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        faults = [FaultSpec.from_dict(spec) for spec in values.get("faults", ())]
        return cls(faults, seed=int(values.get("seed", 0)))


def load_fault_file(path: str) -> FaultPlan:
    """Parse a ``--fault-plan`` JSON file: ``{"seed": N, "faults": [...]}``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return FaultPlan.from_dict(payload)


# ---------------------------------------------------------------------------
# The process-global injector
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process's active fault plan (None to disable)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    install(None)


def active() -> Optional[FaultPlan]:
    return _ACTIVE


def fire(point: str, nbytes: int = 0) -> bool:
    """The hook every fault point calls.

    With no plan installed this is one global load and a ``None`` check —
    cheap enough for per-chunk call sites (see
    ``benchmarks/test_bench_resilience_overhead.py``).
    """
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.fire(point, nbytes)


def install_from_environ(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Install the plan serialized in ``PASH_FAULTS``, if any.

    Called by ``pash-worker`` at startup so chaos tests can reach fault
    points inside separately exec'd cluster workers.
    """
    payload = (environ if environ is not None else os.environ).get(ENV_FAULTS)
    if not payload:
        return None
    plan = FaultPlan.from_dict(json.loads(payload))
    install(plan)
    return plan
