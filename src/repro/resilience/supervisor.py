"""The retry-then-degrade ladder shared by all execution tiers.

One :class:`Supervisor` guards one run (a compiled script, a JIT region, a
service job).  Its ladder:

1. **attempt** — run the parallel/cluster/jit plan;
2. **retry** — on a retryable failure (``ExecutionError`` from a crashed or
   wedged worker, ``ResourceExhausted``/``OSError`` from a full disk), back
   off per the :class:`~repro.resilience.retry.RetryPolicy` and try again,
   up to ``max_retries`` times and within ``deadline_seconds``;
3. **degrade** — when retries are exhausted and degradation is enabled, run
   the caller-supplied fallback (always the sequential interpreter, whose
   byte-identity with the plan is the paper's core correctness contract).

Every rung is observable: retries emit ``resilience:retry`` spans (the span
covers the backoff sleep), degradations emit ``resilience:degrade`` spans
(covering the fallback run, so the interpreter's work nests under it), and
the counters land in ``EngineMetrics.runs_retried`` / ``degraded_runs``.

The supervisor is deliberately duck-typed on the config: anything with
``retry_policy()``, ``degrade``, and ``fault_seed`` works, which keeps this
package free of ``repro.api`` imports (``api.config`` imports us).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional, Tuple

from repro.obs.metrics import counter_inc
from repro.obs.tracer import NULL_TRACER


def _default_retryable() -> Tuple[type, ...]:
    # Imported lazily: runtime.executor pulls in half the package and the
    # supervisor must stay importable from api.config.
    from repro.runtime.executor import ExecutionError

    return (ExecutionError, OSError)


def _describe(exc: BaseException) -> str:
    text = f"{type(exc).__name__}: {exc}"
    return text if len(text) <= 200 else text[:197] + "..."


class Supervisor:
    """Runs attempts under one ResilienceConfig, accumulating counters."""

    def __init__(
        self,
        resilience: Any,
        tracer: Any = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.resilience = resilience
        self.policy = resilience.retry_policy()
        self.tracer = tracer or NULL_TRACER
        # Backoff jitter shares the fault seed so a chaos run's timing
        # decisions replay with its faults.
        self._rng = rng or random.Random(getattr(resilience, "fault_seed", 0))
        self.runs_retried = 0
        self.degraded_runs = 0

    def run(
        self,
        target: str,
        attempt: Callable[[], Any],
        degrade: Optional[Callable[[], Any]] = None,
        retryable: Optional[Any] = None,
    ) -> Any:
        """Run ``attempt`` up the ladder; the last error propagates typed.

        ``degrade`` is the interpreter fallback; pass ``None`` when the
        attempt already *is* the interpreter.  Errors raised by the fallback
        itself are terminal — there is no lower rung.
        """
        if retryable is None:
            retryable = _default_retryable()
        started = time.monotonic()
        retries = 0
        while True:
            try:
                return attempt()
            except retryable as exc:
                delay = self.policy.backoff_seconds(retries, self._rng)
                elapsed = time.monotonic() - started
                if self.policy.allows_retry(retries, elapsed + delay):
                    retries += 1
                    self.runs_retried += 1
                    counter_inc(
                        "pash_runs_retried_total",
                        1,
                        "Supervised run attempts retried after a fault.",
                    )
                    with self.tracer.span(
                        "resilience:retry",
                        "resilience",
                        target=target,
                        attempt=retries,
                        delay_seconds=round(delay, 4),
                        error=_describe(exc),
                    ):
                        time.sleep(delay)
                    continue
                if degrade is not None and self.resilience.degrade:
                    self.degraded_runs += 1
                    counter_inc(
                        "pash_degraded_runs_total",
                        1,
                        "Runs degraded to the interpreter after retries ran out.",
                    )
                    with self.tracer.span(
                        "resilience:degrade",
                        "resilience",
                        target=target,
                        retries=retries,
                        error=_describe(exc),
                    ):
                        return degrade()
                raise
