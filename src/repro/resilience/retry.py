"""``RetryPolicy`` — bounded retries, exponential backoff + jitter, deadline.

One policy object serves every retry loop in the tree: the supervision
ladder around engine runs, ``ServiceClient``'s unreachable-daemon window,
and ``pash-worker``'s coordinator reconnect.  All of them used to hand-roll
fixed-interval sleeps; now they share the same backoff math, so a thundering
herd of reconnecting clients spreads out instead of hammering in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Union

Retryable = Union[type, Tuple[type, ...], Callable[[BaseException], bool]]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to wait, and when to give up."""

    #: Retries after the first attempt; ``None`` = bounded by deadline only.
    max_retries: Optional[int] = 2
    base_seconds: float = 0.05
    max_seconds: float = 2.0
    multiplier: float = 2.0
    #: Symmetric jitter fraction: a delay ``d`` lands in ``[d*(1-j), d*(1+j)]``.
    jitter: float = 0.5
    #: Overall wall-clock budget across all attempts; 0 = unbounded.
    deadline_seconds: float = 0.0

    def backoff_seconds(
        self, retries_done: int, rng: Optional[random.Random] = None
    ) -> float:
        """The sleep before retry number ``retries_done + 1``."""
        delay = min(
            self.max_seconds, self.base_seconds * (self.multiplier ** retries_done)
        )
        if self.jitter > 0.0:
            draw = (rng or random).random()
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return max(0.0, delay)

    def allows_retry(self, retries_done: int, elapsed_seconds: float) -> bool:
        """May another attempt start after ``retries_done`` retries?

        ``elapsed_seconds`` should include the backoff about to be slept, so
        a retry that could only *begin* past the deadline is refused now
        instead of hanging the caller.
        """
        if self.max_retries is not None and retries_done >= self.max_retries:
            return False
        if self.deadline_seconds > 0.0 and elapsed_seconds >= self.deadline_seconds:
            return False
        return True


def _matches(retryable: Retryable, exc: BaseException) -> bool:
    if isinstance(retryable, (type, tuple)):
        return isinstance(exc, retryable)
    return bool(retryable(exc))


def retry_call(
    operation: Callable[[], Any],
    policy: RetryPolicy,
    retryable: Retryable = (OSError,),
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    monotonic: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> Any:
    """Call ``operation`` under ``policy``; re-raise the last error.

    ``retryable`` is an exception class, a tuple of them, or a predicate on
    the caught exception.  ``on_retry(retries_done, exc, delay)`` fires
    before each backoff sleep (for logging or span emission).
    """
    started = monotonic()
    retries = 0
    while True:
        try:
            return operation()
        except Exception as exc:
            if not _matches(retryable, exc):
                raise
            delay = policy.backoff_seconds(retries, rng)
            if not policy.allows_retry(retries, monotonic() - started + delay):
                raise
            if on_retry is not None:
                on_retry(retries, exc, delay)
            sleep(delay)
            retries += 1
