"""Typed capacity errors shared by every spill and buffer write site.

PaSh's data plane spills to disk in four places — the engine's
:class:`~repro.engine.channels.SpillBuffer`, the worker-side
``ReportSink``, the interpreter's :class:`~repro.runtime.eager.EagerBuffer`,
and the cluster coordinator's edge store.  Before this module each of them
surfaced ``ENOSPC`` as a bare ``OSError`` traceback deep inside a worker
process.  Now they all raise :class:`ResourceExhausted`, which names the
operation, the path, and the byte count — and which the supervision layer
treats as retryable, because the sequential interpreter (which holds its
intermediates in memory) can still complete a run that cannot spill.
"""

from __future__ import annotations

import errno as _errno
from typing import Optional

#: Errnos that mean "the machine ran out of a finite resource" — disk
#: space, quota, or file descriptors — as opposed to a plain I/O failure.
#: Only these are classified into :class:`ResourceExhausted`; anything else
#: (EIO, EPERM, ...) keeps its original type and is not retried.
RESOURCE_ERRNOS = frozenset(
    code
    for code in (
        getattr(_errno, "ENOSPC", None),
        getattr(_errno, "EDQUOT", None),
        getattr(_errno, "EMFILE", None),
        getattr(_errno, "ENFILE", None),
    )
    if code is not None
)


class ResourceExhausted(OSError):
    """A spill or buffer write hit a capacity limit (ENOSPC/EMFILE/...)."""

    def __init__(
        self,
        operation: str,
        path: Optional[str],
        byte_count: int,
        errno_value: int,
        detail: str = "",
    ) -> None:
        self.operation = operation
        self.path = path
        self.byte_count = byte_count
        name = _errno.errorcode.get(errno_value, str(errno_value))
        where = f" to {path}" if path else ""
        message = (
            f"{operation}{where} ({byte_count} bytes) exhausted a resource"
            f" [{name}]" + (f": {detail}" if detail else "")
        )
        super().__init__(errno_value, message)

    def __reduce__(self):
        # OSError's default reduce would replay ``args`` into our custom
        # __init__ with the wrong arity; rebuild from the typed fields so
        # the error survives a multiprocessing boundary intact.
        return (
            ResourceExhausted,
            (self.operation, self.path, self.byte_count, self.errno),
        )

    def __str__(self) -> str:
        return self.args[1] if len(self.args) > 1 else super().__str__()


def wrap_capacity_error(
    exc: OSError, operation: str, path: Optional[str], byte_count: int
) -> OSError:
    """Classify a write failure: the typed error for capacity errnos.

    Usage at a spill site::

        try:
            self._file.write(chunk)
        except OSError as exc:
            raise wrap_capacity_error(exc, "spill:write", path, len(chunk)) from exc

    Non-capacity errors come back unchanged, so the ``raise`` re-raises the
    original exception (chained to itself, which Python elides).
    """
    if isinstance(exc, ResourceExhausted):
        return exc
    if exc.errno in RESOURCE_ERRNOS:
        return ResourceExhausted(
            operation, path, byte_count, exc.errno, detail=exc.strerror or ""
        )
    return exc
