"""Resilience tier: fault injection, supervised retry, degrade-to-interpreter.

The paper's safety contract — the optimized parallel plan is byte-identical
to sequential execution — makes the interpreter an always-correct fallback.
This package turns that contract into runtime robustness:

* :mod:`repro.resilience.fault` — named fault points and the seedable
  :class:`FaultPlan` injector (chaos runs that replay);
* :mod:`repro.resilience.retry` — the shared :class:`RetryPolicy`
  (exponential backoff + jitter + deadline);
* :mod:`repro.resilience.supervisor` — the retry-then-degrade ladder;
* :mod:`repro.resilience.errors` — typed :class:`ResourceExhausted` for
  capacity failures at spill sites.

Configured via ``PashConfig.resilience``; see ``docs/RESILIENCE.md``.
"""

from repro.resilience.errors import (
    RESOURCE_ERRNOS,
    ResourceExhausted,
    wrap_capacity_error,
)
from repro.resilience.fault import (
    CHANNEL_READ,
    CLUSTER_HEARTBEAT,
    ENV_FAULTS,
    FAULT_MODES,
    FAULT_POINTS,
    POOL_WORKER_EXEC,
    SERVICE_EXECUTOR,
    SPILL_WRITE,
    FaultPlan,
    FaultSpec,
    load_fault_file,
)
from repro.resilience.retry import RetryPolicy, retry_call
from repro.resilience.supervisor import Supervisor

__all__ = [
    "RESOURCE_ERRNOS",
    "ResourceExhausted",
    "wrap_capacity_error",
    "CHANNEL_READ",
    "CLUSTER_HEARTBEAT",
    "ENV_FAULTS",
    "FAULT_MODES",
    "FAULT_POINTS",
    "POOL_WORKER_EXEC",
    "SERVICE_EXECUTOR",
    "SPILL_WRITE",
    "FaultPlan",
    "FaultSpec",
    "load_fault_file",
    "RetryPolicy",
    "retry_call",
    "Supervisor",
]
