"""``repro.obs`` — the tracing + metrics observability plane.

One :class:`Tracer` threads through every layer of a run — parse, optimizer
passes, JIT decisions, scheduler phases, pool/fork workers — recording
pickle-safe :class:`SpanRecord`\\ s that exporters turn into a Chrome
``trace_event`` JSON (Perfetto-loadable), a flat JSONL span log, or a merged
machine-readable :class:`RunReport`.  Off by default and near-free when off:
see ``docs/OBSERVABILITY.md``.

The *continuous* half (new with the service tier): a process-wide
:class:`MetricsRegistry` of counters/gauges/bounded histograms that every
layer increments via the module hooks, exposed as Prometheus text
(:func:`prometheus_text`, :class:`MetricsServer`), a JSONL
:class:`EventLog`, and the live ``pash-top`` console.  :class:`TraceSampler`
plus the tracer's ``max_spans`` ring buffer keep tracing viable forever in
a daemon.
"""

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    span_summary,
)
from repro.obs.expose import (
    EVENT_SCHEMA,
    NULL_EVENTS,
    EventLog,
    MetricsServer,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    active,
    counter_inc,
    gauge_set,
    histogram_observe,
    install,
    record_engine_run,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport
from repro.obs.sampler import TraceSampler
from repro.obs.tracer import (
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
    new_span_id,
    record_worker_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_SCHEMA",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_EVENTS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "SpanRecord",
    "TraceContext",
    "TraceSampler",
    "Tracer",
    "active",
    "chrome_trace_document",
    "chrome_trace_events",
    "counter_inc",
    "export_chrome_trace",
    "export_jsonl",
    "gauge_set",
    "histogram_observe",
    "install",
    "new_span_id",
    "prometheus_text",
    "record_engine_run",
    "record_worker_span",
    "span_summary",
]
