"""``repro.obs`` — the tracing + metrics observability plane.

One :class:`Tracer` threads through every layer of a run — parse, optimizer
passes, JIT decisions, scheduler phases, pool/fork workers — recording
pickle-safe :class:`SpanRecord`\\ s that exporters turn into a Chrome
``trace_event`` JSON (Perfetto-loadable), a flat JSONL span log, or a merged
machine-readable :class:`RunReport`.  Off by default and near-free when off:
see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
    span_summary,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport
from repro.obs.tracer import (
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
    new_span_id,
    record_worker_span,
)

__all__ = [
    "NULL_TRACER",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "chrome_trace_document",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_jsonl",
    "new_span_id",
    "record_worker_span",
    "span_summary",
]
