"""Exposing the metrics registry: Prometheus text, HTTP, and JSONL events.

Three continuous-telemetry surfaces over one
:class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples; histograms as cumulative ``_bucket``
  series plus ``_sum``/``_count``).  ``tools/check_metrics.py`` lints the
  output structurally in CI.
* :class:`MetricsServer` — an opt-in stdlib HTTP endpoint serving
  ``GET /metrics`` from a daemon thread (``pash-serve --metrics-port``).
  Loopback-guarded exactly like the service socket: the endpoint leaks
  operational detail (tenants, rates, cache behaviour), so binding a
  non-loopback host requires the same explicit ``allow_remote`` opt-in.
* :class:`EventLog` — a schema-stable JSONL log of *discrete occurrences*
  (job admitted/finished, degrade, daemon lifecycle), the complement of the
  registry's continuous aggregates.  One JSON object per line, flushed per
  event, so ``tail -f`` and log shippers see records immediately.
"""

from __future__ import annotations

import ipaddress
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "MetricsServer",
    "NULL_EVENTS",
    "prometheus_text",
]

#: Content type of the text exposition format (what Prometheus sends in
#: its Accept header and expects back).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))

def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Families appear sorted by name, each with its ``# HELP`` and ``# TYPE``
    header once, then one sample line per (labelset[, bucket]).  Histograms
    are exposed the standard way: cumulative ``<name>_bucket{le="…"}``
    series ending in ``le="+Inf"``, plus ``<name>_sum`` and
    ``<name>_count``.
    """
    lines = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.children():
            labels = _labels_text(family.label_names, label_values)
            if family.kind == "histogram":
                cumulative = 0
                counts = child.bucket_counts()
                for bound, count in zip(family.buckets, counts):
                    cumulative += count
                    bucket_labels = _labels_text(
                        family.label_names,
                        label_values,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {cumulative}"
                    )
                cumulative += counts[-1] if len(counts) > len(family.buckets) else 0
                inf_labels = _labels_text(
                    family.label_names, label_values, extra='le="+Inf"'
                )
                lines.append(f"{family.name}_bucket{inf_labels} {cumulative}")
                lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# The HTTP endpoint
# ---------------------------------------------------------------------------


def _is_loopback_host(host: str) -> bool:
    """Mirror of the service tier's loopback test (obs must not import it:
    the service layer imports obs)."""
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


class MetricsServer:
    """``GET /metrics`` over stdlib :class:`ThreadingHTTPServer`.

    Binds ``host:port`` (port 0 = ephemeral, for tests) and serves from a
    daemon thread; :meth:`stop` shuts it down idempotently.  Refuses a
    non-loopback host unless ``allow_remote`` — the same trust model as
    ``pash-serve --listen``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_remote: bool = False,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.allow_remote = allow_remote
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (known after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("metrics server is not started")
        return self._server.server_address[1]

    def start(self) -> None:
        if not _is_loopback_host(self.host) and not self.allow_remote:
            raise ValueError(
                f"refusing to expose metrics on non-loopback address "
                f"{self.host!r}: the endpoint reveals tenants, rates, and "
                "cache behaviour; pass allow_remote=True (--allow-remote) "
                "only on a trusted network"
            )
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                body = prometheus_text(registry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                return None  # scrapes are high-frequency; stay quiet

        self._server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="pash-metrics-http", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


# ---------------------------------------------------------------------------
# The JSONL event log
# ---------------------------------------------------------------------------

#: Bumped on any incompatible change to the per-line record shape.
EVENT_SCHEMA = 1


class EventLog:
    """Append-only JSONL log of discrete telemetry events.

    Each line is one JSON object::

        {"schema": 1, "ts_us": <int>, "event": "<kind>", ...fields}

    ``schema`` and ``ts_us`` (wall-clock microseconds, the tracer's
    timeline) are reserved; every other field comes from the emitter.
    Thread-safe, one flushed write per event; emission failures are
    swallowed after the first (telemetry must never take the daemon down
    with a full disk).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.enabled = True
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self._broken = False

    def emit(self, event: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "ts_us": time.time_ns() // 1_000,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            if self._broken:
                return
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                self._broken = True

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except OSError:
                pass
            self._broken = True


class _NullEventLog:
    """The shared disabled event log (no file, no locks, no allocation)."""

    __slots__ = ()
    enabled = False
    path = None

    def emit(self, event: str, **fields: Any) -> None:
        return None

    def close(self) -> None:
        return None


NULL_EVENTS = _NullEventLog()
