"""``TraceSampler`` — keep tracing on forever without drowning in spans.

Per-run tracing (PR 6) records everything, which is right for one CLI
invocation and wrong for a daemon serving millions of submissions: at
sustained traffic, recording every span of every job costs memory and
export volume proportional to uptime.  The sampler makes tracing
production-viable by deciding *per job* whether its spans are recorded:

* **ratio sampling** — record a deterministic, seeded fraction of jobs
  (``trace_sample_ratio``).  Deterministic means reproducible: the same
  seed yields the same admit/skip sequence, so a test (or an incident
  replay) sees the same sampled population every time.
* **per-tenant overrides** — tenants in ``sample_tenants`` are *always*
  traced regardless of the ratio, the knob an operator flips while
  debugging one tenant's latency without paying for the other millions.

The other half of "tracing can stay on forever" is span *retention*: the
daemon's tracer can be constructed with ``max_spans`` (a ring buffer —
see :class:`~repro.obs.tracer.Tracer`), so even the sampled spans occupy
bounded memory.  Both knobs live in
:class:`~repro.api.config.ObsConfig`, which — like ``ResilienceConfig`` —
is excluded from the plan-cache digest: sampling never changes what a
compilation produces.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Iterable, Optional, Tuple

__all__ = ["TraceSampler"]


class TraceSampler:
    """Decides, per job, whether spans are recorded (see module docstring).

    Thread-safe: the daemon consults it from concurrent executor threads,
    and ``random.Random`` is not documented safe under concurrent calls, so
    draws are serialized under a lock (one lock acquisition per *job*, not
    per span — sampling is far off any hot path).
    """

    def __init__(
        self,
        ratio: float = 1.0,
        seed: int = 0,
        sample_tenants: Iterable[str] = (),
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"sample ratio must be in [0, 1], got {ratio}")
        self.ratio = ratio
        self.seed = seed
        self.sample_tenants: Tuple[str, ...] = tuple(sample_tenants)
        self._always = frozenset(self.sample_tenants)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        #: Lifetime decision counters (surfaced in daemon stats).
        self.sampled = 0
        self.skipped = 0

    @classmethod
    def from_config(cls, obs_config: Any) -> "TraceSampler":
        """Build from an :class:`~repro.api.config.ObsConfig` (duck-typed)."""
        return cls(
            ratio=getattr(obs_config, "trace_sample_ratio", 1.0),
            seed=getattr(obs_config, "trace_sample_seed", 0),
            sample_tenants=getattr(obs_config, "sample_tenants", ()),
        )

    def should_sample(self, tenant: Optional[str] = None) -> bool:
        """True when this job's spans should be recorded.

        The ratio draw happens (and advances the seeded sequence) only when
        the ratio is fractional — 0.0 and 1.0 short-circuit, so an
        always-on or always-off sampler costs one comparison and stays
        deterministic trivially.
        """
        if tenant is not None and tenant in self._always:
            decision = True
        elif self.ratio >= 1.0:
            decision = True
        elif self.ratio <= 0.0:
            decision = False
        else:
            with self._lock:
                decision = self._random.random() < self.ratio
        with self._lock:
            if decision:
                self.sampled += 1
            else:
                self.skipped += 1
        return decision
