"""``MetricsRegistry`` — continuous counters, gauges, and histograms.

The tracing plane (:mod:`repro.obs.tracer`) answers *"what happened inside
one run?"*; this module answers the daemon-era question *"what is happening
per second, right now, and how has it trended since start-up?"*.  A
long-running ``pash-serve`` or cluster coordinator owns one process-wide
:class:`MetricsRegistry`; every layer underneath it — scheduler, worker
pool, plan cache, cluster coordinator, resilience supervisor — increments
named instruments that Prometheus can scrape (:mod:`repro.obs.expose`) and
``pash-top`` can render live.

Design constraints, mirroring the tracer's:

* **near-zero cost when off.**  Metrics default to disabled.  A disabled
  registry's :meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram``
  return shared null singletons whose methods do nothing, and the
  module-level convenience hooks (:func:`counter_inc` …) check one
  ``enabled`` attribute and return — no allocation, no lock, no dict
  lookup.  ``benchmarks/test_bench_metrics_overhead.py`` prices this.
* **exact under contention.**  Python's ``+=`` on an attribute is *not*
  atomic (the GIL can switch threads between the load and the store), so
  every instrument child guards its state with its own lock.  The service
  daemon's job counters hammer these from N executor threads; the
  registry's correctness test does too.
* **bounded memory.**  Histograms are fixed-bucket (Prometheus-style):
  observing a million latencies costs the same few dozen integers as
  observing ten.  Quantiles (p50/p95/p99) are estimated by linear
  interpolation inside the owning bucket, so their relative error is
  bounded by the bucket spacing — asserted against a sorted-list oracle in
  ``tests/obs/test_metrics_registry.py``.

Wiring idiom (the fault-injection plane's): the process-wide registry is
reached through :func:`install` / :func:`active`.  ``pash-serve`` installs
its (always-enabled) registry at start-up; every instrumented layer calls
the module-level hooks, which no-op against the default
:data:`NULL_REGISTRY` in ordinary one-shot CLI runs.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "active",
    "counter_inc",
    "gauge_set",
    "histogram_observe",
    "install",
    "record_engine_run",
]

#: Prometheus metric- and label-name legality (no leading ``__`` for labels).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds): geometric with ratio
#: 1.25 from 1 ms to ~10 min.  The ~25% spacing bounds the quantile
#: estimation error; 60-odd buckets keep a child at a few hundred bytes.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(0.001 * (1.25 ** exponent), 9) for exponent in range(60)
)


class MetricError(ValueError):
    """A misused instrument: bad name, label mismatch, re-typed metric."""


def _validate_labels(declared: Tuple[str, ...], given: Mapping[str, str]) -> Tuple[str, ...]:
    """The label *values* in declared order; raises on any key mismatch."""
    if set(given) != set(declared):
        raise MetricError(
            f"labels {sorted(given)} do not match declared {sorted(declared)}"
        )
    return tuple(str(given[name]) for name in declared)


# ---------------------------------------------------------------------------
# Instrument children — the lock-guarded leaves every increment lands on
# ---------------------------------------------------------------------------


class CounterChild:
    """One (metric, labelset) monotonic counter.  Thread-safe and exact."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild:
    """One (metric, labelset) gauge: set/inc/dec, or a collect-time callback."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at collect time instead of storing a value
        (queue depths and pool sizes are owned elsewhere; polling them at
        scrape time beats write-through hooks on every transition)."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        try:
            return float(function())
        except Exception:  # noqa: BLE001 - a scrape must never raise
            return 0.0


class HistogramChild:
    """One (metric, labelset) fixed-bucket histogram with quantile estimates."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        #: One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; the exposition cumulates."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by in-bucket interpolation.

        The estimate is exact to within one bucket: the true value lies in
        the same bucket, so the relative error is bounded by the bucket
        spacing (~25% with :data:`DEFAULT_BUCKETS`).  Returns 0.0 when
        nothing has been observed.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else math.inf
                )
                lower = self._bounds[index - 1] if index > 0 else 0.0
                if math.isinf(upper):
                    return lower  # overflow bucket: the bound is all we know
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self._bounds[-1] if self._bounds else 0.0

    def quantiles(self) -> Dict[str, float]:
        """The dashboard trio: p50/p95/p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


# ---------------------------------------------------------------------------
# Instrument families — name + help + declared labels, children per labelset
# ---------------------------------------------------------------------------


class _Family:
    """Shared family logic: child management keyed on label values."""

    kind = "untyped"
    _child_class: type = CounterChild

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        return self._child_class()

    def labels(self, **labels: str) -> Any:
        """The child for one labelset (created on first use)."""
        values = _validate_labels(self.label_names, labels)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
            return child

    def _default_child(self) -> Any:
        if self.label_names:
            raise MetricError(
                f"{self.name} declares labels {self.label_names}; call .labels()"
            )
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._make_child()
                self._children[()] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class Counter(_Family):
    """A monotonically increasing family (``*_total`` by convention)."""

    kind = "counter"
    _child_class = CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Family):
    """A family of values that can go up and down (or be polled)."""

    kind = "gauge"
    _child_class = GaugeChild

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default_child().set_function(function)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Family):
    """A family of bounded-memory distributions (latency, sizes…)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise MetricError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError("histogram bucket bounds must be strictly increasing")
        self.buckets = bounds
        super().__init__(name, help_text, label_names)

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_child().quantile(q)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


# ---------------------------------------------------------------------------
# The disabled path — shared null singletons, mirroring NULL_TRACER
# ---------------------------------------------------------------------------


class _NullInstrument:
    """One do-nothing handle standing in for every instrument type."""

    __slots__ = ()
    name = "null"
    help = ""
    label_names: Tuple[str, ...] = ()
    kind = "untyped"
    buckets: Tuple[float, ...] = ()

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def set_function(self, function: Callable[[], float]) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return []

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Every instrument of one process (or one daemon), by name.

    Registration is idempotent — asking for an existing name returns the
    existing family, so independent layers can share ``pash_pool_…``
    counters without coordination — but re-registering a name with a
    different type or label declaration raises :class:`MetricError` (the
    exposition would be ambiguous otherwise).

    ``enabled=False`` turns every registration into the shared
    :data:`NULL_INSTRUMENT` and every module-level hook into an attribute
    check — the zero-allocation disabled path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # -- registration --------------------------------------------------------

    def _register(
        self, name: str, factory: Callable[[], _Family], kind: str, labels: Tuple[str, ...]
    ) -> Any:
        if not _NAME_RE.match(name):
            raise MetricError(f"illegal metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"illegal label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != labels:
                    raise MetricError(
                        f"metric {name!r} already registered as {family.kind}"
                        f"{family.label_names}; cannot re-register as {kind}{labels}"
                    )
                return family
            family = factory()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        label_names = tuple(labels)
        return self._register(
            name, lambda: Counter(name, help_text, label_names), "counter", label_names
        )

    def gauge(self, name: str, help_text: str = "", labels: Iterable[str] = ()) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        label_names = tuple(labels)
        return self._register(
            name, lambda: Gauge(name, help_text, label_names), "gauge", label_names
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        label_names = tuple(labels)
        return self._register(
            name,
            lambda: Histogram(name, help_text, label_names, buckets=buckets),
            "histogram",
            label_names,
        )

    # -- collection ----------------------------------------------------------

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view of every instrument (the ``pash-top`` feed).

        Histogram entries carry ``count``/``sum`` plus estimated
        ``p50``/``p95``/``p99`` so consumers never need the raw buckets.
        """
        document: Dict[str, Any] = {}
        for family in self.families():
            values = []
            for label_values, child in family.children():
                entry: Dict[str, Any] = {
                    "labels": dict(zip(family.label_names, label_values))
                }
                if family.kind == "histogram":
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry.update(child.quantiles())
                else:
                    entry["value"] = child.value
                values.append(entry)
            document[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return document


#: The shared disabled registry: default for every layer until a daemon
#: installs a live one.  Mirrors :data:`repro.obs.tracer.NULL_TRACER`.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# ---------------------------------------------------------------------------
# The process-wide registry (the fault-injection plane's install idiom)
# ---------------------------------------------------------------------------

_ACTIVE: MetricsRegistry = NULL_REGISTRY


def install(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Make ``registry`` the process-wide registry; returns the previous one
    (``None`` restores the disabled default)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


def active() -> MetricsRegistry:
    """The process-wide registry (the disabled default until installed)."""
    return _ACTIVE


# -- hooks: what the instrumented layers actually call -----------------------
#
# Each hook is one global load + one attribute check when metrics are off.
# When on, the registration is an idempotent dict lookup — fine at the
# per-run / per-spawn / per-cache-op granularity every call site has.


def counter_inc(
    name: str, amount: float = 1.0, help_text: str = "", **labels: str
) -> None:
    registry = _ACTIVE
    if not registry.enabled:
        return
    counter = registry.counter(name, help_text, labels=tuple(sorted(labels)))
    if labels:
        counter.labels(**labels).inc(amount)
    else:
        counter.inc(amount)


def gauge_set(name: str, value: float, help_text: str = "", **labels: str) -> None:
    registry = _ACTIVE
    if not registry.enabled:
        return
    gauge = registry.gauge(name, help_text, labels=tuple(sorted(labels)))
    if labels:
        gauge.labels(**labels).set(value)
    else:
        gauge.set(value)


def histogram_observe(
    name: str, value: float, help_text: str = "", **labels: str
) -> None:
    registry = _ACTIVE
    if not registry.enabled:
        return
    histogram = registry.histogram(name, help_text, labels=tuple(sorted(labels)))
    if labels:
        histogram.labels(**labels).observe(value)
    else:
        histogram.observe(value)


def record_engine_run(metrics: Any, backend: str = "parallel") -> None:
    """Flush one finished run's :class:`~repro.engine.metrics.EngineMetrics`
    into the process registry (one call per run, from the scheduler and the
    cluster backend).  A no-op against the disabled default registry."""
    registry = _ACTIVE
    if not registry.enabled:
        return
    counter_inc("pash_engine_runs_total", 1, "Engine runs completed.", backend=backend)
    histogram_observe(
        "pash_engine_run_seconds",
        metrics.elapsed_seconds,
        "Wall-clock duration of one engine run.",
        backend=backend,
    )
    counter_inc(
        "pash_engine_bytes_moved_total",
        metrics.total_bytes_moved,
        "Bytes that crossed engine channels.",
        backend=backend,
    )
    if metrics.total_spilled_bytes:
        counter_inc(
            "pash_engine_spilled_bytes_total",
            metrics.total_spilled_bytes,
            "Bytes stream buffers spilled to disk.",
            backend=backend,
        )
    if metrics.total_spill_events:
        counter_inc(
            "pash_engine_spill_events_total",
            metrics.total_spill_events,
            "Chunks routed through spill storage.",
            backend=backend,
        )
    if metrics.remote_tasks:
        counter_inc(
            "pash_cluster_tasks_total",
            metrics.remote_tasks,
            "Nodes executed on remote cluster workers.",
        )
    if metrics.requeued_tasks:
        counter_inc(
            "pash_cluster_requeues_total",
            metrics.requeued_tasks,
            "Tasks re-dispatched after a cluster worker was lost.",
        )
