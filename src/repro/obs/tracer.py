"""Low-overhead span tracing for the whole compile-and-run pipeline.

A :class:`Tracer` records :class:`SpanRecord`\\ s — named, timed intervals
with parent/child links — for every layer of a run: parse, each optimizer
pass, JIT region decisions, scheduler phases, and per-node worker execution.
Spans carry the existing metrics counters as plain attributes, so byte/line/
spill flow is queryable per span.

Design constraints, in order:

* **near-zero cost when off.**  Tracing defaults to disabled; a disabled
  tracer's :meth:`Tracer.span` returns a shared singleton context manager
  (no allocation, one attribute check), and worker processes skip the span
  path entirely when their plan carries no :class:`TraceContext`.
* **pickle-safe across process boundaries.**  :class:`SpanRecord` and
  :class:`TraceContext` are plain dataclasses of scalars; worker processes
  ship their spans back to the scheduler inside the existing report-queue
  payload (the same SCM-RIGHTS-adjacent plumbing the pool uses for plans),
  and the parent absorbs them with :meth:`Tracer.extend`.
* **one clock story.**  Span *start* timestamps are wall-clock
  (``time.time_ns``, shared across every process on the machine, so spans
  from different pids land on one timeline); *durations* are monotonic
  (``time.perf_counter_ns``), so an NTP step mid-span cannot produce a
  negative or wildly wrong length.

Span identity is ``"<pid hex>.<counter hex>"`` — unique across processes
without coordination.  The *current* span is tracked in a
:class:`contextvars.ContextVar`, so nesting works across threads and the
JIT driver's recursive interpreter frames alike.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Wall-clock microseconds; one timeline shared by every process on the host.
def _now_us() -> int:
    return time.time_ns() // 1_000


def _native_tid() -> int:
    get_native = getattr(threading, "get_native_id", None)
    return get_native() if get_native is not None else threading.get_ident()


_span_counter = itertools.count(1)
#: Fork safety: a forked child must not continue the parent's counter under
#: the parent's pid-prefixed ids (same pid prefix never happens — the child
#: has a new pid — so the shared counter is safe as-is; ids stay unique).


def new_span_id() -> str:
    """A process-unique span id: ``"<pid hex>.<counter hex>"``."""
    return f"{os.getpid():x}.{next(_span_counter):x}"


#: The active span's id, per execution context (thread/task).
_CURRENT_SPAN: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "pash_current_span", default=None
)


@dataclass
class SpanRecord:
    """One named, timed interval — the unit every exporter consumes.

    ``attributes`` values must stay JSON-able scalars (str/int/float/bool)
    so records round-trip through pickle, JSONL, and the Chrome trace
    ``args`` dict unchanged.
    """

    name: str
    #: Coarse layer tag: ``"parse"`` | ``"pass"`` | ``"jit"`` | ``"scheduler"``
    #: | ``"worker"`` | ``"engine"`` (exporters group and color by this).
    category: str
    span_id: str = ""
    parent_id: Optional[str] = None
    pid: int = 0
    tid: int = 0
    #: Wall-clock start, microseconds since the epoch (one host timeline).
    start_us: int = 0
    #: Monotonic duration, microseconds.
    duration_us: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> int:
        return self.start_us + self.duration_us

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span (no-op on the disabled path)."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """Stable flat-JSON schema (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            category=payload["category"],
            span_id=payload.get("span_id", ""),
            parent_id=payload.get("parent_id"),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
            start_us=payload.get("start_us", 0),
            duration_us=payload.get("duration_us", 0),
            attributes=dict(payload.get("attributes", {})),
        )


@dataclass
class TraceContext:
    """The cross-process handoff: "record spans, parented under this id".

    Small and picklable by construction — it travels inside a
    :class:`~repro.engine.workers.WorkerPlan` to pool workers and dedicated
    forks alike.  ``None`` in the plan means tracing is off and the worker
    never touches the span path.
    """

    parent_id: Optional[str] = None


class _NullSpan:
    """The shared do-nothing span handle for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("tracer", "record", "_perf_start", "_token")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self.tracer = tracer
        self.record = record
        self._perf_start = 0
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> SpanRecord:
        self.record.start_us = _now_us()
        self._perf_start = time.perf_counter_ns()
        self._token = _CURRENT_SPAN.set(self.record.span_id)
        return self.record

    def __exit__(self, *exc_info: Any) -> None:
        self.record.duration_us = (time.perf_counter_ns() - self._perf_start) // 1_000
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        self.tracer._append(self.record)


class Tracer:
    """Collects spans for one logical run (or session) of the pipeline.

    One tracer instance is threaded through every layer; worker processes
    contribute via :meth:`extend` (their spans arrive through the report
    queue).  ``enabled=False`` makes every method a near-free no-op — the
    hot path is a single attribute check.
    """

    def __init__(self, enabled: bool = True, max_spans: Optional[int] = None) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError("Tracer max_spans must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        #: Ring-buffer retention: keep at most this many spans, evicting the
        #: oldest (None = unbounded, the per-run default).  Long-running
        #: daemons set this so ``--trace`` can stay on forever without
        #: unbounded memory; :attr:`dropped_spans` counts the evictions.
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self._evicted = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str, parent_id: Optional[str] = None, **attributes: Any):
        """Context manager timing one interval; nests under the current span.

        ``parent_id`` overrides the contextvar-derived parent (used when
        stitching across process or driver boundaries).
        """
        if not self.enabled:
            return _NULL_SPAN
        record = SpanRecord(
            name=name,
            category=category,
            span_id=new_span_id(),
            parent_id=parent_id if parent_id is not None else _CURRENT_SPAN.get(),
            pid=os.getpid(),
            tid=_native_tid(),
            attributes=dict(attributes),
        )
        return _LiveSpan(self, record)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)
            self._trim_locked()

    def _trim_locked(self) -> None:
        """Evict the oldest spans past :attr:`max_spans` (lock held)."""
        if self.max_spans is None:
            return
        overflow = len(self.spans) - self.max_spans
        if overflow > 0:
            del self.spans[:overflow]
            self._evicted += overflow

    def record(self, record: SpanRecord) -> None:
        """Absorb one externally-built span (e.g. from a worker report)."""
        if self.enabled:
            self._append(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Absorb a batch of externally-built spans."""
        if not self.enabled:
            return
        with self._lock:
            self.spans.extend(records)
            self._trim_locked()

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._evicted = 0

    # -- context handoff -----------------------------------------------------

    def current_id(self) -> Optional[str]:
        """The active span's id in this execution context (None when off)."""
        if not self.enabled:
            return None
        return _CURRENT_SPAN.get()

    def context(self) -> Optional[TraceContext]:
        """A picklable handoff for a worker process (None when disabled)."""
        if not self.enabled:
            return None
        return TraceContext(parent_id=_CURRENT_SPAN.get())

    # -- introspection -------------------------------------------------------

    def mark(self) -> int:
        """Current span count; slice with :meth:`since` for per-run views.

        Marks count *lifetime* recordings, so they stay valid across
        ring-buffer eviction: a :meth:`since` on an old mark simply returns
        whatever of that window is still retained.
        """
        with self._lock:
            return self._evicted + len(self.spans)

    def since(self, mark: int) -> List[SpanRecord]:
        """Spans recorded after :meth:`mark` was taken (still retained)."""
        with self._lock:
            start = max(0, mark - self._evicted)
            return list(self.spans[start:])

    @property
    def dropped_spans(self) -> int:
        """Spans evicted by the :attr:`max_spans` ring buffer (0 = none)."""
        with self._lock:
            return self._evicted


#: The shared disabled tracer: ``tracer or NULL_TRACER`` keeps call sites
#: branch-free and costs one attribute check per skipped span.
NULL_TRACER = Tracer(enabled=False)


def record_worker_span(
    trace: Optional[TraceContext],
    name: str,
    category: str,
    start_us: int,
    duration_us: int,
    attributes: Optional[Dict[str, Any]] = None,
) -> Optional[SpanRecord]:
    """Build one span inside a worker process (no tracer object there).

    Returns ``None`` when ``trace`` is ``None`` (tracing off) so the worker
    hot path stays a single check; the scheduler absorbs the returned record
    from the report payload.
    """
    if trace is None:
        return None
    return SpanRecord(
        name=name,
        category=category,
        span_id=new_span_id(),
        parent_id=trace.parent_id,
        pid=os.getpid(),
        tid=_native_tid(),
        start_us=start_us,
        duration_us=duration_us,
        attributes=dict(attributes or {}),
    )
