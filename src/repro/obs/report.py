"""``RunReport`` — one machine-readable document for one run.

Today the numbers a run produces are scattered across live dataclasses:
:class:`~repro.engine.metrics.EngineMetrics` (per-node counters),
:class:`~repro.jit.report.JitReport` (region decisions), and per-region
:class:`~repro.transform.pipeline.OptimizationReport`\\ s (pass timings).
``RunReport`` merges them — plus the recorded spans — into one
``to_dict()``-stable JSON document, surfaced by the CLI's ``--metrics-json``
and consumable by the benchmark trajectory, dashboards, and the future
cluster/daemon reporting planes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.export import span_summary
from repro.obs.tracer import SpanRecord

#: Bumped whenever a key is renamed or removed (additions are compatible).
RUN_REPORT_SCHEMA = 1


@dataclass
class RunReport:
    """The merged, serializable outcome of one compile-and-run."""

    backend: str = ""
    elapsed_seconds: float = 0.0
    #: ``EngineMetrics.to_dict()`` of the run (empty dict when absent).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: ``JitReport.to_dict()`` when the run was JIT-driven, else ``None``.
    jit: Optional[Dict[str, Any]] = None
    #: Compilation-side numbers: ``CompilationStats.to_dict()`` plus one
    #: ``OptimizationReport.to_dict()`` per region, when a compile happened.
    compilation: Optional[Dict[str, Any]] = None
    #: ``PashConfig.to_dict()`` of the configuration in force, when known.
    config: Optional[Dict[str, Any]] = None
    #: Flat per-category span digest (``span_summary``); always present.
    spans: Dict[str, Any] = field(default_factory=dict)
    #: Full span rows (``SpanRecord.to_dict()``), present when tracing ran.
    span_records: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """The stable JSON document (schema-versioned)."""
        return {
            "schema": RUN_REPORT_SCHEMA,
            "backend": self.backend,
            "elapsed_seconds": self.elapsed_seconds,
            "metrics": self.metrics,
            "jit": self.jit,
            "compilation": self.compilation,
            "config": self.config,
            "spans": self.spans,
            "span_records": self.span_records,
        }

    @classmethod
    def from_run(
        cls,
        result: Any = None,
        compiled: Any = None,
        spans: Optional[List[SpanRecord]] = None,
    ) -> "RunReport":
        """Assemble a report from live objects.

        ``result`` is an :class:`~repro.engine.api.EngineResult` (or the
        :class:`~repro.jit.driver.JitResult` subclass); ``compiled`` is the
        :class:`~repro.api.artifact.CompiledScript` that produced it (for the
        compilation section); ``spans`` defaults to ``result.spans``.
        """
        report = cls()
        if result is not None:
            report.backend = getattr(result, "backend", "")
            report.elapsed_seconds = getattr(result, "elapsed_seconds", 0.0)
            metrics = getattr(result, "metrics", None)
            if metrics is not None:
                report.metrics = metrics.to_dict()
            jit = getattr(result, "jit", None)
            if jit is not None:
                report.jit = jit.to_dict()
            if spans is None:
                spans = list(getattr(result, "spans", []) or [])
        if compiled is not None:
            report.compilation = {
                "stats": compiled.stats.to_dict(),
                "regions": [region.to_dict() for region in compiled.reports],
            }
            if compiled.config is not None:
                report.config = compiled.config.to_dict()
        spans = spans or []
        report.spans = span_summary(spans)
        report.span_records = [span.to_dict() for span in spans]
        return report
