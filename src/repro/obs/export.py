"""Span exporters: Chrome ``trace_event`` JSON and a flat JSONL span log.

The Chrome format (loadable in Perfetto / ``chrome://tracing``) maps each
:class:`~repro.obs.tracer.SpanRecord` to one complete duration event
(``"ph": "X"``) on the track of the OS process that executed it — so a traced
parallel run shows the compile phases on the driver's track and every node's
execution on its worker's track, with ``args`` carrying the span's counters
and parent link.  ``tools/check_trace.py`` validates exported files against
this schema (span nesting, pid/tid sanity).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO, Union

from repro.obs.tracer import SpanRecord

#: Track names keyed by whether the pid hosted compile-side or worker spans.
_PROCESS_LABELS = {True: "pash driver", False: "pash worker"}

#: Span categories recorded by the driver process (everything else is a
#: worker-side category).
_DRIVER_CATEGORIES = {"parse", "pass", "jit", "scheduler", "engine", "service"}


def chrome_trace_events(spans: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a set of spans (metadata rows included)."""
    events: List[Dict[str, Any]] = []
    driver_pids = set()
    worker_pids = set()
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": span.pid,
                "tid": span.tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
        (driver_pids if span.category in _DRIVER_CATEGORIES else worker_pids).add(span.pid)
    for pid in sorted(driver_pids | worker_pids):
        label = _PROCESS_LABELS[pid in driver_pids]
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} {pid}"},
            }
        )
    return events


def chrome_trace_document(spans: Iterable[SpanRecord]) -> Dict[str, Any]:
    """The full Chrome ``trace_event`` JSON object."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def export_chrome_trace(spans: Iterable[SpanRecord], destination: Union[str, TextIO]) -> None:
    """Write the Chrome trace JSON to a path or open text file."""
    document = chrome_trace_document(spans)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
    else:
        json.dump(document, destination, indent=1)
        destination.write("\n")


def export_jsonl(spans: Iterable[SpanRecord], destination: Union[str, TextIO]) -> None:
    """Write one flat JSON object per span (grep/jq-friendly log form)."""
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            export_jsonl(spans, handle)
        return
    for span in spans:
        destination.write(json.dumps(span.to_dict(), sort_keys=True))
        destination.write("\n")


def span_summary(spans: Iterable[SpanRecord]) -> Dict[str, Any]:
    """A flat, scalar-only digest of a span set.

    The shape is ``bench_record``-compatible (string keys, scalar values),
    so benchmarks can log span summaries straight into ``BENCH_engine.json``::

        bench_record("my_benchmark", wall=..., **span_summary(result.spans))
    """
    total = 0
    per_category_us: Dict[str, int] = {}
    per_category_count: Dict[str, int] = {}
    for span in spans:
        total += 1
        per_category_us[span.category] = (
            per_category_us.get(span.category, 0) + span.duration_us
        )
        per_category_count[span.category] = per_category_count.get(span.category, 0) + 1
    summary: Dict[str, Any] = {"spans_total": total}
    for category in sorted(per_category_us):
        summary[f"span_count_{category}"] = per_category_count[category]
        summary[f"span_seconds_{category}"] = round(per_category_us[category] / 1e6, 6)
    return summary
