"""``PashConfig`` — every knob of a compilation in one frozen object.

The paper's pitch is *light-touch*: a script plus one knob (the width).
Internally, though, a compilation touches four layers — the optimizer
(:class:`~repro.transform.pipeline.ParallelizationConfig`), the shell
back-end (:class:`~repro.backend.shell_emitter.EmitterOptions`), the
execution engine (:class:`~repro.engine.scheduler.SchedulerOptions`), and
backend selection.  :class:`PashConfig` subsumes all four, so the CLI, the
evaluation harness, the benchmarks, and library users assemble exactly one
object and every layer derives its own options from it
(:meth:`PashConfig.parallelization`, :meth:`PashConfig.emitter_options`,
:meth:`PashConfig.scheduler_options`).

The object is frozen (hashable, safe to share across regions and threads)
and round-trips through plain JSON-able dicts (:meth:`to_dict` /
:meth:`from_dict`) so future caching layers can key compilations on it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.resilience.fault import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.transform.pipeline import EagerMode, ParallelizationConfig, SplitMode

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay deferred so that
    # compile-only users of `import repro` never load the engine stack.
    from repro.backend.shell_emitter import EmitterOptions
    from repro.engine.scheduler import SchedulerOptions


@dataclass(frozen=True)
class StreamingConfig:
    """The engine's bounded-memory streaming knobs (one section of the config).

    The parallel engine moves data in framed byte chunks and buffers each
    edge in a spill-to-disk eager relay (dgsh-tee behaviour, §5.2): at most
    ``spill_threshold`` bytes of a stream sit in memory per buffer; anything
    beyond spills to a temp file and is restored in order.  ``None`` fields
    defer to the engine defaults (64 KiB chunks, 8 MiB buffers, the system
    temp directory).
    """

    #: Framing-chunk size in bytes: the granularity of channel writes,
    #: incremental reads, and stateless batch evaluation.
    chunk_size: Optional[int] = None
    #: In-memory buffer size in bytes per stream buffer (eager-pump window /
    #: graph-output accumulator) — the spill high-water mark.
    spill_threshold: Optional[int] = None
    #: Directory for spill files (None = the system temp directory).
    spill_directory: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}

    @classmethod
    def coerce(cls, value: Any) -> "StreamingConfig":
        """Accept a :class:`StreamingConfig` or its dict form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {field.name for field in dataclasses.fields(cls)}
            if unknown:
                raise ValueError(
                    f"unknown StreamingConfig fields: {', '.join(sorted(unknown))}"
                )
            return cls(**dict(value))
        raise TypeError(f"expected StreamingConfig or mapping, got {type(value).__name__}")


@dataclass(frozen=True)
class ClusterConfig:
    """The distributed tier's knobs (one section of the config).

    With ``connect`` unset the coordinator runs in localhost mode: it binds
    an ephemeral port and spawns ``workers`` ``pash-worker`` processes
    itself, so the tier is testable without SSH.  With ``connect`` set to a
    ``HOST:PORT`` address the coordinator listens there and waits for
    ``workers`` externally-started ``pash-worker --connect`` registrations.
    ``None`` timing fields defer to the coordinator defaults.
    """

    #: Worker count: processes to spawn (localhost mode) or registrations to
    #: wait for (``connect`` mode).
    workers: int = 2
    #: ``HOST:PORT`` to listen on for external workers (None = localhost mode).
    connect: Optional[str] = None
    #: Seconds between worker heartbeats (None = coordinator default).
    heartbeat_interval: Optional[float] = None
    #: Heartbeat silence after which a worker is declared lost (None = default).
    heartbeat_timeout: Optional[float] = None
    #: Cores per worker host for the adaptive-width estimate (None = assume
    #: each worker matches this host).
    worker_cores: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}

    @classmethod
    def coerce(cls, value: Any) -> "ClusterConfig":
        """Accept a :class:`ClusterConfig` or its dict form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {field.name for field in dataclasses.fields(cls)}
            if unknown:
                raise ValueError(
                    f"unknown ClusterConfig fields: {', '.join(sorted(unknown))}"
                )
            return cls(**dict(value))
        raise TypeError(f"expected ClusterConfig or mapping, got {type(value).__name__}")


@dataclass(frozen=True)
class ResilienceConfig:
    """The supervision tier's knobs (one section of the config).

    Inactive by default (``max_retries=0``, ``degrade=False``): runs fail
    exactly as they always did.  Turning either knob on arms the
    retry-then-degrade ladder around engine runs, JIT regions, and service
    jobs — see ``docs/RESILIENCE.md``.  ``faults`` + ``fault_seed`` describe
    a deterministic :class:`~repro.resilience.fault.FaultPlan` for chaos
    runs (the CLI loads them from ``--fault-plan FILE.json``).
    """

    #: Retries per supervised run after the first attempt (0 = no retries).
    max_retries: int = 0
    #: After retries are exhausted, re-run on the sequential interpreter
    #: (always byte-identical by the paper's correctness contract).
    degrade: bool = False
    #: Exponential-backoff schedule: first delay, cap, and jitter fraction.
    retry_base_seconds: float = 0.05
    retry_max_seconds: float = 2.0
    retry_jitter: float = 0.5
    #: Overall wall-clock budget across all attempts of one supervised run;
    #: 0 = unbounded (each attempt is still bounded by the engine's own
    #: report timeout, so runs never hang).
    deadline_seconds: float = 0.0
    #: Seed for fault determinism and backoff jitter.
    fault_seed: int = 0
    #: Injected faults (empty = none); frozen specs keep the config hashable.
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("ResilienceConfig.max_retries must be >= 0")
        if self.retry_base_seconds < 0 or self.retry_max_seconds < 0:
            raise ValueError("ResilienceConfig backoff seconds must be >= 0")
        if self.deadline_seconds < 0:
            raise ValueError("ResilienceConfig.deadline_seconds must be >= 0")

    @property
    def active(self) -> bool:
        """Whether any supervision rung (retry or degrade) is armed."""
        return self.max_retries > 0 or self.degrade

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            base_seconds=self.retry_base_seconds,
            max_seconds=self.retry_max_seconds,
            jitter=self.retry_jitter,
            deadline_seconds=self.deadline_seconds,
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        """A fresh plan with pristine counters, or None without faults."""
        if not self.faults:
            return None
        return FaultPlan(self.faults, seed=self.fault_seed)

    @classmethod
    def from_cli_args(cls, arguments: Any) -> "ResilienceConfig":
        """Build the section from ``--max-retries/--no-degrade/--fault-plan``.

        Shared by ``pash-compile`` and ``pash-serve``.  Passing
        ``--max-retries`` or ``--fault-plan`` arms the ladder; degradation
        then defaults on unless ``--no-degrade`` opts out.
        """
        max_retries = getattr(arguments, "max_retries", None)
        fault_path = getattr(arguments, "fault_plan", None)
        fault_seed = 0
        faults: Tuple[FaultSpec, ...] = ()
        if fault_path:
            from repro.resilience.fault import load_fault_file

            plan = load_fault_file(fault_path)
            fault_seed, faults = plan.seed, plan.faults
        engaged = max_retries is not None or fault_path is not None
        return cls(
            max_retries=max_retries if max_retries is not None else 0,
            degrade=engaged and not bool(getattr(arguments, "no_degrade", False)),
            fault_seed=fault_seed,
            faults=faults,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}
        payload["faults"] = [spec.to_dict() for spec in self.faults]
        return payload

    @classmethod
    def coerce(cls, value: Any) -> "ResilienceConfig":
        """Accept a :class:`ResilienceConfig` or its dict form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {field.name for field in dataclasses.fields(cls)}
            if unknown:
                raise ValueError(
                    f"unknown ResilienceConfig fields: {', '.join(sorted(unknown))}"
                )
            values = dict(value)
            if "faults" in values:
                values["faults"] = tuple(
                    spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
                    for spec in values["faults"]
                )
            return cls(**values)
        raise TypeError(f"expected ResilienceConfig or mapping, got {type(value).__name__}")


@dataclass(frozen=True)
class ObsConfig:
    """The continuous-telemetry knobs (one section of the config).

    Controls *how much* observability a long-running process records, not
    whether runs are correct — so, like :class:`ResilienceConfig`, the whole
    section is excluded from the plan-cache digest: a sampled daemon and an
    unsampled one compile identical graphs.  ``tracing`` itself stays a
    top-level :class:`PashConfig` field; these knobs shape what an enabled
    tracer keeps under sustained traffic (see ``docs/OBSERVABILITY.md``).
    """

    #: Fraction of jobs whose spans are recorded (1.0 = every job, the
    #: per-run behaviour; the daemon consults a seeded
    #: :class:`~repro.obs.sampler.TraceSampler`).
    trace_sample_ratio: float = 1.0
    #: Seed for the deterministic sampling sequence.
    trace_sample_seed: int = 0
    #: Tenants always traced regardless of the ratio (debugging one tenant
    #: without paying for the rest).
    sample_tenants: Tuple[str, ...] = ()
    #: Ring-buffer cap on retained spans in a long-running tracer
    #: (0 = unbounded, the one-shot default).
    span_retention: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_ratio <= 1.0:
            raise ValueError("ObsConfig.trace_sample_ratio must be in [0, 1]")
        if self.span_retention < 0:
            raise ValueError("ObsConfig.span_retention must be >= 0")

    def sampler(self):
        """The seeded :class:`~repro.obs.sampler.TraceSampler` this selects."""
        from repro.obs.sampler import TraceSampler

        return TraceSampler.from_config(self)

    @classmethod
    def from_cli_args(cls, arguments: Any) -> "ObsConfig":
        """Build the section from ``--trace-sample``/``--sample-tenant``/
        ``--span-retention`` (shared by ``pash-serve``)."""
        ratio = getattr(arguments, "trace_sample", None)
        retention = getattr(arguments, "span_retention", None)
        tenants = tuple(getattr(arguments, "sample_tenant", None) or ())
        return cls(
            trace_sample_ratio=ratio if ratio is not None else 1.0,
            trace_sample_seed=int(getattr(arguments, "trace_sample_seed", 0) or 0),
            sample_tenants=tenants,
            span_retention=retention if retention is not None else 0,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = {field.name: getattr(self, field.name) for field in dataclasses.fields(self)}
        payload["sample_tenants"] = list(self.sample_tenants)
        return payload

    @classmethod
    def coerce(cls, value: Any) -> "ObsConfig":
        """Accept an :class:`ObsConfig` or its dict form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - {field.name for field in dataclasses.fields(cls)}
            if unknown:
                raise ValueError(
                    f"unknown ObsConfig fields: {', '.join(sorted(unknown))}"
                )
            values = dict(value)
            if "sample_tenants" in values:
                values["sample_tenants"] = tuple(values["sample_tenants"])
            return cls(**values)
        raise TypeError(f"expected ObsConfig or mapping, got {type(value).__name__}")


@dataclass(frozen=True)
class PashConfig:
    """One configuration object for the whole compile-and-run pipeline."""

    # -- optimizer knobs (subsume ParallelizationConfig) --------------------
    #: Parallelism width: how many copies each parallelizable command becomes.
    width: int = 2
    #: How relay nodes buffer data (t3).
    eager: EagerMode = EagerMode.EAGER
    #: Which split implementation (if any) transformation t2 inserts.
    split: SplitMode = SplitMode.GENERAL
    #: Fan-in of the aggregation tree for pure commands (2 = binary tree).
    aggregation_fan_in: int = 2
    #: Never parallelize commands whose estimated benefit is below this many
    #: input streams.
    minimum_copies: int = 2
    #: Collapse linear stateless chains into single-worker fused stages
    #: (the ``fuse-stages`` pass).  On by default: one worker evaluating
    #: ``grep | tr | cut`` in-process beats three processes joined by pipes
    #: and pump threads.  Paper-shape reproductions (Table 2, the simulated
    #: figures) pin this off explicitly.
    fuse_stages: bool = True
    #: Clamp the effective parallelization width to the cores actually
    #: available (this host's, or the cluster-wide count when the backend is
    #: ``cluster``).  Off by default: paper-shape reproductions ask for an
    #: exact width and latency-bound pipelines still win from overlap beyond
    #: the core count, so the clamp is an explicit opt-in for CPU-bound work.
    adaptive_width: bool = False

    # -- pass-pipeline toggles ----------------------------------------------
    #: Default passes removed from the pipeline by name (ablations).
    disabled_passes: Tuple[str, ...] = ()
    #: Registered non-default passes appended to the pipeline by name.
    extra_passes: Tuple[str, ...] = ()

    # -- execution ------------------------------------------------------------
    #: Engine backend used by ``CompiledScript.execute`` when none is given.
    backend: str = "interpreter"
    #: Exec real host binaries in the parallel backend's workers when possible.
    use_host_commands: bool = False
    #: Channel framing-chunk size in bytes (None = engine default).
    #: Deprecated alias for ``streaming.chunk_size``, which wins when set.
    chunk_size: Optional[int] = None
    #: How long the parallel scheduler waits for a worker report.
    report_timeout_seconds: float = 120.0
    #: Persistent worker-pool size hint for the parallel backend (the CLI's
    #: ``--jobs``): the pool is pre-warmed to this many processes and grows
    #: on demand.  ``None`` = fully lazy; ``0`` disables the pool entirely
    #: (one fresh fork per node per run, the pre-pool behaviour).
    jobs: Optional[int] = None
    #: Bounded-memory streaming knobs of the engine data plane.
    streaming: StreamingConfig = StreamingConfig()
    #: Distributed-tier knobs (worker count, listen address, heartbeats).
    cluster: ClusterConfig = ClusterConfig()
    #: Supervised retry/degrade + fault injection (inactive by default).
    resilience: ResilienceConfig = ResilienceConfig()
    #: Engine backend the JIT driver executes compiled regions on
    #: (``backend="jit"`` orchestrates the script; this picks what runs each
    #: compiled plan — normally the parallel scheduler).
    jit_inner_backend: str = "parallel"

    # -- observability --------------------------------------------------------
    #: Record spans for the whole compile-and-run pipeline (parse, passes,
    #: JIT decisions, scheduler phases, per-node workers).  Off by default;
    #: when off the span hooks cost one attribute check each.  See
    #: ``docs/OBSERVABILITY.md`` and the CLI's ``--trace``/``--metrics-json``.
    tracing: bool = False
    #: Continuous-telemetry knobs for long-running processes (trace sampling,
    #: span retention).  Runtime-only: excluded from the plan-cache digest.
    obs: ObsConfig = ObsConfig()

    # -- emission (subsume EmitterOptions) -----------------------------------
    #: Directory in which the emitted script creates its FIFOs.
    fifo_directory: str = "/tmp"
    #: Fixed FIFO-name prefix; None picks a unique per-emission prefix.
    fifo_prefix: Optional[str] = None
    #: Emit a shebang and comment header.
    emit_header: bool = False
    #: Emit the trailing cleanup logic (wait + PIPE delivery + fifo removal).
    emit_cleanup: bool = True

    # ------------------------------------------------------------------
    # Named constructors
    # ------------------------------------------------------------------

    @classmethod
    def paper_default(cls, width: int, **overrides: Any) -> "PashConfig":
        """The ``Par + Split`` configuration used for the headline results."""
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.GENERAL, **overrides)

    @classmethod
    def no_eager(cls, width: int, **overrides: Any) -> "PashConfig":
        return cls(width=width, eager=EagerMode.NONE, split=SplitMode.NONE, **overrides)

    @classmethod
    def blocking_eager(cls, width: int, **overrides: Any) -> "PashConfig":
        return cls(width=width, eager=EagerMode.BLOCKING, split=SplitMode.NONE, **overrides)

    @classmethod
    def parallel_only(cls, width: int, **overrides: Any) -> "PashConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.NONE, **overrides)

    @classmethod
    def blocking_split(cls, width: int, **overrides: Any) -> "PashConfig":
        return cls(width=width, eager=EagerMode.EAGER, split=SplitMode.INPUT_AWARE, **overrides)

    @classmethod
    def named_configurations(cls, width: int) -> Dict[str, "PashConfig"]:
        """The named configurations plotted in Fig. 7 for a given width."""
        return {
            "Par + Split": cls.paper_default(width),
            "Par + B. Split": cls.blocking_split(width),
            "Parallel": cls.parallel_only(width),
            "Blocking Eager": cls.blocking_eager(width),
            "No Eager": cls.no_eager(width),
        }

    @classmethod
    def from_cli_args(cls, arguments: Any) -> "PashConfig":
        """Build a config from the ``pash-compile`` argparse namespace."""
        if getattr(arguments, "no_eager", False):
            eager = EagerMode.NONE
        elif getattr(arguments, "blocking_eager", False):
            eager = EagerMode.BLOCKING
        else:
            eager = EagerMode.EAGER
        cluster = ClusterConfig(
            workers=getattr(arguments, "cluster_workers", None) or 2,
            connect=getattr(arguments, "cluster_connect", None),
        )
        resilience = ResilienceConfig.from_cli_args(arguments)
        return cls(
            width=arguments.width,
            eager=eager,
            split=SplitMode(arguments.split),
            aggregation_fan_in=arguments.fan_in,
            adaptive_width=bool(getattr(arguments, "adaptive_width", False)),
            disabled_passes=tuple(getattr(arguments, "disable_pass", None) or ()),
            backend=getattr(arguments, "execute", None) or "interpreter",
            jobs=getattr(arguments, "jobs", None),
            cluster=cluster,
            resilience=resilience,
            jit_inner_backend=getattr(arguments, "jit_backend", None) or "parallel",
            tracing=bool(
                getattr(arguments, "trace", None)
                or getattr(arguments, "metrics_json", None)
            ),
        )

    @classmethod
    def from_parallelization(
        cls, config: ParallelizationConfig, **overrides: Any
    ) -> "PashConfig":
        """Lift a legacy :class:`ParallelizationConfig` into a full config."""
        return cls(
            width=config.width,
            eager=config.eager,
            split=config.split,
            aggregation_fan_in=config.aggregation_fan_in,
            minimum_copies=config.minimum_copies,
            fuse_stages=config.fuse_stages,
            **overrides,
        )

    @classmethod
    def coerce(cls, config: Any = None) -> "PashConfig":
        """Accept ``None``, a :class:`PashConfig`, or a legacy config."""
        if config is None:
            return cls()
        if isinstance(config, cls):
            return config
        if isinstance(config, ParallelizationConfig):
            return cls.from_parallelization(config)
        raise TypeError(
            f"expected PashConfig or ParallelizationConfig, got {type(config).__name__}"
        )

    # ------------------------------------------------------------------
    # Derived per-layer options
    # ------------------------------------------------------------------

    def replace(self, **changes: Any) -> "PashConfig":
        """A copy with the given fields changed (the object is frozen)."""
        return dataclasses.replace(self, **changes)

    def available_cores_estimate(self) -> int:
        """Cores the selected backend can actually keep busy.

        Single-host backends get this host's usable cores; the cluster
        backend gets the fleet-wide sum (``workers`` × per-worker cores,
        assumed to match this host unless ``cluster.worker_cores`` says
        otherwise), floored at the local count since the coordinator also
        executes nodes.
        """
        import os

        try:
            local = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            local = os.cpu_count() or 1
        if self.backend == "cluster":
            per_worker = self.cluster.worker_cores or local
            return max(local, max(1, self.cluster.workers) * per_worker)
        return local

    def parallelization(self) -> ParallelizationConfig:
        """The optimizer's view of this configuration."""
        return ParallelizationConfig(
            width=self.width,
            eager=self.eager,
            split=self.split,
            aggregation_fan_in=self.aggregation_fan_in,
            minimum_copies=self.minimum_copies,
            fuse_stages=self.fuse_stages,
            available_cores=(
                self.available_cores_estimate() if self.adaptive_width else None
            ),
        )

    def pipeline(self):
        """The pass manager this configuration selects."""
        from repro.transform.passes import build_pipeline

        return build_pipeline(disabled=self.disabled_passes, extra=self.extra_passes)

    def emitter_options(self, **overrides: Any) -> "EmitterOptions":
        """The shell back-end's view of this configuration."""
        from repro.backend.shell_emitter import EmitterOptions

        options: Dict[str, Any] = {
            "fifo_directory": self.fifo_directory,
            "header": self.emit_header,
            "cleanup": self.emit_cleanup,
        }
        if self.fifo_prefix is not None:
            options["fifo_prefix"] = self.fifo_prefix
        options.update(overrides)
        return EmitterOptions(**options)

    def scheduler_options(self) -> "SchedulerOptions":
        """The parallel engine's view of this configuration."""
        from repro.engine.scheduler import SchedulerOptions

        options = SchedulerOptions(
            use_host_commands=self.use_host_commands,
            report_timeout_seconds=self.report_timeout_seconds,
        )
        if self.jobs is not None:
            if self.jobs <= 0:
                options.use_pool = False
            else:
                options.pool_size = self.jobs
        chunk_size = (
            self.streaming.chunk_size
            if self.streaming.chunk_size is not None
            else self.chunk_size
        )
        if chunk_size is not None:
            options.chunk_size = chunk_size
        if self.streaming.spill_threshold is not None:
            options.spill_threshold = self.streaming.spill_threshold
        if self.streaming.spill_directory is not None:
            options.spill_directory = self.streaming.spill_directory
        if self.resilience.faults:
            options.fault_plan = self.resilience.fault_plan()
        return options

    def cluster_options(self):
        """The cluster coordinator's view of this configuration."""
        from repro.cluster.coordinator import ClusterOptions

        options = ClusterOptions(
            workers=self.cluster.workers,
            connect=self.cluster.connect,
            report_timeout_seconds=self.report_timeout_seconds,
            use_host_commands=self.use_host_commands,
        )
        if self.cluster.heartbeat_interval is not None:
            options.heartbeat_interval = self.cluster.heartbeat_interval
        if self.cluster.heartbeat_timeout is not None:
            options.heartbeat_timeout = self.cluster.heartbeat_timeout
        chunk_size = (
            self.streaming.chunk_size
            if self.streaming.chunk_size is not None
            else self.chunk_size
        )
        if chunk_size is not None:
            options.chunk_size = chunk_size
        if self.streaming.spill_threshold is not None:
            options.spill_threshold = self.streaming.spill_threshold
        if self.streaming.spill_directory is not None:
            options.spill_directory = self.streaming.spill_directory
        if self.resilience.faults:
            options.fault_plan = self.resilience.fault_plan()
        return options

    def backend_options(self, backend: Optional[str] = None) -> Dict[str, Any]:
        """Constructor keywords for :func:`repro.engine.create_backend`."""
        resolved = backend or self.backend
        if resolved == "parallel":
            return {"options": self.scheduler_options()}
        if resolved == "cluster":
            return {"options": self.cluster_options()}
        if resolved == "jit":
            return {"config": self}
        return {}

    # ------------------------------------------------------------------
    # Round-trippable serialization (the future caching key)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-able dict; ``from_dict`` restores an equal config."""
        payload: Dict[str, Any] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, (EagerMode, SplitMode)):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, (StreamingConfig, ClusterConfig, ResilienceConfig, ObsConfig)):
                value = value.to_dict()
            payload[field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PashConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        field_names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - field_names
        if unknown:
            raise ValueError(f"unknown PashConfig fields: {', '.join(sorted(unknown))}")
        values: Dict[str, Any] = dict(payload)
        if "eager" in values and not isinstance(values["eager"], EagerMode):
            values["eager"] = EagerMode(values["eager"])
        if "split" in values and not isinstance(values["split"], SplitMode):
            values["split"] = SplitMode(values["split"])
        for name in ("disabled_passes", "extra_passes"):
            if name in values:
                values[name] = tuple(values[name])
        if "streaming" in values:
            values["streaming"] = StreamingConfig.coerce(values["streaming"])
        if "cluster" in values:
            values["cluster"] = ClusterConfig.coerce(values["cluster"])
        if "resilience" in values:
            values["resilience"] = ResilienceConfig.coerce(values["resilience"])
        if "obs" in values:
            values["obs"] = ObsConfig.coerce(values["obs"])
        return cls(**values)
