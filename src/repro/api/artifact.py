"""``CompiledScript`` — the inspectable artifact a compilation produces.

A compilation is no longer a one-way trip to shell text: the artifact keeps
the parsed AST, the discovered regions with their per-region dataflow graphs,
and the per-region :class:`~repro.transform.pipeline.OptimizationReport`
(including per-pass timings), alongside the emitted text.  Two methods close
the loop:

* :meth:`CompiledScript.emit` — re-render the parallel shell text, optionally
  with different :class:`~repro.backend.shell_emitter.EmitterOptions`
  (e.g. a scratch FIFO directory for a sandboxed run), and
* :meth:`CompiledScript.execute` — run the optimized graphs on any registered
  engine backend (``interpreter`` | ``parallel`` | ``shell``), sharing one
  :class:`~repro.runtime.executor.ExecutionEnvironment` across regions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.dfg.builder import TranslationResult
from repro.dfg.graph import DataflowGraph
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience import fault
from repro.shell.ast_nodes import (
    AndOr,
    BackgroundNode,
    BraceGroup,
    ForLoop,
    IfClause,
    Node,
    SequenceNode,
    Subshell,
    WhileLoop,
)
from repro.shell.unparser import unparse, unparse_word
from repro.transform.pipeline import OptimizationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine/backend lazy)
    from repro.api.config import PashConfig, ResilienceConfig
    from repro.backend.shell_emitter import EmitterOptions
    from repro.engine.api import EngineResult
    from repro.runtime.executor import ExecutionEnvironment


@dataclass
class CompilationStats:
    """Aggregate statistics for one compilation (feeds Table 2)."""

    regions_found: int = 0
    regions_parallelized: int = 0
    regions_rejected: int = 0
    total_nodes: int = 0
    parallelized_commands: List[str] = field(default_factory=list)
    compile_time_seconds: float = 0.0

    def record_report(self, report: OptimizationReport) -> None:
        self.parallelized_commands.extend(report.parallelized_commands)

    def to_dict(self) -> Dict[str, Any]:
        """Stable flat-JSON schema: exactly the dataclass fields."""
        payload = {
            stats_field.name: getattr(self, stats_field.name)
            for stats_field in dataclasses.fields(self)
        }
        payload["parallelized_commands"] = list(self.parallelized_commands)
        return payload


@dataclass
class CompiledScript:
    """Result of :meth:`repro.api.Pash.compile`."""

    source: str
    text: str
    stats: CompilationStats
    translation: TranslationResult
    optimized_graphs: List[DataflowGraph] = field(default_factory=list)
    reports: List[OptimizationReport] = field(default_factory=list)
    config: Optional["PashConfig"] = None
    #: The tracer that recorded this compilation's spans (parse + passes);
    #: :meth:`execute` threads it through the engine so one trace covers the
    #: whole pipeline.  Disabled (``NULL_TRACER``) unless ``config.tracing``.
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)

    @property
    def ast(self) -> Node:
        """The parsed shell AST of the source script."""
        return self.translation.ast

    @property
    def regions(self):
        """The discovered parallelizable regions (with their DFGs)."""
        return self.translation.regions

    @property
    def node_count(self) -> int:
        """Total runtime processes across all optimized regions (Table 2)."""
        return sum(len(graph.nodes) for graph in self.optimized_graphs)

    def emit(self, options: Optional["EmitterOptions"] = None) -> str:
        """Re-render the parallel shell text.

        With no ``options`` this returns the cached :attr:`text`; passing
        :class:`EmitterOptions` re-emits every parallelized region (e.g. with
        a different FIFO directory or a pinned prefix).
        """
        if options is None:
            return self.text
        return render_script(self.translation, self.optimized_graphs, self.reports, options)

    def execute(
        self,
        backend: Optional[str] = None,
        environment: Optional["ExecutionEnvironment"] = None,
        **backend_options: Any,
    ) -> "EngineResult":
        """Run the compiled graphs on an engine backend.

        ``backend`` defaults to the config's backend selection; per-backend
        constructor options default to the config's as well (e.g. the
        parallel scheduler's) unless overridden here.  Regions execute in
        script order sharing one environment, exactly like running the
        script top to bottom.  Raises
        :class:`~repro.runtime.executor.ExecutionError` when part of the
        source was not translated — executing only the translated regions
        would silently drop the rest of the script.

        ``backend="jit"`` is the exception to that refusal: the whole parsed
        AST is handed to a :class:`~repro.jit.driver.JitDriver`, which
        executes control flow itself, re-compiles each region with the
        bindings in force when it is reached, and falls back per region —
        so partially-translatable scripts run (and parallelize) instead of
        erroring.
        """
        name, backend_options = resolve_backend(self.config, backend, backend_options)
        mark = self.tracer.mark()
        if name == "jit":
            backend_options.setdefault("tracer", self.tracer)
            result = execute_jit(
                self.translation.ast, self.config, environment, backend_options
            )
        else:
            if self.translation.rejected:
                raise rejection_error(self.translation.rejected)
            result = execute_graphs(
                self.optimized_graphs, name, environment, backend_options,
                tracer=self.tracer,
                resilience=self.config.resilience if self.config else None,
            )
        if self.tracer.enabled:
            # Per-run view: spans recorded during this execute() call.  The
            # compile-time spans (parse, passes) stay on the tracer itself.
            result.spans = self.tracer.since(mark)
        return result


def rejection_error(rejected) -> "Exception":
    """The shared refusal for scripts that were not fully translated.

    Executing only the translated regions would silently drop the rejected
    statements' effects, so both front-door execution paths
    (:meth:`CompiledScript.execute` and :func:`repro.api.run`) refuse with
    this error rather than return wrong output.
    """
    from repro.runtime.executor import ExecutionError

    reasons = "; ".join(reason for _, reason in rejected)
    return ExecutionError(
        f"{len(rejected)} region(s) of the script cannot be translated for "
        f"engine execution: {reasons}; run the emitted script under a shell "
        "instead"
    )


def resolve_backend(
    config: Optional["PashConfig"],
    backend: Optional[str],
    backend_options: Optional[Dict[str, Any]],
):
    """Pick the backend name and constructor options for one execution.

    An explicit ``backend`` wins over the config's selection; the config's
    derived options (e.g. the parallel scheduler's) form the base and
    explicit ``backend_options`` override them key by key — so a session can
    add ``pool=...`` without losing the config's scheduler options.
    """
    name = backend or (config.backend if config is not None else "interpreter")
    options: Dict[str, Any] = config.backend_options(name) if config is not None else {}
    options.update(backend_options or {})
    return name, options


def execute_jit(
    ast_or_source,
    config: Optional["PashConfig"],
    environment: Optional["ExecutionEnvironment"] = None,
    backend_options: Optional[Dict[str, Any]] = None,
):
    """Run a script (or parsed AST) through a :class:`~repro.jit.JitDriver`.

    The shared jit tail of :meth:`CompiledScript.execute` and
    :func:`repro.api.run`.  ``backend_options`` accepts the driver's
    keywords (``inner_backend``, ``pool``, ``cache``…); a ``config`` key
    from :meth:`PashConfig.backend_options` is dropped in favour of the
    explicit ``config`` argument.
    """
    from repro.jit.driver import JitDriver

    options = dict(backend_options or {})
    options.pop("config", None)
    driver = JitDriver(config=config, environment=environment, **options)
    return driver.run(ast_or_source)


def execute_graphs(
    graphs: List[DataflowGraph],
    backend: str,
    environment: Optional["ExecutionEnvironment"] = None,
    backend_options: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
    resilience: Optional["ResilienceConfig"] = None,
) -> "EngineResult":
    """Execute graphs in order on one backend, sharing one environment.

    The common tail of :meth:`CompiledScript.execute` and
    :func:`repro.api.run`: each graph's result is folded into one combined
    :class:`~repro.engine.api.EngineResult` — the engine-level equivalent of
    running the script top to bottom.  ``tracer`` records one ``region:N``
    span per graph (and is handed to the parallel scheduler for its own).

    With an *active* ``resilience`` section each region runs under the
    retry-then-degrade ladder: a region whose parallel/cluster execution
    keeps failing (crashed worker, exhausted disk) is retried with backoff
    and finally re-run on the sequential interpreter, which is byte-identical
    by the paper's correctness contract.  Region-level supervision is safe
    because every engine backend delivers a region's outputs to the
    environment only after the whole region succeeded — a failed attempt
    never leaves partial state behind.  An active fault plan in the config
    is also installed process-globally for the duration of the run, arming
    coordinator-side fault points (worker-side points travel inside the
    worker plans).
    """
    from repro import engine  # deferred: keeps the artifact importable early
    from repro.runtime.executor import ExecutionEnvironment

    tracer = tracer or NULL_TRACER
    environment = environment or ExecutionEnvironment()
    options = dict(backend_options or {})
    if backend in ("parallel", "cluster"):
        options.setdefault("tracer", tracer)
    engine_backend = engine.create_backend(backend, **options)
    combined = engine.EngineResult(backend=engine_backend.name)
    supervisor = None
    # The interpreter is the ladder's landing ground (nothing to degrade
    # to) and the shell backend runs real commands with real side effects
    # (a retry could replay them), so supervision covers parallel/cluster.
    if (
        resilience is not None
        and resilience.active
        and backend in ("parallel", "cluster")
    ):
        from repro.resilience.supervisor import Supervisor

        supervisor = Supervisor(resilience, tracer)
    plan = resilience.fault_plan() if resilience is not None else None
    previous_plan = fault.active()
    if plan is not None:
        fault.install(plan)
    try:
        for index, graph in enumerate(graphs):
            if supervisor is None:
                with tracer.span(f"region:{index}", "engine", nodes=len(graph.nodes)):
                    region_result = engine_backend.execute(graph, environment)
            else:

                def attempt(graph=graph, index=index):
                    with tracer.span(
                        f"region:{index}", "engine", nodes=len(graph.nodes)
                    ):
                        return engine_backend.execute(graph, environment)

                def degrade(graph=graph):
                    return engine.create_backend("interpreter").execute(
                        graph, environment
                    )

                region_result = supervisor.run(f"region:{index}", attempt, degrade)
            # The caller slices per-run spans off the tracer; per-region
            # results must not be double-counted through absorb().
            region_result.spans = []
            combined.absorb(region_result)
    finally:
        if plan is not None:
            # Restore (not clear): the service daemon installs a job-level
            # plan around the whole attempt ladder, and a nested region
            # execution must not wipe it out.
            fault.install(previous_plan)
    combined.metrics.backend = engine_backend.name
    if supervisor is not None:
        combined.metrics.runs_retried += supervisor.runs_retried
        combined.metrics.degraded_runs += supervisor.degraded_runs
    return combined


def render_script(
    translation: TranslationResult,
    optimized_graphs: List[DataflowGraph],
    reports: List[OptimizationReport],
    options: "EmitterOptions",
) -> str:
    """Unparse the AST, substituting parallel fragments for optimized regions."""
    # Deferred: repro.backend's package init imports this module for the
    # legacy re-exports, so a module-level import here would be circular.
    from repro.backend.shell_emitter import emit_parallel_script

    replacements: Dict[int, str] = {}
    for region, graph, report in zip(translation.regions, optimized_graphs, reports):
        if report.parallelized_count > 0:
            replacements[id(region.node)] = emit_parallel_script(graph, options).rstrip("\n")
    return render_with_replacements(translation.ast, replacements)


# ---------------------------------------------------------------------------
# AST rendering with region replacement
# ---------------------------------------------------------------------------


def render_with_replacements(node: Node, replacements: Dict[int, str]) -> str:
    """Unparse ``node``, substituting parallel fragments for optimized regions."""
    if id(node) in replacements:
        return replacements[id(node)]
    if isinstance(node, SequenceNode):
        return "\n".join(render_with_replacements(part, replacements) for part in node.parts)
    if isinstance(node, AndOr):
        pieces = [render_with_replacements(node.parts[0], replacements)]
        for operator, part in zip(node.operators, node.parts[1:]):
            pieces.append(f" {operator} {render_with_replacements(part, replacements)}")
        return "".join(pieces)
    if isinstance(node, BackgroundNode):
        return f"{render_with_replacements(node.body, replacements)} &"
    if isinstance(node, Subshell):
        return f"( {render_with_replacements(node.body, replacements)} )"
    if isinstance(node, BraceGroup):
        return "{ " + render_with_replacements(node.body, replacements) + "; }"
    if isinstance(node, ForLoop):
        items = " ".join(unparse_word(word) for word in node.items)
        header = f"for {node.variable} in {items}" if node.items else f"for {node.variable}"
        return f"{header}; do\n{render_with_replacements(node.body, replacements)}\ndone"
    if isinstance(node, WhileLoop):
        keyword = "until" if node.until else "while"
        return (
            f"{keyword} {render_with_replacements(node.condition, replacements)}; do\n"
            f"{render_with_replacements(node.body, replacements)}\ndone"
        )
    if isinstance(node, IfClause):
        text = (
            f"if {render_with_replacements(node.condition, replacements)}; then\n"
            f"{render_with_replacements(node.then_body, replacements)}\n"
        )
        if node.else_body is not None:
            text += f"else\n{render_with_replacements(node.else_body, replacements)}\n"
        return text + "fi"
    return unparse(node)
