"""``Pash`` — the single front door for compiling and running scripts.

The compilation pipeline has three fixed script-level stages, with the middle
one configurable per-graph through the pass manager
(:mod:`repro.transform.passes`):

1. *front-end* — parse the script and discover parallelizable regions
   (:func:`repro.dfg.builder.translate_script`), translating each into a
   dataflow graph;
2. *optimization* — run the configured pass pipeline
   (``split-insertion → parallelize → aggregation-lowering → eager-relays``)
   over every region's graph, collecting one
   :class:`~repro.transform.pipeline.OptimizationReport` per region;
3. *back-end* — unparse the script with every parallelized region replaced by
   its Fig.-3-style parallel instantiation.

The result is an inspectable :class:`~repro.api.artifact.CompiledScript`,
which can :meth:`~repro.api.artifact.CompiledScript.emit` shell text or
:meth:`~repro.api.artifact.CompiledScript.execute` on any engine backend.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.api.artifact import CompilationStats, CompiledScript, render_script
from repro.api.config import PashConfig
from repro.dfg.builder import translate_script
from repro.obs.tracer import NULL_TRACER, Tracer


class _HybridCompile:
    """Let ``compile`` work both as ``Pash.compile(src)`` and ``pash.compile(src)``.

    Called on the class, it binds to a fresh default-configured instance, so
    the README's ``Pash.compile(source, config)`` one-liner needs no setup.
    """

    def __get__(self, instance, owner):
        return (instance if instance is not None else owner())._compile


class Pash:
    """A configured compiler instance (and, optionally, an execution session).

    ``library`` is an optional :class:`~repro.annotations.library.AnnotationLibrary`
    overriding the standard parallelizability annotations.

    Used as a context manager, a ``Pash`` becomes a *session* owning a
    private persistent worker pool for the parallel backend::

        with Pash(PashConfig.paper_default(4, backend="parallel")) as pash:
            for script in scripts:
                pash.run(script)        # worker processes are reused
        # pool shut down deterministically here

    Outside a ``with`` block, parallel runs draw from the process-wide
    shared pool (:func:`repro.engine.pool.shared_pool`), so startup is
    amortized either way; the session form only adds deterministic teardown
    and isolation.
    """

    compile = _HybridCompile()

    def __init__(
        self,
        config: Optional[Any] = None,
        library: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = PashConfig.coerce(config)
        self.library = library
        #: The observability plane: one tracer covers every compile and run
        #: this instance performs.  Enabled by ``config.tracing`` (or by
        #: passing an explicit enabled tracer); export its spans with
        #: :mod:`repro.obs` (``export_chrome_trace(pash.tracer.spans, ...)``).
        if tracer is None:
            tracer = Tracer() if self.config.tracing else NULL_TRACER
        self.tracer = tracer
        self._pool = None
        self._session = False

    # -- session lifecycle -------------------------------------------------

    def __enter__(self) -> "Pash":
        self._session = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the session's worker pool (idempotent)."""
        self._session = False
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _session_pool(self):
        """The session-private pool, created lazily at first parallel run."""
        if not self._session:
            return None
        if self._pool is None or self._pool.closed:
            from repro.engine.pool import WorkerPool

            options = self.config.scheduler_options()
            self._pool = WorkerPool(
                start_method=options.start_method, size=options.pool_size
            )
        return self._pool

    def _compile(
        self,
        source: str,
        config: Optional[Any] = None,
        context: Optional[Any] = None,
        emitter_options: Optional[Any] = None,
    ) -> CompiledScript:
        """Compile ``source`` into its data-parallel equivalent.

        ``config`` overrides the instance configuration for this call;
        ``context`` is an optional shell expansion context; ``emitter_options``
        overrides the emission options derived from the config.
        """
        pash_config = self.config if config is None else PashConfig.coerce(config)
        tracer = self.tracer
        if not tracer.enabled and pash_config.tracing:
            # A per-call config turned tracing on: give this compilation (and
            # the artifact's executions) a live tracer of its own.
            tracer = Tracer()
        started = time.perf_counter()

        # Stage 1: front-end (parse + region discovery + DFG translation).
        with tracer.span("parse", "parse", source_bytes=len(source)) as parse_span:
            translation = translate_script(source, library=self.library, context=context)
            parse_span.set(
                regions=len(translation.regions), rejected=len(translation.rejected)
            )
        stats = CompilationStats(
            regions_found=len(translation.regions) + len(translation.rejected),
            regions_rejected=len(translation.rejected),
        )

        # Stage 2: the pass pipeline, once per region.
        pipeline = pash_config.pipeline()
        parallelization = pash_config.parallelization()
        optimized_graphs = []
        reports = []
        for region in translation.regions:
            graph = region.dfg
            report = pipeline.run(graph, parallelization, tracer=tracer)
            stats.record_report(report)
            optimized_graphs.append(graph)
            reports.append(report)
            stats.total_nodes += len(graph.nodes)
            if report.parallelized_count > 0:
                stats.regions_parallelized += 1

        # Stage 3: back-end (emit the parallel script text).
        options = emitter_options or pash_config.emitter_options()
        text = render_script(translation, optimized_graphs, reports, options)

        stats.compile_time_seconds = time.perf_counter() - started
        return CompiledScript(
            source=source,
            text=text,
            stats=stats,
            translation=translation,
            optimized_graphs=optimized_graphs,
            reports=reports,
            config=pash_config,
            tracer=tracer,
        )

    def run(
        self,
        source: str,
        backend: Optional[str] = None,
        environment: Optional[Any] = None,
        **backend_options: Any,
    ):
        """Compile ``source`` and execute it immediately (one-call form).

        With ``backend="jit"`` the compiled artifact's AST is driven by a
        :class:`~repro.jit.driver.JitDriver` instead (control flow executes
        in-process; each region compiles with live bindings); a session's
        private worker pool is shared with the driver's inner parallel
        engine, so worker processes persist across regions *and* scripts.
        """
        resolved = backend or self.config.backend
        uses_parallel = resolved == "parallel" or (
            resolved == "jit"
            and backend_options.get("inner_backend", self.config.jit_inner_backend)
            == "parallel"
        )
        if uses_parallel and "pool" not in backend_options:
            pool = self._session_pool()
            if pool is not None:
                backend_options["pool"] = pool
        if resolved == "jit" and self.library is not None:
            backend_options.setdefault("library", self.library)
        return self._compile(source).execute(
            backend=backend, environment=environment, **backend_options
        )

    #: ``run_script`` is the historical name (mirrors ``engine.run_script``).
    run_script = run


def compile(  # noqa: A001 - deliberate: the API's verb is `compile`
    source: str,
    config: Optional[Any] = None,
    library: Optional[Any] = None,
    context: Optional[Any] = None,
) -> CompiledScript:
    """Module-level convenience: ``repro.api.compile(source, config)``."""
    return Pash(config, library=library).compile(source, context=context)


def optimize(graph, config: Optional[Any] = None, tracer: Optional[Tracer] = None):
    """Run the configured pass pipeline over one translated graph, in place.

    Accepts a :class:`PashConfig`, a legacy
    :class:`~repro.transform.pipeline.ParallelizationConfig`, or ``None``
    (defaults); returns the :class:`~repro.transform.pipeline.OptimizationReport`.
    """
    pash_config = PashConfig.coerce(config)
    return pash_config.pipeline().run(graph, pash_config.parallelization(), tracer=tracer)


def run(
    source: str,
    config: Optional[Any] = None,
    backend: Optional[str] = None,
    environment: Optional[Any] = None,
    **backend_options: Any,
):
    """Translate, (optionally) optimize, and execute a whole shell script.

    With ``config=None`` the regions run *unoptimized* (the sequential graph
    shape) — the baseline the evaluation harness measures against.  Passing a
    config optimizes each region through the pass pipeline first.  Regions
    execute in order on the chosen backend, sharing one environment, exactly
    like running the script top to bottom.

    ``backend="jit"`` bypasses the AOT pipeline entirely: the script is
    driven by a :class:`~repro.jit.driver.JitDriver`, which executes control
    flow itself and compiles each region at the moment it is reached — so
    dynamic scripts (loops, runtime variables, command substitutions) run
    and parallelize instead of raising on untranslated regions.
    """
    from repro.api.artifact import (
        execute_graphs,
        execute_jit,
        rejection_error,
        resolve_backend,
    )

    pash_config = PashConfig.coerce(config) if config is not None else None
    backend, backend_options = resolve_backend(pash_config, backend, backend_options)
    tracer = Tracer() if pash_config is not None and pash_config.tracing else None
    if backend == "jit":
        if tracer is not None:
            backend_options.setdefault("tracer", tracer)
        return execute_jit(source, pash_config, environment, backend_options)

    translation = translate_script(source)
    if translation.rejected:
        raise rejection_error(translation.rejected)
    graphs = [region.dfg for region in translation.regions]
    if pash_config is not None:
        for graph in graphs:
            optimize(graph, pash_config, tracer=tracer)
    result = execute_graphs(
        graphs,
        backend,
        environment,
        backend_options,
        tracer=tracer,
        resilience=pash_config.resilience if pash_config is not None else None,
    )
    if tracer is not None:
        result.spans = list(tracer.spans)
    return result
