"""``repro.api`` — the library-first front door of the PaSh reproduction.

One config, one compile call, one inspectable artifact::

    from repro.api import Pash, PashConfig

    compiled = Pash.compile(
        "cat logs0.txt logs1.txt | grep error | sort | uniq -c",
        PashConfig.paper_default(width=8),
    )
    print(compiled.text)                      # the parallel shell script
    result = compiled.execute(backend="parallel")
    print(result.stdout)

The pieces, and where they live:

* :class:`PashConfig` (:mod:`repro.api.config`) — one frozen object carrying
  every knob: optimizer width/eager/split/fan-in, pass toggling, backend
  selection, scheduler options, and emitter options.  Round-trips through
  ``to_dict``/``from_dict`` so future caching layers can key on it.
* :class:`Pash` / :func:`compile` (:mod:`repro.api.pash`) — parse + region
  discovery, then the named pass pipeline per region
  (``split-insertion → parallelize → aggregation-lowering → eager-relays →
  fuse-stages``,
  see :mod:`repro.transform.passes`), then emission.
* :class:`CompiledScript` (:mod:`repro.api.artifact`) — the artifact: AST,
  regions, per-region DFGs and per-pass reports, ``.emit()`` for shell text,
  ``.execute()`` for any engine backend.
* :func:`run` — script-in, result-out execution (the harness's measuring
  entry point); :func:`optimize` — the pass pipeline over one graph.

The legacy entry points (``repro.compile_script``, ``repro.engine.run_script``)
remain importable but are deprecation shims over this package.
"""

from repro.api.artifact import CompilationStats, CompiledScript
from repro.api.config import (
    ClusterConfig,
    ObsConfig,
    PashConfig,
    ResilienceConfig,
    StreamingConfig,
)
from repro.api.pash import Pash, compile, optimize, run
from repro.transform.pipeline import EagerMode, SplitMode

__all__ = [
    "ClusterConfig",
    "CompilationStats",
    "CompiledScript",
    "EagerMode",
    "ObsConfig",
    "Pash",
    "PashConfig",
    "ResilienceConfig",
    "SplitMode",
    "StreamingConfig",
    "compile",
    "optimize",
    "run",
]
