"""The evaluation harness: regenerates every table and figure of §6.

* :mod:`repro.evaluation.harness` — shared plumbing (compile, simulate,
  correctness check) used by all experiments,
* :mod:`repro.evaluation.tables` — Table 1 (parallelizability study) and
  Table 2 (one-liner summary),
* :mod:`repro.evaluation.figures` — Fig. 7 (one-liner speedups across runtime
  configurations) and Fig. 8 (Unix50 speedups at 16x),
* :mod:`repro.evaluation.usecases` — §6.3 (NOAA weather) and §6.4 (Wikipedia
  indexing),
* :mod:`repro.evaluation.microbench` — §6.5 (parallel sort and GNU parallel).
"""

from repro.evaluation.harness import (
    BenchmarkRun,
    MeasuredRun,
    check_benchmark_correctness,
    measure_benchmark,
    measured_speedup,
    simulate_benchmark,
    speedup_for_width,
)
from repro.evaluation.tables import table1_rows, table2_rows
from repro.evaluation.figures import figure7_series, figure8_series
from repro.evaluation.usecases import noaa_usecase, wikipedia_usecase
from repro.evaluation.microbench import gnu_parallel_comparison, parallel_sort_comparison

__all__ = [
    "BenchmarkRun",
    "MeasuredRun",
    "check_benchmark_correctness",
    "figure7_series",
    "figure8_series",
    "gnu_parallel_comparison",
    "measure_benchmark",
    "measured_speedup",
    "noaa_usecase",
    "parallel_sort_comparison",
    "simulate_benchmark",
    "speedup_for_width",
    "table1_rows",
    "table2_rows",
    "wikipedia_usecase",
]
