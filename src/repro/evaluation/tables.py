"""Table generators: Table 1 (study) and Table 2 (one-liner summary)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.annotations.study import standard_study
from repro.api import Pash, PashConfig
from repro.workloads.base import BenchmarkScript
from repro.workloads.oneliners import ONE_LINERS


def table1_rows() -> List[Dict[str, object]]:
    """Rows of Table 1: parallelizability classes of Coreutils and POSIX."""
    return standard_study().table_rows()


def format_table1() -> str:
    """Plain-text rendering of Table 1."""
    return standard_study().format_table()


def table2_row(
    benchmark: BenchmarkScript, widths=(16, 64)
) -> Dict[str, object]:
    """One Table 2 row: structure, input size, node counts, compile times."""
    row: Dict[str, object] = {
        "script": benchmark.name,
        "structure": benchmark.structure,
        "input": benchmark.paper_input,
        "seq_time": benchmark.paper_seq_time,
        "highlights": benchmark.highlights,
    }
    for width in widths:
        compiled = Pash.compile(
            benchmark.script_for_width(width),
            PashConfig.paper_default(width),
        )
        row[f"nodes_{width}"] = compiled.node_count
        row[f"compile_time_{width}"] = round(compiled.stats.compile_time_seconds, 4)
    return row


def table2_rows(
    benchmarks: Optional[List[BenchmarkScript]] = None, widths=(16, 64)
) -> List[Dict[str, object]]:
    """All Table 2 rows."""
    return [table2_row(benchmark, widths) for benchmark in benchmarks or ONE_LINERS]


def format_table2(rows: Optional[List[Dict[str, object]]] = None, widths=(16, 64)) -> str:
    """Plain-text rendering of Table 2."""
    rows = rows or table2_rows(widths=widths)
    header = (
        f"{'Script':<18}{'Structure':<14}{'Input':<10}"
        + "".join(f"{'#Nodes(' + str(w) + ')':<12}" for w in widths)
        + "".join(f"{'Compile(' + str(w) + ')':<13}" for w in widths)
        + "Highlights"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        line = f"{row['script']:<18}{row['structure']:<14}{row['input']:<10}"
        line += "".join(f"{row[f'nodes_{w}']:<12}" for w in widths)
        line += "".join(f"{row[f'compile_time_{w}']:<13}" for w in widths)
        line += str(row["highlights"])
        lines.append(line)
    return "\n".join(lines)
