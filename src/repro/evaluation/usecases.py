"""The two large use cases: NOAA weather analysis (§6.3) and Wikipedia
web indexing (§6.4)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dfg.builder import translate_script
from repro.evaluation.harness import simulate_script
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.simulator.costs import default_cost_model
from repro.simulator.machine import MachineModel
from repro.api import PashConfig, optimize
from repro.workloads import noaa, wikipedia


def _simulate_script(
    script: str,
    input_lines: Dict[str, int],
    width: int,
    machine: Optional[MachineModel] = None,
    cost_model=None,
) -> Dict[str, float]:
    """Simulate sequential and PaSh execution of a script; return both times."""
    machine = machine or MachineModel.paper_testbed()
    cost_model = cost_model or default_cost_model()
    sequential, parallel, _ = simulate_script(
        script,
        input_lines,
        PashConfig.paper_default(width).parallelization(),
        machine=machine,
        cost_model=cost_model,
    )
    speedup = sequential.total_seconds / parallel.total_seconds if parallel.total_seconds else 0.0
    return {
        "sequential_seconds": round(sequential.total_seconds, 2),
        "parallel_seconds": round(parallel.total_seconds, 2),
        "speedup": round(speedup, 2),
    }


# ---------------------------------------------------------------------------
# NOAA weather analysis
# ---------------------------------------------------------------------------


def noaa_usecase(
    widths=(2, 10),
    stations_per_year: int = 2000,
    machine: Optional[MachineModel] = None,
) -> Dict[str, object]:
    """Simulate the Fig. 1 pipeline per year and report speedups per width.

    The paper reports 1.86x / 2.44x end-to-end speedup at 2x / 10x
    parallelism, with the max-temperature reduction phase benefiting most.
    """
    results: Dict[str, object] = {"widths": {}}
    input_lines = noaa.simulated_line_counts(stations=stations_per_year)
    # One year's pipeline is representative; the full script repeats it.
    script = noaa.per_year_pipeline(noaa.YEARS[0], stations_per_year)
    for width in widths:
        results["widths"][width] = _simulate_script(script, input_lines, width, machine)
    return results


def noaa_correctness(years: Optional[List[int]] = None, stations: int = 6) -> Dict[str, object]:
    """Run the NOAA pipeline sequentially and in parallel on a small dataset."""
    years = years or noaa.YEARS[:2]
    dataset = noaa.yearly_dataset(years, stations)

    sequential_outputs: List[str] = []
    parallel_outputs: List[str] = []
    for year in years:
        script = noaa.per_year_pipeline(year, stations)

        interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
        sequential_outputs.extend(interpreter.run_script(script))

        translation = translate_script(script)
        environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
        for region in translation.regions:
            optimize(region.dfg, PashConfig.paper_default(4))
            parallel_outputs.extend(DFGExecutor(environment).execute(region.dfg).stdout)

    return {
        "sequential": sequential_outputs,
        "parallel": parallel_outputs,
        "identical": sequential_outputs == parallel_outputs,
    }


# ---------------------------------------------------------------------------
# Wikipedia web indexing
# ---------------------------------------------------------------------------


def wikipedia_usecase(
    widths=(2, 16),
    url_count: int = 6000,
    machine: Optional[MachineModel] = None,
) -> Dict[str, object]:
    """Simulate the indexing pipeline; paper reports 1.97x / 12.7x at 2x / 16x."""
    results: Dict[str, object] = {"widths": {}}
    input_lines = {"urls.txt": url_count}
    script = wikipedia.indexing_script()
    for width in widths:
        results["widths"][width] = _simulate_script(script, input_lines, width, machine)
    return results


def wikipedia_correctness(pages: int = 24, width: int = 4) -> Dict[str, object]:
    """Check that the parallel indexing output matches the sequential output."""
    dataset = wikipedia.dataset(pages)
    script = wikipedia.indexing_script()

    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    interpreter.run_script(script)
    sequential_index = interpreter.state.filesystem.read("index.txt")

    translation = translate_script(script)
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
    for region in translation.regions:
        optimize(region.dfg, PashConfig.paper_default(width))
        DFGExecutor(environment).execute(region.dfg)
    parallel_index = environment.filesystem.read("index.txt")

    return {
        "sequential": sequential_index,
        "parallel": parallel_index,
        "identical": sequential_index == parallel_index,
    }
