"""Shared plumbing for the evaluation: compile, simulate, measure, check.

Two kinds of performance numbers coexist here:

* *simulated* (``simulate_benchmark``) — the discrete-event cost model used
  to regenerate the paper's figures at paper-scale inputs, and
* *measured* (``measure_benchmark``) — real wall-clock runs of the same
  scripts on the execution engine (``repro.engine``), over datasets small
  enough to execute, with per-node metrics from the worker processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.model import simple_record
from repro.api import PashConfig
from repro.dfg.builder import DFGBuilder, UntranslatableRegion
from repro.dfg.graph import DataflowGraph
from repro.dfg.regions import find_parallelizable_regions
from repro.engine.metrics import EngineMetrics
from repro.runtime.executor import ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.shell.parser import parse
from repro.simulator.costs import CostModel
from repro.simulator.machine import MachineModel
from repro.simulator.simulate import SimulationResult, simulate_script_graphs
from repro.transform.pipeline import ParallelizationConfig
from repro.workloads.base import BenchmarkScript


def timing_library() -> AnnotationLibrary:
    """An annotation library used only for *timing* rejected fragments.

    Commands PaSh refuses to parallelize (``awk``, ``sed -n``, ``nl``) still
    have to be accounted for when estimating a script's sequential running
    time.  This library reclassifies them as non-parallelizable pure commands
    — they translate into DFG nodes that the optimizer never touches — so the
    simulator can time the fragments that PaSh leaves untouched.
    """
    library = standard_library().copy()
    for name in ("awk", "sed", "nl", "echo", "seq", "file"):
        library.register(simple_record(name, ParallelizabilityClass.NON_PARALLELIZABLE_PURE))
    return library


@dataclass
class ScriptGraphs:
    """Sequential and parallel graph sets for one script."""

    sequential: List[DataflowGraph] = field(default_factory=list)
    parallel: List[DataflowGraph] = field(default_factory=list)
    node_count: int = 0
    compile_time_seconds: float = 0.0
    rejected_statements: int = 0


def script_graphs(script: str, config: ParallelizationConfig) -> ScriptGraphs:
    """Build the sequential and PaSh-parallel graph sets for ``script``.

    Every statement is translated with the lenient timing library for the
    sequential baseline.  Statements PaSh's (conservative, standard-library)
    front-end accepts are additionally optimized; statements it rejects are
    carried over unoptimized, exactly as the emitted script would leave them
    untouched.
    """
    # The discrete-event simulator models the paper's one-process-per-node
    # runtime; our post-paper stage fusion would misrepresent it, so the
    # simulated graph shapes pin it off (the engine's measured runs keep it).
    config = dataclasses.replace(PashConfig.coerce(config).parallelization(), fuse_stages=False)

    ast = parse(script)
    standard_builder = DFGBuilder(standard_library())
    lenient_builder = DFGBuilder(timing_library())

    result = ScriptGraphs()
    for candidate in find_parallelizable_regions(ast):
        try:
            baseline = lenient_builder.build_region(candidate).dfg
        except (UntranslatableRegion, Exception):  # noqa: BLE001 - conservative
            continue
        result.sequential.append(baseline.copy())

        try:
            region = standard_builder.build_region(candidate)
        except (UntranslatableRegion, Exception):  # noqa: BLE001 - conservative
            result.rejected_statements += 1
            result.parallel.append(baseline)
            continue
        report = api.optimize(region.dfg, config)
        result.compile_time_seconds += report.compile_time_seconds
        result.parallel.append(region.dfg)
    result.node_count = sum(len(graph.nodes) for graph in result.parallel)
    return result


@dataclass
class BenchmarkRun:
    """One simulated benchmark execution (sequential or parallel)."""

    name: str
    width: int
    configuration: str
    script: str
    node_count: int
    compile_time_seconds: float
    sequential_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.parallel_seconds


def simulate_script(
    script: str,
    input_lines: Dict[str, int],
    config: ParallelizationConfig,
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[SimulationResult, SimulationResult, ScriptGraphs]:
    """Simulate sequential and PaSh execution of a script.

    Returns (sequential result, parallel result, graphs).
    """
    machine = machine or MachineModel.paper_testbed()
    graphs = script_graphs(script, config)
    sequential = simulate_script_graphs(
        graphs.sequential, input_lines, machine=machine, cost_model=cost_model
    )
    parallel = simulate_script_graphs(
        graphs.parallel, input_lines, machine=machine, cost_model=cost_model, include_setup=True
    )
    return sequential, parallel, graphs


def simulate_benchmark(
    benchmark: BenchmarkScript,
    width: int,
    config: Optional[ParallelizationConfig] = None,
    configuration_name: str = "Par + Split",
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
) -> BenchmarkRun:
    """Simulate one benchmark at one width under one configuration."""
    machine = machine or MachineModel.paper_testbed()
    cost_model = cost_model or benchmark.cost_model()
    config = config or ParallelizationConfig.paper_default(width)

    script = benchmark.script_for_width(width)
    input_lines = benchmark.input_line_counts(width)

    sequential, parallel, graphs = simulate_script(
        script, input_lines, config, machine=machine, cost_model=cost_model
    )
    return BenchmarkRun(
        name=benchmark.name,
        width=width,
        configuration=configuration_name,
        script=script,
        node_count=graphs.node_count,
        compile_time_seconds=graphs.compile_time_seconds,
        sequential_seconds=sequential.total_seconds,
        parallel_seconds=parallel.total_seconds,
    )


def speedup_for_width(
    benchmark: BenchmarkScript,
    width: int,
    config: Optional[ParallelizationConfig] = None,
    **kwargs,
) -> float:
    """Convenience wrapper returning only the speedup."""
    return simulate_benchmark(benchmark, width, config, **kwargs).speedup


# ---------------------------------------------------------------------------
# Measured (wall-clock) execution on the engine
# ---------------------------------------------------------------------------


@dataclass
class MeasuredRun:
    """One real execution of a benchmark script on an engine backend."""

    name: str
    width: int
    backend: str
    elapsed_seconds: float
    stdout_lines: int
    output_lines: int
    metrics: EngineMetrics


def measure_benchmark(
    benchmark: BenchmarkScript,
    width: int,
    backend: str = "parallel",
    lines: int = 2400,
    config: Optional[ParallelizationConfig] = None,
    environment: Optional[ExecutionEnvironment] = None,
    **backend_options,
) -> MeasuredRun:
    """Execute one benchmark for real and report measured wall-clock time.

    ``config=None`` runs the unoptimized graphs (the sequential shape);
    passing a :class:`ParallelizationConfig` measures the parallelized
    graphs on the chosen backend.
    """
    if environment is None:
        dataset = benchmark.correctness_dataset(width, lines)
        environment = ExecutionEnvironment(
            filesystem=VirtualFileSystem({name: list(data) for name, data in dataset.items()})
        )
    preexisting = set(environment.filesystem.names())
    result = api.run(
        benchmark.script_for_width(width),
        config=config,
        backend=backend,
        environment=environment,
        **backend_options,
    )
    produced = {name: data for name, data in result.files.items() if name not in preexisting}
    return MeasuredRun(
        name=benchmark.name,
        width=width,
        backend=backend,
        elapsed_seconds=result.elapsed_seconds,
        stdout_lines=len(result.stdout),
        output_lines=sum(len(data) for data in produced.values()),
        metrics=result.metrics,
    )


def measured_speedup(
    benchmark: BenchmarkScript,
    width: int,
    lines: int = 2400,
    config: Optional[ParallelizationConfig] = None,
    backend: str = "parallel",
    **backend_options,
) -> Tuple[MeasuredRun, MeasuredRun, float]:
    """Wall-clock comparison: interpreter baseline vs a real engine backend.

    Returns (baseline run, measured run, speedup).  ``backend`` defaults to
    the parallel engine; ``"jit"`` measures the runtime-compiling driver
    instead.  Unlike the simulator's Fig. 7 numbers, these are honest
    measurements on this machine's cores.
    """
    config = config or PashConfig.paper_default(width)
    baseline = measure_benchmark(benchmark, width, backend="interpreter", lines=lines)
    parallel = measure_benchmark(
        benchmark, width, backend=backend, lines=lines, config=config, **backend_options
    )
    if parallel.elapsed_seconds <= 0:
        return baseline, parallel, float("inf")
    return baseline, parallel, baseline.elapsed_seconds / parallel.elapsed_seconds


# ---------------------------------------------------------------------------
# Correctness checking
# ---------------------------------------------------------------------------


@dataclass
class CorrectnessReport:
    """Outcome of checking parallel output against the sequential baseline."""

    name: str
    width: int
    identical: bool
    sequential_output: List[str] = field(default_factory=list)
    parallel_output: List[str] = field(default_factory=list)
    differing_lines: int = 0


def check_benchmark_correctness(
    benchmark: BenchmarkScript,
    width: int = 4,
    lines: int = 1200,
    config: Optional[ParallelizationConfig] = None,
    backend: str = "interpreter",
) -> CorrectnessReport:
    """Execute a benchmark sequentially and in parallel over a small dataset.

    The sequential baseline runs on the shell interpreter; the parallelized
    graphs run on the chosen engine backend (``interpreter`` keeps the
    historical in-process check, ``parallel`` exercises the multiprocess
    engine).  The comparison covers stdout plus every file the script writes.
    """
    config = config or PashConfig.paper_default(width)
    dataset = benchmark.correctness_dataset(width, lines)
    script = benchmark.script_for_width(width)

    sequential_files, sequential_stdout = _run_sequential(script, dataset)
    parallel_files, parallel_stdout = _run_parallel(script, dataset, config, backend)

    sequential_all = sequential_stdout + _flatten(sequential_files)
    parallel_all = parallel_stdout + _flatten(parallel_files)
    differing = sum(1 for a, b in zip(sequential_all, parallel_all) if a != b)
    differing += abs(len(sequential_all) - len(parallel_all))

    return CorrectnessReport(
        name=benchmark.name,
        width=width,
        identical=sequential_all == parallel_all,
        sequential_output=sequential_all,
        parallel_output=parallel_all,
        differing_lines=differing,
    )


def _flatten(files: Dict[str, List[str]]) -> List[str]:
    flattened: List[str] = []
    for name in sorted(files):
        flattened.append(f"== {name} ==")
        flattened.extend(files[name])
    return flattened


def _run_sequential(script: str, dataset: Dict[str, List[str]]):
    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    stdout = interpreter.run_script(script)
    files = {
        name: interpreter.state.filesystem.read(name)
        for name in interpreter.state.filesystem.names()
        if name not in dataset
    }
    return files, stdout


def _run_parallel(
    script: str,
    dataset: Dict[str, List[str]],
    config: ParallelizationConfig,
    backend: str = "interpreter",
):
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
    result = api.run(script, config=config, backend=backend, environment=environment)
    files = {
        name: environment.filesystem.read(name)
        for name in environment.filesystem.names()
        if name not in dataset
    }
    return files, result.stdout
