"""Shared plumbing for the evaluation: compile, simulate, check correctness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.annotations.classes import ParallelizabilityClass
from repro.annotations.library import AnnotationLibrary, standard_library
from repro.annotations.model import simple_record
from repro.dfg.builder import DFGBuilder, UntranslatableRegion, translate_script
from repro.dfg.graph import DataflowGraph
from repro.dfg.regions import find_parallelizable_regions
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.shell.parser import parse
from repro.simulator.costs import CostModel
from repro.simulator.machine import MachineModel
from repro.simulator.simulate import SimulationResult, simulate_script_graphs
from repro.transform.pipeline import ParallelizationConfig, optimize_graph
from repro.workloads.base import BenchmarkScript


def timing_library() -> AnnotationLibrary:
    """An annotation library used only for *timing* rejected fragments.

    Commands PaSh refuses to parallelize (``awk``, ``sed -n``, ``nl``) still
    have to be accounted for when estimating a script's sequential running
    time.  This library reclassifies them as non-parallelizable pure commands
    — they translate into DFG nodes that the optimizer never touches — so the
    simulator can time the fragments that PaSh leaves untouched.
    """
    library = standard_library().copy()
    for name in ("awk", "sed", "nl", "echo", "seq", "file"):
        library.register(simple_record(name, ParallelizabilityClass.NON_PARALLELIZABLE_PURE))
    return library


@dataclass
class ScriptGraphs:
    """Sequential and parallel graph sets for one script."""

    sequential: List[DataflowGraph] = field(default_factory=list)
    parallel: List[DataflowGraph] = field(default_factory=list)
    node_count: int = 0
    compile_time_seconds: float = 0.0
    rejected_statements: int = 0


def script_graphs(script: str, config: ParallelizationConfig) -> ScriptGraphs:
    """Build the sequential and PaSh-parallel graph sets for ``script``.

    Every statement is translated with the lenient timing library for the
    sequential baseline.  Statements PaSh's (conservative, standard-library)
    front-end accepts are additionally optimized; statements it rejects are
    carried over unoptimized, exactly as the emitted script would leave them
    untouched.
    """
    ast = parse(script)
    standard_builder = DFGBuilder(standard_library())
    lenient_builder = DFGBuilder(timing_library())

    result = ScriptGraphs()
    for candidate in find_parallelizable_regions(ast):
        try:
            baseline = lenient_builder.build_region(candidate).dfg
        except (UntranslatableRegion, Exception):  # noqa: BLE001 - conservative
            continue
        result.sequential.append(baseline.copy())

        try:
            region = standard_builder.build_region(candidate)
        except (UntranslatableRegion, Exception):  # noqa: BLE001 - conservative
            result.rejected_statements += 1
            result.parallel.append(baseline)
            continue
        report = optimize_graph(region.dfg, config)
        result.compile_time_seconds += report.compile_time_seconds
        result.parallel.append(region.dfg)
    result.node_count = sum(len(graph.nodes) for graph in result.parallel)
    return result


@dataclass
class BenchmarkRun:
    """One simulated benchmark execution (sequential or parallel)."""

    name: str
    width: int
    configuration: str
    script: str
    node_count: int
    compile_time_seconds: float
    sequential_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.parallel_seconds


def simulate_script(
    script: str,
    input_lines: Dict[str, int],
    config: ParallelizationConfig,
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[SimulationResult, SimulationResult, ScriptGraphs]:
    """Simulate sequential and PaSh execution of a script.

    Returns (sequential result, parallel result, graphs).
    """
    machine = machine or MachineModel.paper_testbed()
    graphs = script_graphs(script, config)
    sequential = simulate_script_graphs(
        graphs.sequential, input_lines, machine=machine, cost_model=cost_model
    )
    parallel = simulate_script_graphs(
        graphs.parallel, input_lines, machine=machine, cost_model=cost_model, include_setup=True
    )
    return sequential, parallel, graphs


def simulate_benchmark(
    benchmark: BenchmarkScript,
    width: int,
    config: Optional[ParallelizationConfig] = None,
    configuration_name: str = "Par + Split",
    machine: Optional[MachineModel] = None,
    cost_model: Optional[CostModel] = None,
) -> BenchmarkRun:
    """Simulate one benchmark at one width under one configuration."""
    machine = machine or MachineModel.paper_testbed()
    cost_model = cost_model or benchmark.cost_model()
    config = config or ParallelizationConfig.paper_default(width)

    script = benchmark.script_for_width(width)
    input_lines = benchmark.input_line_counts(width)

    sequential, parallel, graphs = simulate_script(
        script, input_lines, config, machine=machine, cost_model=cost_model
    )
    return BenchmarkRun(
        name=benchmark.name,
        width=width,
        configuration=configuration_name,
        script=script,
        node_count=graphs.node_count,
        compile_time_seconds=graphs.compile_time_seconds,
        sequential_seconds=sequential.total_seconds,
        parallel_seconds=parallel.total_seconds,
    )


def speedup_for_width(
    benchmark: BenchmarkScript,
    width: int,
    config: Optional[ParallelizationConfig] = None,
    **kwargs,
) -> float:
    """Convenience wrapper returning only the speedup."""
    return simulate_benchmark(benchmark, width, config, **kwargs).speedup


# ---------------------------------------------------------------------------
# Correctness checking
# ---------------------------------------------------------------------------


@dataclass
class CorrectnessReport:
    """Outcome of checking parallel output against the sequential baseline."""

    name: str
    width: int
    identical: bool
    sequential_output: List[str] = field(default_factory=list)
    parallel_output: List[str] = field(default_factory=list)
    differing_lines: int = 0


def check_benchmark_correctness(
    benchmark: BenchmarkScript,
    width: int = 4,
    lines: int = 1200,
    config: Optional[ParallelizationConfig] = None,
) -> CorrectnessReport:
    """Execute a benchmark sequentially and in parallel over a small dataset.

    Both executions run in-process over the command substrate; the comparison
    covers stdout plus every file the script writes.
    """
    config = config or ParallelizationConfig.paper_default(width)
    dataset = benchmark.correctness_dataset(width, lines)
    script = benchmark.script_for_width(width)

    sequential_files, sequential_stdout = _run_sequential(script, dataset)
    parallel_files, parallel_stdout = _run_parallel(script, dataset, config)

    sequential_all = sequential_stdout + _flatten(sequential_files)
    parallel_all = parallel_stdout + _flatten(parallel_files)
    differing = sum(1 for a, b in zip(sequential_all, parallel_all) if a != b)
    differing += abs(len(sequential_all) - len(parallel_all))

    return CorrectnessReport(
        name=benchmark.name,
        width=width,
        identical=sequential_all == parallel_all,
        sequential_output=sequential_all,
        parallel_output=parallel_all,
        differing_lines=differing,
    )


def _flatten(files: Dict[str, List[str]]) -> List[str]:
    flattened: List[str] = []
    for name in sorted(files):
        flattened.append(f"== {name} ==")
        flattened.extend(files[name])
    return flattened


def _run_sequential(script: str, dataset: Dict[str, List[str]]):
    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    stdout = interpreter.run_script(script)
    files = {
        name: interpreter.state.filesystem.read(name)
        for name in interpreter.state.filesystem.names()
        if name not in dataset
    }
    return files, stdout


def _run_parallel(script: str, dataset: Dict[str, List[str]], config: ParallelizationConfig):
    translation = translate_script(script)
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
    stdout: List[str] = []
    for region in translation.regions:
        graph = region.dfg
        optimize_graph(graph, config)
        result = DFGExecutor(environment).execute(graph)
        stdout.extend(result.stdout)
    files = {
        name: environment.filesystem.read(name)
        for name in environment.filesystem.names()
        if name not in dataset
    }
    return files, stdout
