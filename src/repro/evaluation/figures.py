"""Figure generators: Fig. 7 (one-liner speedups) and Fig. 8 (Unix50)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.api import PashConfig
from repro.simulator.machine import MachineModel
from repro.transform.pipeline import ParallelizationConfig, relevant_configurations
from repro.evaluation.harness import simulate_benchmark, simulate_script
from repro.workloads.base import BenchmarkScript
from repro.workloads.oneliners import ONE_LINERS
from repro.workloads.unix50 import UNIX50_PIPELINES, Unix50Pipeline

#: Parallelism levels plotted in Fig. 7.
FIG7_WIDTHS = (2, 4, 8, 16, 32, 64)


def figure7_series(
    benchmark: BenchmarkScript,
    widths: Iterable[int] = FIG7_WIDTHS,
    configurations: Optional[Dict[str, object]] = None,
    machine: Optional[MachineModel] = None,
) -> Dict[str, Dict[int, float]]:
    """Speedup series for one benchmark: {configuration: {width: speedup}}."""
    machine = machine or MachineModel.paper_testbed()
    series: Dict[str, Dict[int, float]] = {}
    for width in widths:
        named_configs = configurations or relevant_configurations(width)
        for name, config in named_configs.items():
            if not isinstance(config, ParallelizationConfig):
                continue
            run = simulate_benchmark(
                benchmark, width, config, configuration_name=name, machine=machine
            )
            series.setdefault(name, {})[width] = round(run.speedup, 2)
    return series


def figure7_all(
    benchmarks: Optional[List[BenchmarkScript]] = None,
    widths: Iterable[int] = FIG7_WIDTHS,
    machine: Optional[MachineModel] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Fig. 7 data for every one-liner."""
    return {
        benchmark.name: figure7_series(benchmark, widths, machine=machine)
        for benchmark in benchmarks or ONE_LINERS
    }


def best_configuration_speedups(
    benchmarks: Optional[List[BenchmarkScript]] = None,
    widths: Iterable[int] = FIG7_WIDTHS,
    machine: Optional[MachineModel] = None,
) -> Dict[int, float]:
    """Average best-configuration speedup per width (paper: 1.97...13.47)."""
    benchmarks = benchmarks or ONE_LINERS
    totals: Dict[int, List[float]] = {width: [] for width in widths}
    for benchmark in benchmarks:
        series = figure7_series(benchmark, widths, machine=machine)
        for width in widths:
            best = max(values.get(width, 0.0) for values in series.values())
            totals[width].append(best)
    return {
        width: round(sum(values) / len(values), 2) if values else 0.0
        for width, values in totals.items()
    }


# ---------------------------------------------------------------------------
# Figure 8 — Unix50
# ---------------------------------------------------------------------------


def figure8_point(
    pipeline: Unix50Pipeline,
    width: int = 16,
    machine: Optional[MachineModel] = None,
) -> Dict[str, float]:
    """Speedup and sequential time for one Unix50 pipeline at one width."""
    machine = machine or MachineModel.paper_testbed()
    script = pipeline.script_for_width(width)
    input_lines = pipeline.input_line_counts(width)

    sequential, parallel, _ = simulate_script(
        script, input_lines, PashConfig.paper_default(width).parallelization(), machine=machine
    )
    speedup = sequential.total_seconds / parallel.total_seconds if parallel.total_seconds else 0.0
    return {
        "index": pipeline.index,
        "description": pipeline.description,
        "expected_group": pipeline.expected_group,
        "sequential_seconds": round(sequential.total_seconds, 3),
        "parallel_seconds": round(parallel.total_seconds, 3),
        "speedup": round(speedup, 2),
    }


def figure8_series(
    width: int = 16,
    pipelines: Optional[List[Unix50Pipeline]] = None,
    machine: Optional[MachineModel] = None,
) -> List[Dict[str, float]]:
    """Fig. 8: speedup of every Unix50 pipeline at the given width."""
    return [
        figure8_point(pipeline, width, machine)
        for pipeline in pipelines or UNIX50_PIPELINES
    ]


def figure8_summary(points: Optional[List[Dict[str, float]]] = None) -> Dict[str, float]:
    """Average / median / weighted-average speedups (paper: 5.49 / 6.07 / 5.75)."""
    points = points or figure8_series()
    speedups = [point["speedup"] for point in points]
    speedups_sorted = sorted(speedups)
    middle = len(speedups_sorted) // 2
    if len(speedups_sorted) % 2:
        median = speedups_sorted[middle]
    else:
        median = (speedups_sorted[middle - 1] + speedups_sorted[middle]) / 2
    total_time = sum(point["sequential_seconds"] for point in points)
    weighted = (
        sum(point["speedup"] * point["sequential_seconds"] for point in points) / total_time
        if total_time
        else 0.0
    )
    return {
        "average": round(sum(speedups) / len(speedups), 2),
        "median": round(median, 2),
        "weighted_average": round(weighted, 2),
    }
