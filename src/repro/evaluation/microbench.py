"""The §6.5 micro-benchmarks: parallel sort and GNU parallel.

Both comparators are modelled rather than invoked (GNU sort's ``--parallel``
flag and GNU ``parallel`` are not available offline), but the models follow
the mechanisms the paper describes: ``sort --parallel`` multi-threads the
sorting phase while keeping a single merge/write phase, and GNU ``parallel``
either targets one stage (correct, limited benefit) or splits the whole
pipeline into independent per-chunk executions (fast but incorrect for
stateful stages).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.commands import standard_registry
from repro.dfg.builder import translate_script
from repro.runtime.executor import DFGExecutor, ExecutionEnvironment
from repro.runtime.interpreter import ShellInterpreter
from repro.runtime.streams import VirtualFileSystem
from repro.simulator.costs import default_cost_model
from repro.simulator.machine import MachineModel
from repro.simulator.simulate import simulate_graph
from repro.api import EagerMode, PashConfig, SplitMode, optimize
from repro.workloads import text
from repro.workloads.base import chunk_names, chunked_line_counts


# ---------------------------------------------------------------------------
# Parallel sort: PaSh vs `sort --parallel`
# ---------------------------------------------------------------------------


def _pash_sort_time(
    width: int,
    total_lines: int,
    eager: bool,
    machine: MachineModel,
) -> float:
    """Simulated time of a single `sort` parallelized by PaSh."""
    chunks = chunk_names(width)
    script = "cat " + " ".join(chunks) + " | sort > out.txt"
    input_lines = chunked_line_counts(total_lines, width)
    translation = translate_script(script)
    graph = translation.regions[0].dfg
    config = PashConfig(
        width=width,
        eager=EagerMode.EAGER if eager else EagerMode.NONE,
        split=SplitMode.NONE,
    )
    optimize(graph, config)
    return simulate_graph(graph, input_lines, machine=machine, include_setup=True).total_seconds


def _gnu_parallel_sort_time(threads: int, total_lines: int, machine: MachineModel) -> float:
    """Model of `sort --parallel=<threads>`.

    The sorting phase scales with the thread count up to a limited internal
    scalability (memory bandwidth and merge locking), while the final merge
    and output phase stays single-threaded.
    """
    cost = default_cost_model().command_costs["sort"]
    sort_work = cost.seconds_per_line * total_lines * math.log2(max(total_lines, 2))
    effective_threads = min(threads, 16) ** 0.7
    merge_phase = 1.0e-6 * total_lines
    return machine.sequential_setup_seconds + sort_work / max(effective_threads, 1.0) + merge_phase


def parallel_sort_comparison(
    widths=(4, 8, 16, 32, 64),
    total_lines: int = 100_000_000,
    machine: Optional[MachineModel] = None,
) -> List[Dict[str, float]]:
    """Speedups of PaSh sort (with and without eager) and `sort --parallel`.

    The GNU baseline is given twice the parallelism of PaSh, as in the paper
    (to account for PaSh's additional merge processes).
    """
    machine = machine or MachineModel.paper_testbed()
    sequential = _gnu_parallel_sort_time(1, total_lines, machine)
    rows = []
    for width in widths:
        pash = _pash_sort_time(width, total_lines, eager=True, machine=machine)
        pash_no_eager = _pash_sort_time(width, total_lines, eager=False, machine=machine)
        gnu = _gnu_parallel_sort_time(min(2 * width, 127), total_lines, machine)
        rows.append(
            {
                "width": width,
                "pash": round(sequential / pash, 2),
                "pash_no_eager": round(sequential / pash_no_eager, 2),
                "sort_parallel": round(sequential / gnu, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# GNU parallel on a small bio-informatics-style pipeline
# ---------------------------------------------------------------------------

#: The pipeline: quality filtering, normalization, a single expensive stage,
#: then aggregation — the 4th stage dominates, as in the paper's script.
_BIO_PIPELINE = (
    "| grep -v lights | lowercase | word-stem | sort | uniq -c | sort -rn"
)


def _bio_script(chunks: List[str]) -> str:
    return "cat " + " ".join(chunks) + " " + _BIO_PIPELINE


def _bio_dataset(lines: int, width: int) -> Dict[str, List[str]]:
    files = {}
    per_chunk = lines // width
    for index, name in enumerate(chunk_names(width)):
        files[name] = text.text_lines(per_chunk, seed=index + 500)
    return files


def _simulated_times(width: int, total_lines: int, machine: MachineModel) -> Dict[str, float]:
    cost_model = default_cost_model().override("word-stem", seconds_per_line=2e-5)
    input_lines = chunked_line_counts(total_lines, width)
    script = _bio_script(chunk_names(width))
    translation = translate_script(script)

    sequential = simulate_graph(
        translation.regions[0].dfg.copy(), input_lines, machine=machine, cost_model=cost_model
    ).total_seconds

    graph = translation.regions[0].dfg
    optimize(graph, PashConfig.paper_default(width))
    pash = simulate_graph(
        graph, input_lines, machine=machine, cost_model=cost_model, include_setup=True
    ).total_seconds

    # GNU parallel applied (correctly) to the dominant stage only: that stage
    # scales, everything else remains sequential.  The stage sees the lines
    # that survive the initial filter (selectivity ~0.75), and it cannot
    # account for more time than the whole pipeline.
    stem_cost = min(2e-5 * total_lines * 0.75, 0.8 * sequential)
    single_stage = sequential - stem_cost * (1 - 1.0 / width) + machine.setup_seconds

    # GNU parallel sprinkled over the whole pipeline: every chunk runs the
    # complete pipeline independently.  Its default block splitting is coarse
    # and imbalanced, so the effective parallelism saturates early...
    naive = sequential / min(width, 4) + machine.setup_seconds
    return {
        "sequential": sequential,
        "pash": pash,
        "single_stage": single_stage,
        "naive": naive,
    }


def naive_parallel_incorrectness(lines: int = 1600, width: int = 8) -> Dict[str, object]:
    """...but the naive strategy breaks the output.

    Executes the pipeline sequentially and with the naive per-chunk strategy
    over real (small) data and reports the fraction of differing output lines
    — the paper observes 92% difference.
    """
    dataset = _bio_dataset(lines, width)
    script = _bio_script(chunk_names(width))

    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    sequential_output = interpreter.run_script(script)

    registry = standard_registry()
    naive_output: List[str] = []
    for name in chunk_names(width):
        # Each chunk independently runs the full pipeline (what careless
        # `parallel` invocations do), then outputs are concatenated.
        chunk_interpreter = ShellInterpreter(
            filesystem=VirtualFileSystem({name: dataset[name]}), registry=registry
        )
        naive_output.extend(chunk_interpreter.run_script("cat " + name + " " + _BIO_PIPELINE))

    length = max(len(sequential_output), len(naive_output), 1)
    differing = sum(
        1
        for index in range(length)
        if (sequential_output[index] if index < len(sequential_output) else None)
        != (naive_output[index] if index < len(naive_output) else None)
    )
    return {
        "sequential_lines": len(sequential_output),
        "naive_lines": len(naive_output),
        "differing_fraction": round(differing / length, 3),
        "identical": sequential_output == naive_output,
    }


def pash_bio_correctness(lines: int = 1600, width: int = 8) -> bool:
    """PaSh's transformation of the same pipeline is output-identical."""
    dataset = _bio_dataset(lines, width)
    script = _bio_script(chunk_names(width))

    interpreter = ShellInterpreter(filesystem=VirtualFileSystem(dict(dataset)))
    sequential_output = interpreter.run_script(script)

    translation = translate_script(script)
    environment = ExecutionEnvironment(filesystem=VirtualFileSystem(dict(dataset)))
    parallel_output: List[str] = []
    for region in translation.regions:
        optimize(region.dfg, PashConfig.paper_default(width))
        parallel_output.extend(DFGExecutor(environment).execute(region.dfg).stdout)
    return sequential_output == parallel_output


def gnu_parallel_comparison(
    total_lines: int = 6_000_000,
    width: int = 16,
    machine: Optional[MachineModel] = None,
) -> Dict[str, object]:
    """The full §6.5 GNU parallel comparison.

    Reports simulated speedups for PaSh, single-stage GNU parallel, and the
    naive whole-pipeline GNU parallel, plus the measured output divergence of
    the naive strategy (the paper reports 4.3x, 1.8x, 3.2x, and 92%).
    """
    machine = machine or MachineModel.paper_testbed()
    times = _simulated_times(width, total_lines, machine)
    incorrectness = naive_parallel_incorrectness()
    return {
        "sequential_seconds": round(times["sequential"], 2),
        "pash_speedup": round(times["sequential"] / times["pash"], 2),
        "single_stage_speedup": round(times["sequential"] / times["single_stage"], 2),
        "naive_speedup": round(times["sequential"] / times["naive"], 2),
        "naive_differing_fraction": incorrectness["differing_fraction"],
        "pash_output_identical": pash_bio_correctness(),
    }
