"""Tokenizer for the POSIX shell subset.

The lexer produces a flat stream of tokens.  Word tokens carry a parsed
:class:`~repro.shell.ast_nodes.Word` value so that quoting, parameter
expansion, and command substitution are resolved in a single place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.shell.ast_nodes import CommandSubstitution, LiteralPart, ParameterPart, Word


class LexError(ValueError):
    """Raised when the input cannot be tokenized."""


class TokenKind(enum.Enum):
    """Kinds of tokens produced by :func:`tokenize`."""

    WORD = "word"
    PIPE = "|"
    AND_IF = "&&"
    OR_IF = "||"
    SEMI = ";"
    AMP = "&"
    NEWLINE = "newline"
    LPAREN = "("
    RPAREN = ")"
    REDIRECT = "redirect"
    EOF = "eof"


@dataclass
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    word: Optional[Word] = None
    position: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.name}, {self.text!r})"


_OPERATOR_STARTERS = "|&;()<>\n"
_REDIRECT_OPS = ("2>>", "2>&1", ">>", "2>", ">&", "<&", "&>", ">", "<")


class _Lexer:
    """Stateful cursor over the source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.tokens: List[Token] = []

    # -- low-level helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        self.pos += count
        return text

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    # -- top level ----------------------------------------------------------

    def run(self) -> List[Token]:
        while not self._at_end():
            char = self._peek()
            if char in (" ", "\t"):
                self._advance()
            elif char == "#":
                self._skip_comment()
            elif char == "\\" and self._peek(1) == "\n":
                self._advance(2)
            elif char == "\n":
                self._advance()
                self._emit(TokenKind.NEWLINE, "\n")
            elif char in _OPERATOR_STARTERS or (
                char.isdigit() and self._peek(1) in (">", "<") and self._is_fd_redirect()
            ):
                self._lex_operator()
            else:
                self._lex_word()
        self._emit(TokenKind.EOF, "")
        return self.tokens

    def _emit(self, kind: TokenKind, text: str, word: Optional[Word] = None) -> None:
        self.tokens.append(Token(kind, text, word=word, position=self.pos))

    def _skip_comment(self) -> None:
        while not self._at_end() and self._peek() != "\n":
            self._advance()

    def _is_fd_redirect(self) -> bool:
        """True when the cursor sits at an ``N>``-style redirect (not a word)."""
        # Only treat a leading digit as a file descriptor when it is
        # immediately followed by a redirect operator and preceded by
        # whitespace or start-of-input (POSIX rule 2).
        if self.pos > 0 and self.source[self.pos - 1] not in " \t\n;|&(":
            return False
        return True

    # -- operators ----------------------------------------------------------

    def _lex_operator(self) -> None:
        char = self._peek()
        if char.isdigit():
            for op in (">&1", ">>", ">&", ">", "<&", "<"):
                candidate = char + op
                if self.source.startswith(candidate, self.pos):
                    self._advance(len(candidate))
                    self._emit(TokenKind.REDIRECT, candidate)
                    return
            # Not actually a redirect; fall back to lexing a word.
            self._lex_word()
            return
        two = self.source[self.pos : self.pos + 2]
        if two == "&&":
            self._advance(2)
            self._emit(TokenKind.AND_IF, "&&")
        elif two == "||":
            self._advance(2)
            self._emit(TokenKind.OR_IF, "||")
        elif self.source.startswith("2>&1", self.pos):
            self._advance(4)
            self._emit(TokenKind.REDIRECT, "2>&1")
        elif two in (">>", "2>", ">&", "<&", "&>"):
            self._advance(2)
            self._emit(TokenKind.REDIRECT, two)
        elif char == "|":
            self._advance()
            self._emit(TokenKind.PIPE, "|")
        elif char == "&":
            self._advance()
            self._emit(TokenKind.AMP, "&")
        elif char == ";":
            self._advance()
            self._emit(TokenKind.SEMI, ";")
        elif char == "(":
            self._advance()
            self._emit(TokenKind.LPAREN, "(")
        elif char == ")":
            self._advance()
            self._emit(TokenKind.RPAREN, ")")
        elif char in (">", "<"):
            self._advance()
            self._emit(TokenKind.REDIRECT, char)
        elif char == "\n":
            self._advance()
            self._emit(TokenKind.NEWLINE, "\n")
        else:  # pragma: no cover - defensive
            raise LexError(f"unexpected operator character {char!r} at {self.pos}")

    # -- words --------------------------------------------------------------

    def _lex_word(self) -> None:
        parts = []
        literal: List[str] = []

        def flush(quoted: bool = False) -> None:
            if literal:
                parts.append(LiteralPart("".join(literal), quoted=quoted))
                literal.clear()

        while not self._at_end():
            char = self._peek()
            if char in " \t\n" or (char in "|&;()<>" and not literal_is_open_brace(literal)):
                break
            if char == "'":
                flush()
                self._advance()
                parts.append(LiteralPart(self._read_until("'"), quoted=True))
            elif char == '"':
                flush()
                self._advance()
                parts.extend(self._lex_double_quoted())
            elif char == "\\":
                self._advance()
                if not self._at_end():
                    literal.append(self._advance())
            elif char == "$":
                flush()
                parts.append(self._lex_dollar(quoted=False))
            elif char == "`":
                flush()
                self._advance()
                parts.append(CommandSubstitution(self._read_until("`")))
            else:
                literal.append(self._advance())
        flush()
        if not parts:
            raise LexError(f"empty word at position {self.pos}")
        self._emit(TokenKind.WORD, "".join(str(Word(parts)).splitlines()), Word(parts))

    def _read_until(self, terminator: str) -> str:
        collected: List[str] = []
        while not self._at_end() and self._peek() != terminator:
            collected.append(self._advance())
        if self._at_end():
            raise LexError(f"unterminated {terminator!r} quote")
        self._advance()
        return "".join(collected)

    def _lex_double_quoted(self) -> List:
        parts = []
        literal: List[str] = []

        def flush() -> None:
            if literal:
                parts.append(LiteralPart("".join(literal), quoted=True))
                literal.clear()

        while True:
            if self._at_end():
                raise LexError("unterminated double quote")
            char = self._peek()
            if char == '"':
                self._advance()
                break
            if char == "\\" and self._peek(1) in ('"', "$", "`", "\\"):
                self._advance()
                literal.append(self._advance())
            elif char == "$":
                flush()
                parts.append(self._lex_dollar(quoted=True))
            elif char == "`":
                flush()
                self._advance()
                parts.append(CommandSubstitution(self._read_until("`"), quoted=True))
            else:
                literal.append(self._advance())
        flush()
        if not parts:
            parts.append(LiteralPart("", quoted=True))
        return parts

    def _lex_dollar(self, quoted: bool):
        assert self._peek() == "$"
        self._advance()
        char = self._peek()
        if char == "(":
            self._advance()
            depth = 1
            collected: List[str] = []
            while not self._at_end():
                inner = self._advance()
                if inner == "(":
                    depth += 1
                elif inner == ")":
                    depth -= 1
                    if depth == 0:
                        break
                collected.append(inner)
            if depth != 0:
                raise LexError("unterminated command substitution")
            return CommandSubstitution("".join(collected), quoted=quoted)
        if char == "{":
            self._advance()
            name = self._read_until("}")
            return ParameterPart(name, quoted=quoted)
        if char.isalpha() or char == "_":
            collected = []
            while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
                collected.append(self._advance())
            return ParameterPart("".join(collected), quoted=quoted)
        if char.isdigit() or char in "!@#$*?-":
            self._advance()
            return ParameterPart(char, quoted=quoted)
        # A bare dollar sign is a literal.
        return LiteralPart("$", quoted=quoted)


def literal_is_open_brace(literal: List[str]) -> bool:
    """Return False: operators always terminate words in this subset."""
    return False


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the token list (terminated by EOF)."""
    return _Lexer(source).run()
