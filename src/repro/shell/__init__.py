"""POSIX shell front-end substrate.

The reference PaSh implementation relies on ``libdash`` to obtain a POSIX
shell AST.  This reproduction ships its own recursive-descent parser for the
POSIX subset exercised by the paper's evaluation scripts:

* simple commands with arguments, quoting, and redirections,
* pipelines (``|``),
* lists joined by ``;``, ``&``, ``&&``, and ``||``,
* ``for``/``while``/``if`` compound commands,
* subshells and brace groups,
* variable assignments and parameter expansion,
* command substitution (kept opaque, i.e. never parallelized),
* brace range expansion such as ``{2015..2020}``.

The public surface mirrors the stages PaSh needs: :func:`parse` produces an
AST (:mod:`repro.shell.ast_nodes`), :mod:`repro.shell.expansion` performs the
safe subset of word expansion, and :mod:`repro.shell.unparser` turns ASTs back
into shell text.
"""

from repro.shell.ast_nodes import (
    AndOr,
    Assignment,
    BackgroundNode,
    BraceGroup,
    Command,
    CommandSubstitution,
    ForLoop,
    IfClause,
    Pipeline,
    Redirection,
    SequenceNode,
    Subshell,
    WhileLoop,
    Word,
)
from repro.shell.lexer import LexError, Token, TokenKind, tokenize
from repro.shell.parser import ParseError, parse
from repro.shell.unparser import unparse

__all__ = [
    "AndOr",
    "Assignment",
    "BackgroundNode",
    "BraceGroup",
    "Command",
    "CommandSubstitution",
    "ForLoop",
    "IfClause",
    "LexError",
    "ParseError",
    "Pipeline",
    "Redirection",
    "SequenceNode",
    "Subshell",
    "Token",
    "TokenKind",
    "WhileLoop",
    "Word",
    "parse",
    "tokenize",
    "unparse",
]
