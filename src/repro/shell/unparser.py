"""Turn ASTs back into POSIX shell text.

The back-end uses this module to re-emit the program fragments PaSh did not
touch, and the tests use it to check round-tripping of the parser.
"""

from __future__ import annotations

from typing import List

from repro.shell.ast_nodes import (
    AndOr,
    Assignment,
    BackgroundNode,
    BraceGroup,
    Command,
    CommandSubstitution,
    ForLoop,
    IfClause,
    LiteralPart,
    Node,
    ParameterPart,
    Pipeline,
    Redirection,
    SequenceNode,
    Subshell,
    WhileLoop,
    Word,
)

_SPECIAL_CHARS = set(" \t\n|&;()<>\"'$`\\*?[]{}#~")


def quote_argument(text: str) -> str:
    """Quote ``text`` so the shell treats it as a single literal word."""
    if text and not any(char in _SPECIAL_CHARS for char in text):
        return text
    return "'" + text.replace("'", "'\\''") + "'"


def unparse_word(word: Word) -> str:
    """Render a word, preserving quoting where it matters."""
    rendered: List[str] = []
    for part in word.parts:
        if isinstance(part, LiteralPart):
            if part.quoted:
                rendered.append(quote_argument(part.text) if part.text else "''")
            else:
                rendered.append(part.text)
        elif isinstance(part, ParameterPart):
            rendered.append('"${%s}"' % part.name if part.quoted else "${%s}" % part.name)
        elif isinstance(part, CommandSubstitution):
            rendered.append('"$(%s)"' % part.text if part.quoted else "$(%s)" % part.text)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown word part {part!r}")
    return "".join(rendered)


def unparse_redirection(redirection: Redirection) -> str:
    """Render a redirection."""
    if redirection.target is None:
        return redirection.operator
    return f"{redirection.operator} {unparse_word(redirection.target)}"


def unparse_assignment(assignment: Assignment) -> str:
    """Render an assignment prefix."""
    value = unparse_word(assignment.value)
    return f"{assignment.name}={value}"


def unparse(node: Node) -> str:
    """Render any AST node back to shell text."""
    if isinstance(node, Command):
        parts = [unparse_assignment(a) for a in node.assignments]
        parts.extend(unparse_word(word) for word in node.words)
        parts.extend(unparse_redirection(r) for r in node.redirections)
        return " ".join(parts)
    if isinstance(node, Pipeline):
        text = " | ".join(unparse(command) for command in node.commands)
        return f"! {text}" if node.negated else text
    if isinstance(node, AndOr):
        pieces = [unparse(node.parts[0])]
        for operator, part in zip(node.operators, node.parts[1:]):
            pieces.append(f" {operator} {unparse(part)}")
        return "".join(pieces)
    if isinstance(node, BackgroundNode):
        return f"{unparse(node.body)} &"
    if isinstance(node, SequenceNode):
        return "\n".join(unparse(part) for part in node.parts)
    if isinstance(node, Subshell):
        suffix = _redirection_suffix(node.redirections)
        return f"( {unparse(node.body)} ){suffix}"
    if isinstance(node, BraceGroup):
        suffix = _redirection_suffix(node.redirections)
        return "{ " + unparse(node.body) + "; }" + suffix
    if isinstance(node, ForLoop):
        items = " ".join(unparse_word(word) for word in node.items)
        header = f"for {node.variable} in {items}" if node.items else f"for {node.variable}"
        return f"{header}; do\n{unparse(node.body)}\ndone"
    if isinstance(node, WhileLoop):
        keyword = "until" if node.until else "while"
        return f"{keyword} {unparse(node.condition)}; do\n{unparse(node.body)}\ndone"
    if isinstance(node, IfClause):
        text = f"if {unparse(node.condition)}; then\n{unparse(node.then_body)}\n"
        if node.else_body is not None:
            text += f"else\n{unparse(node.else_body)}\n"
        return text + "fi"
    raise TypeError(f"cannot unparse node {node!r}")


def _redirection_suffix(redirections: List[Redirection]) -> str:
    if not redirections:
        return ""
    return " " + " ".join(unparse_redirection(r) for r in redirections)
