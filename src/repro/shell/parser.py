"""Recursive-descent parser for the POSIX shell subset.

The grammar follows the POSIX shell command language, restricted to the
constructs PaSh's front-end understands.  Unsupported constructs raise
:class:`ParseError`, which callers treat conservatively (the fragment is left
unparallelized).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.shell.ast_nodes import (
    AndOr,
    Assignment,
    BackgroundNode,
    BraceGroup,
    Command,
    ForLoop,
    IfClause,
    Node,
    Pipeline,
    Redirection,
    SequenceNode,
    Subshell,
    WhileLoop,
    Word,
)
from repro.shell.lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    """Raised when the source cannot be parsed into the supported subset."""


_ASSIGNMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")


def _split_assignment(word: Word) -> Optional[Assignment]:
    """Recognize ``name=value`` at the start of a word, or return None.

    The word qualifies when its first part is an *unquoted* literal whose
    text starts with ``name=``; everything after the ``=`` (including any
    further parts — quoted text, ``$var``, ``$(...)``) becomes the value
    word, so dynamic assignments parse as assignments rather than commands.
    """
    from repro.shell.ast_nodes import LiteralPart

    if not word.parts:
        return None
    first = word.parts[0]
    if not isinstance(first, LiteralPart) or first.quoted:
        return None
    match = _ASSIGNMENT_RE.match(first.text)
    if match is None:
        return None
    name = first.text[: match.end() - 1]
    remainder = first.text[match.end() :]
    value_parts = []
    if remainder or len(word.parts) == 1:
        value_parts.append(LiteralPart(remainder))
    value_parts.extend(word.parts[1:])
    return Assignment(name, Word(value_parts))

_RESERVED = {
    "if",
    "then",
    "else",
    "elif",
    "fi",
    "for",
    "while",
    "until",
    "do",
    "done",
    "in",
    "{",
    "}",
    "!",
}


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- cursor helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _at_word(self, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind is not TokenKind.WORD:
            return False
        if text is None:
            return True
        return token.word is not None and token.word.literal_text() == text

    def _expect_word(self, text: str) -> Token:
        if not self._at_word(text):
            raise ParseError(f"expected {text!r}, found {self._peek().text!r}")
        return self._advance()

    def _expect(self, kind: TokenKind) -> Token:
        if not self._at(kind):
            raise ParseError(f"expected {kind.value}, found {self._peek().text!r}")
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._at(TokenKind.NEWLINE):
            self._advance()

    def _skip_separators(self) -> None:
        while self._at(TokenKind.NEWLINE) or self._at(TokenKind.SEMI):
            self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> Node:
        parts: List[Node] = []
        self._skip_separators()
        while not self._at(TokenKind.EOF):
            statement = self.parse_and_or()
            if self._at(TokenKind.AMP):
                self._advance()
                statement = BackgroundNode(statement)
            parts.append(statement)
            if self._at(TokenKind.SEMI) or self._at(TokenKind.NEWLINE):
                self._skip_separators()
            elif not self._at(TokenKind.EOF) and not self._at(TokenKind.RPAREN):
                raise ParseError(f"unexpected token {self._peek().text!r}")
            if self._at(TokenKind.RPAREN):
                break
        if len(parts) == 1:
            return parts[0]
        return SequenceNode(parts)

    def parse_and_or(self) -> Node:
        first = self.parse_pipeline()
        parts = [first]
        operators: List[str] = []
        while self._at(TokenKind.AND_IF) or self._at(TokenKind.OR_IF):
            operators.append(self._advance().text)
            self._skip_newlines()
            parts.append(self.parse_pipeline())
        if not operators:
            return first
        return AndOr(parts, operators)

    def parse_pipeline(self) -> Node:
        negated = False
        if self._at_word("!"):
            self._advance()
            negated = True
        commands = [self.parse_command()]
        while self._at(TokenKind.PIPE):
            self._advance()
            self._skip_newlines()
            commands.append(self.parse_command())
        if len(commands) == 1 and not negated:
            return commands[0]
        return Pipeline(commands, negated=negated)

    def parse_command(self) -> Node:
        if self._at(TokenKind.LPAREN):
            return self.parse_subshell()
        if self._at_word("{"):
            return self.parse_brace_group()
        if self._at_word("for"):
            return self.parse_for()
        if self._at_word("while") or self._at_word("until"):
            return self.parse_while()
        if self._at_word("if"):
            return self.parse_if()
        return self.parse_simple_command()

    # -- compound commands --------------------------------------------------

    def parse_subshell(self) -> Subshell:
        self._expect(TokenKind.LPAREN)
        self._skip_separators()
        body = self.parse_program()
        self._expect(TokenKind.RPAREN)
        redirections = self._parse_trailing_redirections()
        return Subshell(body, redirections)

    def parse_brace_group(self) -> BraceGroup:
        self._expect_word("{")
        self._skip_separators()
        parts: List[Node] = []
        while not self._at_word("}"):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated brace group")
            statement = self.parse_and_or()
            if self._at(TokenKind.AMP):
                self._advance()
                statement = BackgroundNode(statement)
            parts.append(statement)
            self._skip_separators()
        self._expect_word("}")
        redirections = self._parse_trailing_redirections()
        body = parts[0] if len(parts) == 1 else SequenceNode(parts)
        return BraceGroup(body, redirections)

    def parse_for(self) -> ForLoop:
        self._expect_word("for")
        variable_token = self._expect(TokenKind.WORD)
        variable = variable_token.word.literal_text() if variable_token.word else None
        if not variable:
            raise ParseError("for-loop variable must be a literal name")
        items: List[Word] = []
        self._skip_newlines()
        if self._at_word("in"):
            self._advance()
            while self._at(TokenKind.WORD) and not self._at_word("do"):
                items.append(self._advance().word)  # type: ignore[arg-type]
            self._skip_separators()
        else:
            self._skip_separators()
        if self._at(TokenKind.SEMI):
            self._advance()
            self._skip_newlines()
        self._expect_word("do")
        self._skip_separators()
        body = self._parse_until_keyword("done")
        self._expect_word("done")
        return ForLoop(variable, items, body)

    def parse_while(self) -> WhileLoop:
        until = self._at_word("until")
        self._advance()
        condition = self._parse_until_keyword("do")
        self._expect_word("do")
        self._skip_separators()
        body = self._parse_until_keyword("done")
        self._expect_word("done")
        return WhileLoop(condition, body, until=until)

    def parse_if(self) -> IfClause:
        self._expect_word("if")
        condition = self._parse_until_keyword("then")
        self._expect_word("then")
        self._skip_separators()
        then_body = self._parse_until_keyword("else", "elif", "fi")
        else_body: Optional[Node] = None
        if self._at_word("elif"):
            # Re-parse the elif chain as a nested IfClause.
            else_body = self._parse_elif_chain()
        elif self._at_word("else"):
            self._advance()
            self._skip_separators()
            else_body = self._parse_until_keyword("fi")
            self._expect_word("fi")
        else:
            self._expect_word("fi")
        return IfClause(condition, then_body, else_body)

    def _parse_elif_chain(self) -> IfClause:
        self._expect_word("elif")
        condition = self._parse_until_keyword("then")
        self._expect_word("then")
        self._skip_separators()
        then_body = self._parse_until_keyword("else", "elif", "fi")
        else_body: Optional[Node] = None
        if self._at_word("elif"):
            else_body = self._parse_elif_chain()
        elif self._at_word("else"):
            self._advance()
            self._skip_separators()
            else_body = self._parse_until_keyword("fi")
            self._expect_word("fi")
        else:
            self._expect_word("fi")
        return IfClause(condition, then_body, else_body)

    def _parse_until_keyword(self, *keywords: str) -> Node:
        parts: List[Node] = []
        self._skip_separators()
        while not any(self._at_word(keyword) for keyword in keywords):
            if self._at(TokenKind.EOF):
                raise ParseError(f"expected one of {keywords}, hit end of input")
            statement = self.parse_and_or()
            if self._at(TokenKind.AMP):
                self._advance()
                statement = BackgroundNode(statement)
            parts.append(statement)
            self._skip_separators()
        if not parts:
            raise ParseError(f"empty body before {keywords}")
        if len(parts) == 1:
            return parts[0]
        return SequenceNode(parts)

    # -- simple commands ----------------------------------------------------

    def parse_simple_command(self) -> Command:
        assignments: List[Assignment] = []
        words: List[Word] = []
        redirections: List[Redirection] = []

        # Leading assignments (the value may be any word: literal, quoted,
        # parameter expansion, or command substitution).
        while self._at(TokenKind.WORD):
            word = self._peek().word
            assignment = _split_assignment(word) if word is not None else None
            if assignment is not None and not words:
                self._advance()
                assignments.append(assignment)
            else:
                break

        while True:
            token = self._peek()
            if token.kind is TokenKind.WORD:
                word = token.word
                text = word.literal_text() if word else None
                if not words and text in _RESERVED and text not in ("{", "}"):
                    # Reserved word in command position — handled by caller.
                    if text in ("in", "do", "done", "then", "else", "elif", "fi"):
                        raise ParseError(f"unexpected reserved word {text!r}")
                self._advance()
                words.append(word)  # type: ignore[arg-type]
            elif token.kind is TokenKind.REDIRECT:
                redirections.append(self._parse_redirection())
            else:
                break

        if not words and not assignments and not redirections:
            raise ParseError(f"expected a command, found {self._peek().text!r}")
        return Command(assignments, words, redirections)

    def _parse_redirection(self) -> Redirection:
        token = self._expect(TokenKind.REDIRECT)
        operator = token.text
        fd: Optional[int] = None
        if operator and operator[0].isdigit():
            fd = int(operator[0])
        if operator == "2>&1" or operator.endswith("&1"):
            return Redirection(operator, None, fd=fd)
        target_token = self._expect(TokenKind.WORD)
        return Redirection(operator, target_token.word, fd=fd)

    def _parse_trailing_redirections(self) -> List[Redirection]:
        redirections: List[Redirection] = []
        while self._at(TokenKind.REDIRECT):
            redirections.append(self._parse_redirection())
        return redirections


def parse(source: str) -> Node:
    """Parse ``source`` into an AST.

    Raises :class:`ParseError` (or :class:`~repro.shell.lexer.LexError`) when
    the script uses constructs outside the supported subset.
    """
    tokens = tokenize(source)
    parser = _Parser(tokens)
    program = parser.parse_program()
    if not parser._at(TokenKind.EOF):
        raise ParseError(f"trailing input at {parser._peek().text!r}")
    return program
