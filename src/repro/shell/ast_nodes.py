"""AST node definitions for the POSIX shell subset parsed by this package.

The node hierarchy deliberately mirrors the grammar productions PaSh cares
about.  Every node is a frozen-ish dataclass (mutable only where the
optimizer needs to rewrite children) and knows how to render itself back to
shell text via :mod:`repro.shell.unparser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union


class Node:
    """Base class for every AST node."""

    def children(self) -> Sequence["Node"]:
        """Return the child nodes, used by generic tree walks."""
        return ()


# ---------------------------------------------------------------------------
# Words
# ---------------------------------------------------------------------------


@dataclass
class WordPart:
    """A single piece of a word."""


@dataclass
class LiteralPart(WordPart):
    """Literal (possibly quoted) text."""

    text: str
    quoted: bool = False


@dataclass
class ParameterPart(WordPart):
    """A parameter expansion such as ``$foo`` or ``${foo}``."""

    name: str
    quoted: bool = False


@dataclass
class CommandSubstitution(WordPart):
    """A command substitution ``$(...)`` or backquoted.

    PaSh treats command substitutions as opaque: the inner text is preserved
    but never parallelized, keeping the translation conservative.
    """

    text: str
    quoted: bool = False


@dataclass
class Word(Node):
    """A shell word composed of literal, parameter, and substitution parts."""

    parts: List[WordPart] = field(default_factory=list)

    @classmethod
    def literal(cls, text: str, quoted: bool = False) -> "Word":
        """Build a word from a single literal string."""
        return cls([LiteralPart(text, quoted=quoted)])

    def is_literal(self) -> bool:
        """True when the word contains only literal parts."""
        return all(isinstance(part, LiteralPart) for part in self.parts)

    def has_substitution(self) -> bool:
        """True when the word contains a command substitution."""
        return any(isinstance(part, CommandSubstitution) for part in self.parts)

    def has_parameter(self) -> bool:
        """True when the word contains a parameter expansion."""
        return any(isinstance(part, ParameterPart) for part in self.parts)

    def literal_text(self) -> Optional[str]:
        """Return the concatenated text when the word is fully literal."""
        if not self.is_literal():
            return None
        return "".join(part.text for part in self.parts)  # type: ignore[union-attr]

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        rendered = []
        for part in self.parts:
            if isinstance(part, LiteralPart):
                rendered.append(part.text)
            elif isinstance(part, ParameterPart):
                rendered.append("${%s}" % part.name)
            elif isinstance(part, CommandSubstitution):
                rendered.append("$(%s)" % part.text)
        return "".join(rendered)


# ---------------------------------------------------------------------------
# Redirections and assignments
# ---------------------------------------------------------------------------


REDIRECT_OPERATORS = (">", ">>", "<", "<<", "2>", "2>>", "2>&1", "&>", "<&", ">&")


@dataclass
class Redirection(Node):
    """A redirection such as ``> out.txt`` or ``2>&1``."""

    operator: str
    target: Optional[Word] = None
    fd: Optional[int] = None

    def is_output(self) -> bool:
        """True for redirections that write a file."""
        return self.operator in (">", ">>", "2>", "2>>", "&>", ">&")

    def is_input(self) -> bool:
        """True for redirections that read a file."""
        return self.operator in ("<", "<<", "<&")


@dataclass
class Assignment(Node):
    """A variable assignment ``name=value`` (prefix or standalone)."""

    name: str
    value: Word


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


@dataclass
class Command(Node):
    """A simple command: assignments, command word, arguments, redirections."""

    assignments: List[Assignment] = field(default_factory=list)
    words: List[Word] = field(default_factory=list)
    redirections: List[Redirection] = field(default_factory=list)

    @property
    def name(self) -> Optional[str]:
        """The literal command name, or None when dynamic."""
        if not self.words:
            return None
        return self.words[0].literal_text()

    @property
    def argument_words(self) -> List[Word]:
        """Arguments excluding the command name."""
        return self.words[1:]

    def children(self) -> Sequence[Node]:
        return tuple(self.assignments) + tuple(self.words) + tuple(self.redirections)


@dataclass
class Pipeline(Node):
    """A pipeline ``a | b | c``, optionally negated with ``!``."""

    commands: List[Node] = field(default_factory=list)
    negated: bool = False

    def children(self) -> Sequence[Node]:
        return tuple(self.commands)


@dataclass
class AndOr(Node):
    """A list joined by ``&&`` / ``||``.

    ``operators[i]`` joins ``parts[i]`` and ``parts[i + 1]``.
    """

    parts: List[Node] = field(default_factory=list)
    operators: List[str] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return tuple(self.parts)


@dataclass
class BackgroundNode(Node):
    """A command list run asynchronously with ``&``."""

    body: Node = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.body,)


@dataclass
class SequenceNode(Node):
    """A sequence of statements separated by ``;`` or newlines."""

    parts: List[Node] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return tuple(self.parts)


@dataclass
class Subshell(Node):
    """A subshell ``( ... )``."""

    body: Node = None  # type: ignore[assignment]
    redirections: List[Redirection] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return (self.body,)


@dataclass
class BraceGroup(Node):
    """A brace group ``{ ...; }``."""

    body: Node = None  # type: ignore[assignment]
    redirections: List[Redirection] = field(default_factory=list)

    def children(self) -> Sequence[Node]:
        return (self.body,)


@dataclass
class ForLoop(Node):
    """A ``for name in words; do body; done`` loop."""

    variable: str = ""
    items: List[Word] = field(default_factory=list)
    body: Node = None  # type: ignore[assignment]

    def children(self) -> Sequence[Node]:
        return (self.body,)


@dataclass
class WhileLoop(Node):
    """A ``while cond; do body; done`` loop (also models ``until``)."""

    condition: Node = None  # type: ignore[assignment]
    body: Node = None  # type: ignore[assignment]
    until: bool = False

    def children(self) -> Sequence[Node]:
        return (self.condition, self.body)


@dataclass
class IfClause(Node):
    """An ``if cond; then body; [else orelse;] fi`` clause."""

    condition: Node = None  # type: ignore[assignment]
    then_body: Node = None  # type: ignore[assignment]
    else_body: Optional[Node] = None

    def children(self) -> Sequence[Node]:
        parts = [self.condition, self.then_body]
        if self.else_body is not None:
            parts.append(self.else_body)
        return tuple(parts)


ShellNode = Union[
    Command,
    Pipeline,
    AndOr,
    BackgroundNode,
    SequenceNode,
    Subshell,
    BraceGroup,
    ForLoop,
    WhileLoop,
    IfClause,
]


def walk(node: Node):
    """Yield ``node`` and all of its descendants in pre-order."""
    yield node
    for child in node.children():
        if isinstance(child, Node):
            yield from walk(child)


def iter_commands(node: Node):
    """Yield every :class:`Command` node underneath ``node``."""
    for sub in walk(node):
        if isinstance(sub, Command):
            yield sub
