"""Safe word expansion.

PaSh expands the subset of shell words whose value it can determine
statically — literal text, parameters with known values, and brace ranges —
and refuses to expand anything else (command substitutions, unknown
variables).  Refusal is signalled with :class:`ExpansionError` so the caller
can fall back to conservative, unparallelized treatment (§5.1).

The JIT driver (:mod:`repro.jit`) relaxes "statically" to "at the moment the
region is reached": it builds an :class:`ExpansionContext` from the *runtime*
shell state, so special parameters (``$?``, ``$#``, ``$@``/``$*``),
default-value forms (``${VAR:-default}``), and — through ``command_runner`` —
even command substitutions become expandable exactly when the surrounding
script supplies their values.
"""

from __future__ import annotations

import re
from fnmatch import fnmatchcase
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.shell.ast_nodes import CommandSubstitution, LiteralPart, ParameterPart, Word


class ExpansionError(ValueError):
    """Raised when a word cannot be expanded with the information available."""


_BRACE_RANGE_RE = re.compile(r"\{(-?\d+)\.\.(-?\d+)\}")
_BRACE_LIST_RE = re.compile(r"\{([^{}.]*,[^{}]*)\}")

#: ``${name<op>word}`` — the POSIX parameter default-value forms.  The lexer
#: stores everything between the braces as the parameter "name", so the
#: operator is recognized here at expansion time.
_PARAM_FORM_RE = re.compile(
    r"^([A-Za-z_][A-Za-z0-9_]*|[@*#?0-9])(:?[-=+?])(.*)$", re.DOTALL
)

#: ``$NAME`` / ``${NAME}`` occurrences inside a default-value word.
_DEFAULT_REF_RE = re.compile(r"\$(?:\{([^}]+)\}|([A-Za-z_][A-Za-z0-9_]*|[@*#?0-9]))")

_SPECIAL_PARAMETERS = frozenset("@*#?") | frozenset("0123456789")

_GLOB_CHARS = ("*", "?", "[")


class ExpansionContext:
    """Holds the variable bindings known to the expander.

    The context is deliberately simple: a flat string-to-string mapping plus a
    flag recording whether unknown variables should expand to the empty string
    (interactive-shell behaviour) or abort expansion (PaSh's conservative
    compile-time behaviour).

    Four optional pieces of *runtime* state extend the static mapping:

    * ``positional`` — the positional parameters backing ``$1``…, ``$#``,
      ``$@`` and ``$*`` (``None`` = unknown, so strict mode refuses them);
    * ``last_status`` — the value of ``$?`` (``None`` = unknown);
    * ``command_runner`` — a callable evaluating a command-substitution body
      to its captured stdout text; without one, ``$(...)`` always refuses;
    * ``complete`` — the mapping holds *every* set variable (runtime state),
      so a missing name is genuinely **unset** rather than merely unknown.
      This is what lets strict mode evaluate ``${VAR:-default}``: with an
      incomplete (compile-time) mapping, "absent" cannot be told apart from
      "assigned dynamically earlier", and choosing the default would
      miscompile — so strict+incomplete refuses instead.

    When ``variables`` is passed as a plain ``dict`` it is **adopted by
    reference** (so ``${VAR:=default}`` assignments persist into the
    caller's state, as POSIX requires); other mappings are copied.
    """

    def __init__(
        self,
        variables: Optional[Dict[str, str]] = None,
        strict: bool = True,
        positional: Optional[Sequence[str]] = None,
        last_status: Optional[int] = None,
        command_runner: Optional[Callable[[str], str]] = None,
        complete: bool = False,
    ) -> None:
        self.variables: Dict[str, str] = (
            variables if isinstance(variables, dict) else dict(variables or {})
        )
        self.strict = strict
        self.positional: Optional[List[str]] = (
            list(positional) if positional is not None else None
        )
        self.last_status = last_status
        self.command_runner = command_runner
        self.complete = complete

    # ------------------------------------------------------------------

    def lookup(self, name: str) -> str:
        """Return the value bound to ``name`` (including ``${VAR:-...}`` forms).

        Raises :class:`ExpansionError` in strict mode when unknown.
        """
        form = _PARAM_FORM_RE.match(name)
        if form is not None:
            return self._resolve_form(form.group(1), form.group(2), form.group(3))
        return self._resolve_plain(name)

    def bind(self, name: str, value: str) -> None:
        """Record an assignment observed during compilation."""
        self.variables[name] = value

    def unbind(self, name: str) -> None:
        """Forget a binding whose value became unknown (dynamic assignment)."""
        self.variables.pop(name, None)

    def is_set(self, name: str) -> bool:
        """True when the parameter has a (possibly empty) known value."""
        if name in self.variables:
            return True
        if name == "?":
            return self.last_status is not None
        if name in ("#", "@", "*"):
            return self.positional is not None
        if name.isdigit():
            if self.positional is None:
                return False
            index = int(name)
            return 1 <= index <= len(self.positional)
        return False

    def state_known(self, name: str) -> bool:
        """Whether the set-ness of ``name`` is definitively decidable.

        A name present in the mapping is decidedly set; special parameters
        are decidable exactly when their backing runtime state was supplied;
        anything else is only decidable when the mapping is ``complete``.
        """
        if name in self.variables:
            return True
        if name == "?":
            return self.last_status is not None
        if name in ("#", "@", "*") or name.isdigit():
            return self.positional is not None
        return self.complete

    def copy(self) -> "ExpansionContext":
        """Return an independent copy (used when entering loop bodies)."""
        return ExpansionContext(
            dict(self.variables),
            strict=self.strict,
            positional=self.positional,
            last_status=self.last_status,
            command_runner=self.command_runner,
            complete=self.complete,
        )

    # ------------------------------------------------------------------

    def _resolve_plain(self, name: str) -> str:
        if name in self.variables:
            return self.variables[name]
        if name == "?":
            if self.last_status is not None:
                return str(self.last_status)
        elif name == "#":
            if self.positional is not None:
                return str(len(self.positional))
        elif name in ("@", "*"):
            if self.positional is not None:
                return " ".join(self.positional)
        elif name.isdigit():
            if self.positional is not None:
                index = int(name)
                if index == 0:
                    return self.variables.get("0", "")
                if index <= len(self.positional):
                    return self.positional[index - 1]
                return ""
        elif self.strict:
            raise ExpansionError(f"unknown variable ${name}")
        else:
            return ""
        # A special parameter whose runtime state is unknown.
        if self.strict:
            raise ExpansionError(f"unknown special parameter ${name}")
        return ""

    def _resolve_form(self, name: str, operator: str, word: str) -> str:
        """Evaluate one ``${name<op>word}`` default-value form."""
        treat_empty_as_unset = operator.startswith(":")
        base_operator = operator[-1]
        if self.strict and not self.state_known(name):
            # "Absent" only means "unset" when the state is complete; a
            # compile-time mapping cannot tell unset from dynamically
            # assigned, and guessing the default would miscompile.
            raise ExpansionError(
                f"cannot evaluate ${{{name}{operator}...}}: "
                f"variable state unknown at compile time"
            )
        known = self.is_set(name)
        value = self._resolve_plain(name) if known else ""
        use_default = (not known) or (treat_empty_as_unset and value == "")
        if base_operator == "-":
            return self._expand_default(word) if use_default else value
        if base_operator == "=":
            if use_default:
                value = self._expand_default(word)
                if name in _SPECIAL_PARAMETERS:
                    raise ExpansionError(f"cannot assign to special parameter ${name}")
                self.bind(name, value)
            return value
        if base_operator == "+":
            return "" if use_default else self._expand_default(word)
        if base_operator == "?":
            if use_default:
                message = self._expand_default(word) or "parameter not set"
                raise ExpansionError(f"${{{name}}}: {message}")
            return value
        raise ExpansionError(f"unsupported parameter form ${{{name}{operator}{word}}}")

    def _expand_default(self, word: str) -> str:
        """Expand ``$NAME`` references inside a default-value word."""

        def substitute(match: "re.Match[str]") -> str:
            inner = match.group(1) or match.group(2)
            return self.lookup(inner)

        return _DEFAULT_REF_RE.sub(substitute, word)


def expand_word(word: Word, context: Optional[ExpansionContext] = None) -> List[str]:
    """Expand ``word`` into a list of fields.

    Unquoted expansions undergo field splitting on whitespace and brace
    expansion; quoted text is preserved verbatim.  Raises
    :class:`ExpansionError` for command substitutions (unless the context
    carries a ``command_runner``) and (in strict mode) unknown variables.
    """
    context = context or ExpansionContext()

    # `"$@"` expands to one field per positional parameter (and to no field
    # at all when there are none) — the only quoted expansion that splits.
    if (
        len(word.parts) == 1
        and isinstance(word.parts[0], ParameterPart)
        and word.parts[0].quoted
        and word.parts[0].name == "@"
    ):
        if context.positional is None:
            if context.strict:
                raise ExpansionError('unknown special parameter "$@"')
            return []
        return list(context.positional)

    pieces: List[str] = []
    any_unquoted = False
    for part in word.parts:
        if isinstance(part, LiteralPart):
            pieces.append(part.text)
            any_unquoted = any_unquoted or not part.quoted
        elif isinstance(part, ParameterPart):
            value = context.lookup(part.name)
            pieces.append(value)
            any_unquoted = any_unquoted or not part.quoted
        elif isinstance(part, CommandSubstitution):
            if context.command_runner is None:
                raise ExpansionError("command substitution cannot be expanded statically")
            value = context.command_runner(part.text)
            # POSIX strips every trailing newline from $(...) output.
            pieces.append(value.rstrip("\n"))
            any_unquoted = any_unquoted or not part.quoted
        else:  # pragma: no cover - defensive
            raise ExpansionError(f"unsupported word part {part!r}")
    text = "".join(pieces)

    fully_quoted = all(
        getattr(part, "quoted", False) for part in word.parts
    )
    if fully_quoted:
        return [text]

    expanded = _expand_braces(text)
    fields: List[str] = []
    for piece in expanded:
        split = piece.split() if any_unquoted else [piece]
        fields.extend(split if split else ([""] if piece == "" else []))
    if not fields and text == "":
        return []
    return fields or [text]


def expand_words(words: List[Word], context: Optional[ExpansionContext] = None) -> List[str]:
    """Expand a word list into a flat argument vector."""
    context = context or ExpansionContext()
    argv: List[str] = []
    for word in words:
        argv.extend(expand_word(word, context))
    return argv


def _expand_braces(text: str) -> List[str]:
    """Expand one level of ``{a..b}`` and ``{x,y,z}`` brace patterns."""
    range_match = _BRACE_RANGE_RE.search(text)
    if range_match:
        start, end = int(range_match.group(1)), int(range_match.group(2))
        step = 1 if end >= start else -1
        results = []
        for value in range(start, end + step, step):
            expanded = text[: range_match.start()] + str(value) + text[range_match.end() :]
            results.extend(_expand_braces(expanded))
        return results
    list_match = _BRACE_LIST_RE.search(text)
    if list_match:
        results = []
        for option in list_match.group(1).split(","):
            expanded = text[: list_match.start()] + option + text[list_match.end() :]
            results.extend(_expand_braces(expanded))
        return results
    return [text]


def parameter_references(raw: str):
    """The base parameter names a ``$raw`` reference depends on.

    ``"VAR"`` depends on ``VAR``; ``"VAR:-$OTHER"`` depends on both ``VAR``
    and ``OTHER``.  Used by the JIT plan cache to key compiled plans on the
    referenced runtime bindings.
    """
    form = _PARAM_FORM_RE.match(raw)
    if form is None:
        return {raw}
    references = {form.group(1)}
    for match in _DEFAULT_REF_RE.finditer(form.group(3)):
        inner = match.group(1) or match.group(2)
        references.update(parameter_references(inner))
    return references


def try_expand_word(word: Word, context: Optional[ExpansionContext] = None) -> Optional[List[str]]:
    """Expand ``word`` or return None when the expansion is not static."""
    try:
        return expand_word(word, context)
    except ExpansionError:
        return None


# ---------------------------------------------------------------------------
# Pathname expansion (globbing)
# ---------------------------------------------------------------------------


def word_may_glob(word: Word) -> bool:
    """True when pathname expansion applies to the word's expanded fields.

    Quoting suppresses globbing, so only words with at least one unquoted
    part qualify; the cheap pre-check on literal text avoids pattern matching
    for the overwhelmingly common glob-free words.
    """
    may = False
    for part in word.parts:
        if getattr(part, "quoted", False):
            continue
        if isinstance(part, LiteralPart):
            if any(char in part.text for char in _GLOB_CHARS):
                may = True
        else:
            # The *value* of an unquoted expansion can introduce a pattern.
            may = True
    return may


def field_has_glob(field: str) -> bool:
    """True when a field contains a pathname-expansion metacharacter."""
    return any(char in field for char in _GLOB_CHARS)


def pattern_matches(name: str, pattern: str) -> bool:
    """POSIX pathname-pattern match: case-sensitive, explicit-dot rule.

    Names starting with ``.`` are only matched by patterns that themselves
    start with ``.``.  The single matching rule shared by the in-memory
    filesystem and the pure helpers below.
    """
    if name.startswith(".") and not pattern.startswith("."):
        return False
    return fnmatchcase(name, pattern)


def expand_pathnames(
    word: Word,
    fields: Iterable[str],
    resolver: Callable[[str], Sequence[str]],
) -> List[str]:
    """Apply pathname expansion to one word's expanded fields.

    ``resolver`` maps a pattern to its matches (typically
    ``VirtualFileSystem.glob``); per POSIX an unmatched pattern stays
    literal, and quoting (checked via :func:`word_may_glob`) suppresses
    expansion entirely.  The single glob driver shared by the interpreter
    and the DFG builder.
    """
    fields = list(fields)
    if not word_may_glob(word):
        return fields
    result: List[str] = []
    for field in fields:
        if field_has_glob(field):
            result.extend(list(resolver(field)) or [field])
        else:
            result.append(field)
    return result


def glob_fields(fields: Iterable[str], names: Sequence[str]) -> List[str]:
    """Apply pathname expansion to expanded fields against a name list.

    Each field containing a glob metacharacter is matched against the
    candidate file names (sorted); per POSIX, a pattern with no match stays
    literal (see :func:`pattern_matches` for the dot rule).
    """
    result: List[str] = []
    for field in fields:
        if not field_has_glob(field):
            result.append(field)
            continue
        matches = sorted(name for name in names if pattern_matches(name, field))
        result.extend(matches or [field])
    return result
