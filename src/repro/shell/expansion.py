"""Safe word expansion.

PaSh expands the subset of shell words whose value it can determine
statically — literal text, parameters with known values, and brace ranges —
and refuses to expand anything else (command substitutions, unknown
variables).  Refusal is signalled with :class:`ExpansionError` so the caller
can fall back to conservative, unparallelized treatment (§5.1).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.shell.ast_nodes import CommandSubstitution, LiteralPart, ParameterPart, Word


class ExpansionError(ValueError):
    """Raised when a word cannot be expanded with the information available."""


_BRACE_RANGE_RE = re.compile(r"\{(-?\d+)\.\.(-?\d+)\}")
_BRACE_LIST_RE = re.compile(r"\{([^{}.]*,[^{}]*)\}")


class ExpansionContext:
    """Holds the variable bindings known to the compiler.

    The context is deliberately simple: a flat string-to-string mapping plus a
    flag recording whether unknown variables should expand to the empty string
    (interactive-shell behaviour) or abort expansion (PaSh's conservative
    compile-time behaviour).
    """

    def __init__(
        self,
        variables: Optional[Dict[str, str]] = None,
        strict: bool = True,
    ) -> None:
        self.variables: Dict[str, str] = dict(variables or {})
        self.strict = strict

    def lookup(self, name: str) -> str:
        """Return the value bound to ``name``.

        Raises :class:`ExpansionError` in strict mode when unknown.
        """
        if name in self.variables:
            return self.variables[name]
        if self.strict:
            raise ExpansionError(f"unknown variable ${name}")
        return ""

    def bind(self, name: str, value: str) -> None:
        """Record an assignment observed during compilation."""
        self.variables[name] = value

    def copy(self) -> "ExpansionContext":
        """Return an independent copy (used when entering loop bodies)."""
        return ExpansionContext(dict(self.variables), strict=self.strict)


def expand_word(word: Word, context: Optional[ExpansionContext] = None) -> List[str]:
    """Expand ``word`` into a list of fields.

    Unquoted expansions undergo field splitting on whitespace and brace
    expansion; quoted text is preserved verbatim.  Raises
    :class:`ExpansionError` for command substitutions and (in strict mode)
    unknown variables.
    """
    context = context or ExpansionContext()
    pieces: List[str] = []
    any_unquoted = False
    for part in word.parts:
        if isinstance(part, LiteralPart):
            pieces.append(part.text)
            any_unquoted = any_unquoted or not part.quoted
        elif isinstance(part, ParameterPart):
            value = context.lookup(part.name)
            pieces.append(value)
            any_unquoted = any_unquoted or not part.quoted
        elif isinstance(part, CommandSubstitution):
            raise ExpansionError("command substitution cannot be expanded statically")
        else:  # pragma: no cover - defensive
            raise ExpansionError(f"unsupported word part {part!r}")
    text = "".join(pieces)

    fully_quoted = all(
        getattr(part, "quoted", False) for part in word.parts
    )
    if fully_quoted:
        return [text]

    expanded = _expand_braces(text)
    fields: List[str] = []
    for piece in expanded:
        split = piece.split() if any_unquoted else [piece]
        fields.extend(split if split else ([""] if piece == "" else []))
    if not fields and text == "":
        return []
    return fields or [text]


def expand_words(words: List[Word], context: Optional[ExpansionContext] = None) -> List[str]:
    """Expand a word list into a flat argument vector."""
    context = context or ExpansionContext()
    argv: List[str] = []
    for word in words:
        argv.extend(expand_word(word, context))
    return argv


def _expand_braces(text: str) -> List[str]:
    """Expand one level of ``{a..b}`` and ``{x,y,z}`` brace patterns."""
    range_match = _BRACE_RANGE_RE.search(text)
    if range_match:
        start, end = int(range_match.group(1)), int(range_match.group(2))
        step = 1 if end >= start else -1
        results = []
        for value in range(start, end + step, step):
            expanded = text[: range_match.start()] + str(value) + text[range_match.end() :]
            results.extend(_expand_braces(expanded))
        return results
    list_match = _BRACE_LIST_RE.search(text)
    if list_match:
        results = []
        for option in list_match.group(1).split(","):
            expanded = text[: list_match.start()] + option + text[list_match.end() :]
            results.extend(_expand_braces(expanded))
        return results
    return [text]


def try_expand_word(word: Word, context: Optional[ExpansionContext] = None) -> Optional[List[str]]:
    """Expand ``word`` or return None when the expansion is not static."""
    try:
        return expand_word(word, context)
    except ExpansionError:
        return None
